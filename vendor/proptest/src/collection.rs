//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};

/// An inclusive size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange {
            lo,
            hi_inclusive: hi,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// A vector whose length is drawn from `size` and whose elements are
/// drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_inclusive(self.size.lo, self.size.hi_inclusive);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}
