//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds fully offline, so instead of the real `proptest`
//! we vendor the subset the ONEX property tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for
//!   numeric ranges, tuples, [`Just`] and [`any`],
//! * [`collection::vec`] with `usize` / range size specifications,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Differences from the real crate: cases are drawn from a fixed seed
//! derived from the test name (fully deterministic, no persistence file),
//! and failures are **not shrunk** — the failing input is reported as
//! drawn. That trades minimal counterexamples for zero dependencies.

#![forbid(unsafe_code)]

pub mod collection;

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Deterministic test RNG (SplitMix64).
// ---------------------------------------------------------------------

/// The RNG handed to strategies. Seeded from the test name, so every run
/// of a given test explores the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive a seed from a test name (FNV-1a over the bytes).
    pub fn seed_from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + (self.next_u64() as u128 % span) as usize
    }
}

// ---------------------------------------------------------------------
// Config.
// ---------------------------------------------------------------------

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------
// Strategy.
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, build a second strategy from it, and sample that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of its payload.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric ranges are strategies.

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        // The affine transform can round up to exactly `end`; keep the
        // half-open contract.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies are strategies of tuples.

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

// ---------------------------------------------------------------------
// any / Arbitrary.
// ---------------------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, wide-dynamic-range values; the ONEX tests never want
        // NaN/Inf from `any`.
        (rng.next_f64() - 0.5) * 2e6
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy covering the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($pat,)+) = ($($crate::Strategy::sample(&($strat), &mut __rng),)+);
                // The body runs in a closure returning Result so that the
                // real proptest's early `return Ok(())` / `?` forms work.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome.expect("property returned an error");
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Assert inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Skip the current case when an assumption does not hold. (The body
/// runs inside a `Result` closure, so rejecting counts the case as
/// passed rather than aborting the loop.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::collection::vec(...)` resolves as with
    /// the real proptest prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-100.0f64..100.0, 1..=max_len)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs((x, y) in (series(8), series(8)), n in 1usize..5) {
            prop_assert!(!x.is_empty() && x.len() <= 8);
            prop_assert!(!y.is_empty() && y.len() <= 8);
            prop_assert!((1..5).contains(&n));
            for v in x.iter().chain(&y) {
                prop_assert!((-100.0..100.0).contains(v));
            }
        }

        #[test]
        fn flat_map_links_lengths(
            (a, b) in (1usize..6).prop_flat_map(|n| {
                (prop::collection::vec(0.0f64..1.0, n), Just(n))
            }),
        ) {
            prop_assert_eq!(a.len(), b);
        }

        #[test]
        fn any_bool_is_exhaustive_enough(flag in any::<bool>(), v in prop::collection::vec(0u64..9, 0..4)) {
            let as_int = u8::from(flag);
            prop_assert!(as_int <= 1);
            prop_assert!(v.len() < 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = series(16);
        let a: Vec<Vec<f64>> = {
            let mut rng = TestRng::seed_from_name("x");
            (0..10).map(|_| s.sample(&mut rng)).collect()
        };
        let b: Vec<Vec<f64>> = {
            let mut rng = TestRng::seed_from_name("x");
            (0..10).map(|_| s.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
