//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! This workspace builds fully offline, so the `onex-bench` Criterion
//! benches compile against this shim instead. It keeps the registration
//! surface (`criterion_group!` / `criterion_main!`, groups, ids,
//! throughput) and measures each benchmark with a short wall-clock loop —
//! one warm-up call, then as many timed iterations as fit a small budget.
//! No statistics, plots or HTML reports; output is one line per
//! benchmark: `name/param ... <ns>/iter`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (shim: only carries defaults).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(40),
        }
    }
}

impl Criterion {
    /// Cap the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Cap the wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            None,
            &id.into(),
            self.sample_size,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    /// Run one benchmark that closes over an input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            None,
            &id.into(),
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }
}

/// A named group sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Cap the wall-clock budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Record the per-iteration workload size (printed, not analysed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let _ = t;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            &id.into(),
            self.sample_size,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    /// Run one benchmark in this group that closes over an input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            Some(&self.name),
            &id.into(),
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            param: Some(param.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.param {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            param: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, param: None }
    }
}

/// Per-iteration workload size, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: Option<u128>,
}

impl Bencher {
    /// Time `f`: one warm-up call, then up to `sample_size` timed calls
    /// within the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        let mut n = 0u32;
        while n < self.sample_size as u32 && start.elapsed() < self.measurement_time {
            black_box(f());
            n += 1;
        }
        self.ns_per_iter = Some(start.elapsed().as_nanos() / n.max(1) as u128);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        measurement_time,
        ns_per_iter: None,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{}", id.label()),
        None => id.label(),
    };
    match b.ns_per_iter {
        Some(ns) => println!("bench: {label:<56} {ns:>14} ns/iter"),
        None => println!("bench: {label:<56} (no measurement)"),
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce the `main` function for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
