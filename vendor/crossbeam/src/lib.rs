//! A minimal, dependency-free stand-in for `crossbeam::thread::scope`,
//! built on `std::thread::scope` (stable since Rust 1.63).
//!
//! API differences from the real crate are kept to what the ONEX call
//! sites never observe: a panic in an unjoined child propagates out of
//! [`thread::scope`] (std semantics) instead of surfacing as `Err`, so
//! the customary `.unwrap()` / `.expect(...)` on the result behaves the
//! same on success and still fails the caller on panic.

#![forbid(unsafe_code)]

pub use thread::scope;

pub mod thread {
    //! Scoped threads with the crossbeam calling convention: the spawn
    //! closure receives the scope again, so workers can spawn siblings.

    /// Handle to a spawned scoped thread.
    pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

    /// The scope handed to the [`scope`] closure and to every spawned
    /// worker.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; the closure receives the scope (crossbeam
        /// convention) so it may spawn further workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Run `f` with a scope in which borrowing from the caller's stack is
    /// allowed; all spawned threads are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn workers_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn top_level_scope_alias_works() {
        let n = crate::scope(|scope| scope.spawn(|_| 7usize).join().unwrap()).unwrap();
        assert_eq!(n, 7);
    }
}
