//! A minimal, dependency-free stand-in for the `crossbeam` APIs the ONEX
//! workspace uses: `thread::scope` (built on `std::thread::scope`, stable
//! since Rust 1.63) and a bounded MPMC [`channel`] (built on
//! `std::sync::{Mutex, Condvar}`).
//!
//! API differences from the real crate are kept to what the ONEX call
//! sites never observe: a panic in an unjoined child propagates out of
//! [`thread::scope`] (std semantics) instead of surfacing as `Err`, so
//! the customary `.unwrap()` / `.expect(...)` on the result behaves the
//! same on success and still fails the caller on panic.

#![forbid(unsafe_code)]

pub use thread::scope;

pub mod channel {
    //! A bounded multi-producer multi-consumer channel with the
    //! crossbeam-channel calling convention: [`bounded`] returns a
    //! `(Sender, Receiver)` pair, both cloneable; `send` blocks while the
    //! queue is full, `recv` blocks while it is empty, and each returns
    //! `Err` once the other side has fully disconnected.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error of [`Sender::send`]: every receiver disconnected; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error of [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity; the message is handed back.
        Full(T),
        /// Every receiver disconnected; the message is handed back.
        Disconnected(T),
    }

    /// Error of [`Receiver::recv`]: the queue is empty and every sender
    /// disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error of [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline; senders still exist.
        Timeout,
        /// The queue is empty and every sender disconnected.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        capacity: usize,
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half; clone for more producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone for more consumers (each message is
    /// delivered to exactly one).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel holding at most `capacity` in-flight messages
    /// (`capacity` ≥ 1; zero-capacity rendezvous is not supported by
    /// this shim).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let capacity = capacity.max(1);
        let shared = Arc::new(Shared {
            capacity,
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is room (backpressure), then enqueue.
        ///
        /// # Errors
        /// [`SendError`] when every receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.shared.capacity {
                    state.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).expect("channel lock");
            }
        }

        /// Enqueue without blocking.
        ///
        /// # Errors
        /// [`TrySendError::Full`] when at capacity,
        /// [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives.
        ///
        /// # Errors
        /// [`RecvError`] when the queue is empty and every sender has
        /// disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel lock");
            }
        }

        /// Block until a message arrives or `timeout` elapses — the
        /// deadline-bounded twin of [`Receiver::recv`], for callers that
        /// must not hang forever on a lost reply.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] when the deadline passes with no
        /// message, [`RecvTimeoutError::Disconnected`] when the queue is
        /// empty and every sender has disconnected.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, remaining)
                    .expect("channel lock");
                state = guard;
                // Loop re-checks queue/senders/deadline: spurious wakeups
                // and timeout races both land on the correct branch.
            }
        }

        /// Messages currently queued (racy by nature; for observability).
        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty (racy by nature).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                // Wake every blocked consumer so it can observe the
                // disconnect instead of sleeping forever.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }
}

pub mod thread {
    //! Scoped threads with the crossbeam calling convention: the spawn
    //! closure receives the scope again, so workers can spawn siblings.

    /// Handle to a spawned scoped thread.
    pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

    /// The scope handed to the [`scope`] closure and to every spawned
    /// worker.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; the closure receives the scope (crossbeam
        /// convention) so it may spawn further workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Run `f` with a scope in which borrowing from the caller's stack is
    /// allowed; all spawned threads are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use crate::channel::{bounded, RecvError, RecvTimeoutError, TrySendError};

    #[test]
    fn channel_delivers_in_order_across_threads() {
        let (tx, rx) = bounded::<u32>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn channel_capacity_backpressure_and_try_send() {
        let (tx, rx) = bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn channel_disconnect_is_observable_on_both_sides() {
        let (tx, rx) = bounded::<u8>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError), "senders gone, queue drained");
        let (tx, rx) = bounded::<u8>(2);
        drop(rx);
        assert!(tx.send(1).is_err(), "receivers gone");
        assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));
    }

    #[test]
    fn channel_fans_work_across_cloned_receivers() {
        let (tx, rx) = bounded::<usize>(8);
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0usize;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        for i in 1..=100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 5050, "every message delivered exactly once");
    }

    #[test]
    fn recv_timeout_times_out_delivers_and_observes_disconnect() {
        use std::time::Duration;
        let (tx, rx) = bounded::<u8>(2);
        // Empty queue, live sender: deadline passes → Timeout.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        // A message sent from another thread arrives within the window.
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            tx.send(9).unwrap();
            // tx drops here
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        t.join().unwrap();
        // Senders gone, queue drained: Disconnected, not Timeout.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn workers_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn top_level_scope_alias_works() {
        let n = crate::scope(|scope| scope.spawn(|_| 7usize).join().unwrap()).unwrap();
        assert_eq!(n, 7);
    }
}
