//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! This workspace builds fully offline, so instead of the real `rand` we
//! vendor the small API subset the ONEX crates use: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and the
//! [`distributions::{Distribution, Uniform}`](distributions) types.
//!
//! The generator is SplitMix64 — not the real `StdRng` (ChaCha12), but
//! every ONEX workload is pinned by `(seed, config)` to *this* generator,
//! so determinism across platforms holds just the same.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Uniform};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` from the high 53 bits.
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
    {
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics on an empty range, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_under_seed() {
        let a: f64 = StdRng::seed_from_u64(7).gen();
        let b: f64 = StdRng::seed_from_u64(7).gen();
        let c: f64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..7);
            assert!((3..7).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn uniform_distribution_samples_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let u = Uniform::new(1.0f64, 3.0);
        for _ in 0..100 {
            let x = u.sample(&mut r);
            assert!((1.0..3.0).contains(&x));
        }
    }
}
