//! Distributions and range sampling, mirroring `rand::distributions`.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform `[0, 1)` for floats, uniform over
/// the whole type for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable over a bounded interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Callers guarantee a non-empty interval.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        let v = lo + (hi - lo) * rng.next_f64();
        // `lo + (hi - lo) * f` can round up to exactly `hi`; keep the
        // half-open contract of `lo..hi`.
        if !inclusive && v >= hi {
            hi.next_down()
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        let v = lo + (hi - lo) * rng.next_f64() as f32;
        if !inclusive && v >= hi {
            hi.next_down()
        } else {
            v
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                debug_assert!(span > 0, "empty sampling interval");
                // Modulo bias is < 2^-64 · span — irrelevant for workload
                // generation and property testing.
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// A reusable uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<X> {
    low: X,
    high: X,
}

impl<X: SampleUniform> Uniform<X> {
    /// A uniform distribution over the half-open interval `[low, high)`.
    ///
    /// # Panics
    /// Panics when the interval is empty.
    pub fn new(low: X, high: X) -> Self {
        assert!(low < high, "Uniform::new requires low < high");
        Uniform { low, high }
    }
}

impl<X: SampleUniform> Distribution<X> for Uniform<X> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
        X::sample_between(rng, self.low, self.high, false)
    }
}
