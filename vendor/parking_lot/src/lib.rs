//! A minimal, dependency-free stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s ergonomics: `lock()`
//! returns the guard directly and a poisoned lock (a panic while held)
//! does not poison subsequent accesses.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Ignores poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader–writer lock whose acquires cannot fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a reader–writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Ignores poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard. Ignores poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
