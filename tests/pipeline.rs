//! End-to-end pipeline tests spanning every crate (the Fig 1 loop): load →
//! preprocess → persist/reload → query → visualise.

use onex::engine::{LengthSelection, Onex, QueryOptions, SeasonalOptions};
use onex::grouping::{persist, BaseConfig};
use onex::tseries::gen::{
    electricity_load, matters_collection, ElectricityConfig, Indicator, MattersConfig,
};
use onex::viz::{MultiLineChart, OverviewPane, SeasonalView};

fn growth() -> onex::tseries::Dataset {
    matters_collection(&MattersConfig {
        indicators: vec![Indicator::GrowthRate],
        ..MattersConfig::default()
    })
}

#[test]
fn matters_pipeline_end_to_end() {
    let ds = growth();
    let (engine, report) = Onex::build(ds, BaseConfig::new(1.0, 6, 10)).unwrap();
    assert!(report.groups > 0);
    assert!(report.compaction() >= 1.0);

    let ds = engine.dataset();
    let ma = ds.by_name("MA-GrowthRate").unwrap();
    let query = ma.subsequence(6, 8).unwrap().to_vec();
    let opts = QueryOptions::default().excluding_series(engine.dataset().id_of("MA-GrowthRate"));
    let (m, stats) = engine.best_match(&query, &opts).unwrap();
    let m = m.expect("another state matches");
    assert_ne!(m.series_name, "MA-GrowthRate");
    assert!(m.distance.is_finite() && m.distance >= 0.0);
    assert!(stats.groups_examined > 0);
    assert!(m.path.is_valid(query.len(), m.subseq.len as usize));

    // Visualise: the SVG is structurally sound and mentions the match.
    let svg = MultiLineChart::for_match(&query, &m, &engine.dataset()).render();
    assert!(svg.starts_with("<svg"));
    assert!(svg.ends_with("</svg>\n"));
    assert_eq!(svg.matches("<polyline").count(), 2);
    assert!(svg.contains(&m.series_name));

    let pane = OverviewPane::from_base(&engine.base(), 8, 12);
    assert!(!pane.is_empty());
    assert!(pane.render().contains("ONEX base overview"));
}

#[test]
fn persisted_base_answers_identically() {
    let ds = growth();
    let (engine, _) = Onex::build(ds.clone(), BaseConfig::new(1.0, 6, 10)).unwrap();
    let mut bytes = Vec::new();
    persist::save(&engine.base(), &mut bytes).unwrap();
    let reloaded = persist::load(bytes.as_slice()).unwrap();
    let engine2 = Onex::from_parts(ds, reloaded).unwrap();

    let query = engine
        .dataset()
        .by_name("TX-GrowthRate")
        .unwrap()
        .subsequence(3, 8)
        .unwrap()
        .to_vec();
    let opts = QueryOptions::default();
    let (a, _) = engine.best_match(&query, &opts).unwrap();
    let (b, _) = engine2.best_match(&query, &opts).unwrap();
    let (a, b) = (a.unwrap(), b.unwrap());
    assert_eq!(a.subseq, b.subseq);
    assert!((a.distance - b.distance).abs() < 1e-12);
}

#[test]
fn parallel_and_sequential_engines_agree() {
    let ds = growth();
    let cfg = BaseConfig::new(1.0, 6, 10);
    let (seq_engine, _) = Onex::build(ds.clone(), cfg.clone()).unwrap();
    let (par_engine, _) = Onex::build_parallel(ds, cfg, 4).unwrap();
    assert_eq!(*seq_engine.base(), *par_engine.base());
}

#[test]
fn electricity_seasonal_end_to_end() {
    let ds = electricity_load(&ElectricityConfig {
        households: 1,
        days: 10 * 7,
        samples_per_day: 24,
        noise: 0.05,
        seed: 3,
    });
    let cfg = BaseConfig {
        stride: 24,
        ..BaseConfig::new(0.6, 24, 24)
    };
    let (engine, _) = Onex::build(ds, cfg).unwrap();
    let patterns = engine
        .seasonal("household-0", &SeasonalOptions::default())
        .unwrap();
    assert!(
        !patterns.is_empty(),
        "households repeat daily habits — patterns must exist"
    );
    let top = &patterns[0];
    assert!(top.count() >= 2);
    for w in top.occurrences.windows(2) {
        assert!(w[0].end() <= w[1].start, "occurrences do not overlap");
    }
    // All occurrences are day-aligned because the base stride is 24.
    assert!(top.occurrences.iter().all(|o| o.start % 24 == 0));

    let ds = engine.dataset();
    let series = ds.by_name("household-0").unwrap();
    let svg = SeasonalView::new(800, "hh0", series.values())
        .add_engine_pattern(top)
        .render();
    assert!(svg.contains("occurrences"));
    assert!(svg.matches("<rect").count() >= top.count());
}

#[test]
fn variable_length_query_on_ragged_collection() {
    // The paper's core pitch: heterogeneous, variable-length, misaligned
    // collections. Ragged MATTERS series + a query length not present in
    // every series still answer.
    let ds = matters_collection(&MattersConfig {
        indicators: vec![Indicator::GrowthRate],
        ragged: true,
        ..MattersConfig::default()
    });
    let (engine, _) = Onex::build(ds, BaseConfig::new(1.0, 6, 12)).unwrap();
    let query = engine
        .dataset()
        .by_name("CA-GrowthRate")
        .unwrap()
        .values()
        .to_vec();
    let opts = QueryOptions::default().lengths(LengthSelection::Nearest(4));
    let (matches, _) = engine.k_best(&query, 5, &opts).unwrap();
    assert!(!matches.is_empty());
    for m in &matches {
        assert!(m.normalized.is_finite());
        assert!(m.path.is_valid(query.len(), m.subseq.len as usize));
    }
}

#[test]
fn lifetime_stats_observe_all_queries() {
    let ds = growth();
    let (engine, _) = Onex::build(ds, BaseConfig::new(1.0, 8, 8)).unwrap();
    let q = engine
        .dataset()
        .by_name("OH-GrowthRate")
        .unwrap()
        .subsequence(0, 8)
        .unwrap()
        .to_vec();
    for _ in 0..3 {
        let _ = engine.best_match(&q, &QueryOptions::default()).unwrap();
    }
    let total = engine.lifetime_stats();
    assert!(total.groups_examined >= 3);
    assert!(total.dtw_invocations() >= 3);
}
