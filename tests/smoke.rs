//! Smoke test — the canary every future PR must keep green.
//!
//! Builds a tiny ONEX base over a synthetic dataset and asserts one
//! best-match round-trip: querying with a verbatim window of an indexed
//! series must come back as a (near-)zero-distance match on that window.
//! Runs in well under a second; if this fails, the workspace is broken at
//! the build → query seam and nothing else is worth debugging first.

use onex::engine::{Onex, QueryOptions};
use onex::grouping::{BaseConfig, RepresentativePolicy};
use onex::tseries::gen::{sine_mix_dataset, SyntheticConfig};

#[test]
fn tiny_base_round_trips_a_verbatim_window() {
    let ds = sine_mix_dataset(
        SyntheticConfig {
            series: 6,
            len: 48,
            seed: 0xBEEF,
        },
        2,
        0.05,
    );
    // Seed policy: the exactness guarantee asserted below is certified
    // only when representatives are group seeds (the Centroid default
    // drifts and can prune the verbatim window).
    let cfg = BaseConfig {
        policy: RepresentativePolicy::Seed,
        ..BaseConfig::new(0.8, 8, 12)
    };
    let (engine, report) = Onex::build(ds, cfg).unwrap();
    assert!(report.groups > 0, "base must contain groups");
    assert!(report.subsequences > 0, "base must index subsequences");

    // Query with an exact window of an indexed series. DTW distance to
    // that very window is 0, so the best match must be (essentially)
    // exact — the ONEX exactness guarantee under the Seed policy.
    let query = engine
        .dataset()
        .by_name("sine-3")
        .unwrap()
        .subsequence(10, 10)
        .unwrap()
        .to_vec();
    let (m, stats) = engine.best_match(&query, &QueryOptions::default()).unwrap();
    let m = m.expect("a populated base answers");
    assert!(
        m.distance < 1e-9,
        "verbatim window must match itself, got distance {}",
        m.distance
    );
    assert_eq!(m.series_name, "sine-3");
    assert_eq!(m.subseq.start, 10);
    assert_eq!(m.subseq.len, 10);
    assert!(stats.groups_examined > 0);
}
