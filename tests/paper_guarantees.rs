//! The formal guarantees the demo paper states, tested as written.
//!
//! §3.1: groups "contain sequences that are similar to each other within
//! the similarity threshold ST, while each sequence is similar to the
//! representative within half of the similarity threshold."
//!
//! §3.2: "the best match to a sample sequence seq is found in the group
//! with the 'best match representative' and the DTW between seq and its
//! best match is always within the similarity threshold ST" — the second
//! clause holding in the regime the demo operates in (the query is a
//! lightly perturbed member of the collection, so its own group contains
//! it).

use onex::distance::bounds::{dtw_upper_via_representative, warp_multiplicity};
use onex::distance::{dtw, ed, Band};
use onex::engine::{Onex, QueryOptions};
use onex::grouping::{BaseConfig, RepresentativePolicy};
use onex::tseries::gen::{clustered_dataset, SyntheticConfig};

fn engine(st: f64) -> Onex {
    let ds = clustered_dataset(
        SyntheticConfig {
            series: 16,
            len: 64,
            seed: 97,
        },
        4,
        0.05,
    );
    let cfg = BaseConfig {
        policy: RepresentativePolicy::Seed,
        ..BaseConfig::new(st, 16, 16)
    };
    let (e, _) = Onex::build(ds, cfg).unwrap();
    e
}

#[test]
fn section_3_1_group_invariants() {
    let e = engine(0.4);
    let ds = e.dataset();
    for len in e.base().lengths() {
        let admission = e.base().config().admission_radius(len);
        let pairwise = e.base().config().pairwise_threshold(len);
        for g in e.base().groups_for_len(len) {
            let members: Vec<&[f64]> = g
                .members()
                .iter()
                .map(|&m| ds.resolve(m).unwrap())
                .collect();
            // Each member within ST/2 of the representative.
            for m in &members {
                assert!(ed(m, g.representative()) <= admission + 1e-9);
            }
            // Any two members within ST of each other (check full pairwise
            // on small groups, a spot sample on large ones).
            let limit = members.len().min(8);
            for i in 0..limit {
                for j in i + 1..limit {
                    assert!(
                        ed(members[i], members[j]) <= pairwise + 1e-9,
                        "pairwise ST violated at len {len}"
                    );
                }
            }
        }
    }
}

#[test]
fn section_3_2_best_group_bound() {
    // For the paper's top-1 query mode, the returned distance obeys the
    // bridge bound: DTW(q, answer) ≤ DTW(q, best representative) + √W·r,
    // where r is the certified radius of the winning group.
    let e = engine(0.4);
    let ds = e.dataset();
    let opts = QueryOptions::default().top_groups(1);
    for (sid, start) in [(0u32, 3usize), (5, 20), (11, 40), (15, 0)] {
        let mut query = ds
            .series(sid)
            .unwrap()
            .subsequence(start, 16)
            .unwrap()
            .to_vec();
        for (i, v) in query.iter_mut().enumerate() {
            *v += 0.02 * ((i as f64) * 1.1).sin();
        }
        let (m, _) = e.best_match(&query, &opts).unwrap();
        let m = m.unwrap();
        // Recompute the winning group's representative distance and radius.
        let base = e.base();
        let group = base.group(m.group).unwrap();
        let d_rep = dtw(&query, group.representative(), Band::Full);
        let w = warp_multiplicity(query.len(), group.len(), Band::Full);
        let bound = dtw_upper_via_representative(d_rep, group.radius(), w);
        assert!(
            m.distance <= bound + 1e-9,
            "answer {} above the bridge bound {bound}",
            m.distance
        );
    }
}

#[test]
fn section_3_2_member_query_within_st() {
    // A query that *is* a member (the analyst brushes a window of the
    // data) must come back with DTW ≤ ST — trivially, distance 0 to
    // itself; and even in the paper's top-1 mode the winning group is its
    // own group, whose every member is within the bridge reach.
    let e = engine(0.4);
    let ds = e.dataset();
    let st_raw = e.base().config().pairwise_threshold(16);
    for (sid, start) in [(2u32, 10usize), (7, 30), (13, 48)] {
        let query = ds
            .series(sid)
            .unwrap()
            .subsequence(start, 16)
            .unwrap()
            .to_vec();
        let (m, _) = e
            .best_match(&query, &QueryOptions::default().top_groups(1))
            .unwrap();
        let m = m.unwrap();
        assert!(
            m.distance <= st_raw + 1e-9,
            "member query answered at {} > ST {st_raw}",
            m.distance
        );
    }
}
