//! Live-ingest linearisability: concurrent readers hammering `k_best`
//! while a writer appends series must always observe *some* published
//! epoch's exact answer — never a mixture of two epochs, never a block,
//! never a panic. The guarantee is checked across the plain engine
//! backend, the caching decorator and the sharded engine, and the
//! failure leg checks that a rejected append leaves every backend
//! answering from the prior epoch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use onex::api::SimilaritySearch;
use onex::engine::backends::OnexBackend;
use onex::engine::{CachedSearch, Onex, ShardedEngine};
use onex::grouping::{BaseConfig, RepresentativePolicy};
use onex::tseries::gen::{random_walk_dataset, SyntheticConfig};
use onex::tseries::{Dataset, TimeSeries};

const LEN: usize = 16;
const APPENDS: usize = 6;
const K: usize = 3;

fn exact_config() -> BaseConfig {
    BaseConfig {
        policy: RepresentativePolicy::Seed,
        ..BaseConfig::new(0.5, LEN, LEN)
    }
}

fn base_dataset() -> Dataset {
    random_walk_dataset(SyntheticConfig {
        series: 10,
        len: 64,
        seed: 0x1A6E57,
    })
}

/// The fixed query: a perturbed window of base series 0, so every
/// distance in every oracle is distinct (no ties to blur epochs).
fn query(ds: &Dataset) -> Vec<f64> {
    let mut q = ds.series(0).unwrap().subsequence(10, LEN).unwrap().to_vec();
    for (i, v) in q.iter_mut().enumerate() {
        *v += 0.05 * ((i as f64) * 1.7).sin();
    }
    q
}

/// Appended series `i`: a strictly-closer near-clone of the query, so
/// each published epoch has a *different* top-k — an answer therefore
/// identifies exactly one epoch, and a mixed-epoch answer matches none.
fn ingest_series(q: &[f64], i: usize) -> TimeSeries {
    let eps = 0.04 / (1 << i) as f64;
    let values = q
        .iter()
        .enumerate()
        .map(|(j, v)| v + eps * ((j as f64) * 2.3).cos())
        .collect::<Vec<_>>();
    TimeSeries::new(format!("ingest-{i}"), values)
}

/// One epoch's ground truth, from a fresh batch build over the prefix —
/// incremental extension is bit-identical to batch construction (the
/// grouping property tests prove it), so this is the pinnable oracle.
fn oracle_answer(prefix: &Dataset, q: &[f64]) -> Vec<(u32, usize, usize, f64)> {
    let (engine, _) = Onex::build(prefix.clone(), exact_config()).unwrap();
    let out = OnexBackend::new(Arc::new(engine)).k_best(q, K).unwrap();
    out.matches
        .iter()
        .map(|m| (m.series, m.start, m.len, m.distance))
        .collect()
}

/// Which oracle epoch `answer` reproduces, if any: windows must match
/// exactly and distances to within float-merge tolerance.
fn epoch_of(
    oracles: &[Vec<(u32, usize, usize, f64)>],
    answer: &[(u32, usize, usize, f64)],
) -> Option<usize> {
    oracles.iter().position(|o| {
        o.len() == answer.len()
            && o.iter()
                .zip(answer)
                .all(|(a, b)| (a.0, a.1, a.2) == (b.0, b.1, b.2) && (a.3 - b.3).abs() < 1e-9)
    })
}

fn flatten(out: &onex::api::SearchOutcome) -> Vec<(u32, usize, usize, f64)> {
    out.matches
        .iter()
        .map(|m| (m.series, m.start, m.len, m.distance))
        .collect()
}

#[test]
fn hammered_readers_always_observe_a_single_pinnable_epoch() {
    let ds = base_dataset();
    let q = query(&ds);

    // Ground truth for every epoch 0..=APPENDS.
    let mut oracles = Vec::new();
    let mut prefix = ds.clone();
    oracles.push(oracle_answer(&prefix, &q));
    for i in 0..APPENDS {
        prefix.push(ingest_series(&q, i)).unwrap();
        oracles.push(oracle_answer(&prefix, &q));
    }
    // Every epoch's answer is distinguishable from every other's.
    for e in 1..oracles.len() {
        assert_ne!(oracles[e - 1], oracles[e], "epoch {e} must be observable");
    }

    // The three backends under test, over two live collections: the
    // plain engine (also wrapped by the cache) and the sharded engine.
    let (engine, _) = Onex::build(ds.clone(), exact_config()).unwrap();
    let engine = Arc::new(engine);
    let plain = OnexBackend::new(Arc::clone(&engine));
    let cached = CachedSearch::new(OnexBackend::new(Arc::clone(&engine)), 32).unwrap();
    let (sharded, _) = ShardedEngine::build(&ds, exact_config(), 3).unwrap();

    let done = AtomicBool::new(false);
    crossbeam::thread::scope(|scope| {
        // The writer: publish APPENDS epochs on both collections while
        // the readers hammer away.
        let writer_engine = Arc::clone(&engine);
        let writer_sharded = &sharded;
        let writer_q = q.clone();
        let done_flag = &done;
        scope.spawn(move |_| {
            for i in 0..APPENDS {
                writer_engine
                    .append_series(ingest_series(&writer_q, i))
                    .expect("live append");
                writer_sharded
                    .append_series(ingest_series(&writer_q, i))
                    .expect("live append");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done_flag.store(true, Ordering::SeqCst);
        });

        // Three readers per backend kind, each checking every answer
        // against the oracle set and that observed epochs never rewind.
        for reader in 0..3 {
            let backends: Vec<(&str, &(dyn SimilaritySearch + Sync))> = vec![
                ("plain", &plain),
                ("cached", &cached),
                ("sharded", &sharded),
            ];
            let oracles = &oracles;
            let q = &q;
            let done = &done;
            scope.spawn(move |_| {
                let mut last_epoch = vec![0usize; backends.len()];
                let mut rounds = 0usize;
                while !done.load(Ordering::SeqCst) || rounds == 0 {
                    for (b, (name, backend)) in backends.iter().enumerate() {
                        let out = backend.k_best(q, K).unwrap_or_else(|e| {
                            panic!("reader {reader}: {name} errored mid-ingest: {e}")
                        });
                        let answer = flatten(&out);
                        let epoch = epoch_of(oracles, &answer).unwrap_or_else(|| {
                            panic!(
                                "reader {reader}: {name} answered a mixture of epochs: \
                                 {answer:?}"
                            )
                        });
                        assert!(
                            epoch >= last_epoch[b],
                            "reader {reader}: {name} rewound from epoch {} to {epoch}",
                            last_epoch[b]
                        );
                        last_epoch[b] = epoch;
                    }
                    rounds += 1;
                }
            });
        }
    })
    .unwrap();

    // Quiesced: every backend answers the final epoch's oracle exactly.
    assert_eq!(engine.epoch(), APPENDS as u64);
    assert_eq!(sharded.epoch(), APPENDS as u64);
    for backend in [&plain as &(dyn SimilaritySearch + Sync), &cached, &sharded] {
        let answer = flatten(&backend.k_best(&q, K).unwrap());
        assert_eq!(
            epoch_of(&oracles, &answer),
            Some(APPENDS),
            "{} must land on the final epoch",
            backend.name()
        );
    }
}

#[test]
fn a_rejected_append_leaves_every_backend_on_the_prior_epoch() {
    let ds = base_dataset();
    let q = query(&ds);

    let (engine, _) = Onex::build(ds.clone(), exact_config()).unwrap();
    let engine = Arc::new(engine);
    let plain = OnexBackend::new(Arc::clone(&engine));
    let cached = CachedSearch::new(OnexBackend::new(Arc::clone(&engine)), 32).unwrap();
    let (sharded, _) = ShardedEngine::build(&ds, exact_config(), 3).unwrap();

    let before: Vec<_> = [&plain as &(dyn SimilaritySearch + Sync), &cached, &sharded]
        .iter()
        .map(|b| flatten(&b.k_best(&q, K).unwrap()))
        .collect();
    assert_eq!(cached.cache_stats().misses, 1);

    // A duplicate name conflicts with the published collection: the
    // append is rejected and NOTHING is published — on either engine.
    let taken = ds.series(3).unwrap().name().to_owned();
    let dup = || TimeSeries::new(taken.clone(), vec![0.0; LEN]);
    assert!(engine.append_series(dup()).is_err());
    assert!(sharded.append_series(dup()).is_err());
    assert_eq!(engine.epoch(), 0, "failed append must not publish");
    assert_eq!(sharded.epoch(), 0, "failed append must not publish");

    // All three keep answering from the prior epoch, bit-for-bit; the
    // cache still serves its (valid!) entry as a hit.
    for (b, backend) in [&plain as &(dyn SimilaritySearch + Sync), &cached, &sharded]
        .iter()
        .enumerate()
    {
        let after = flatten(&backend.k_best(&q, K).unwrap());
        assert_eq!(after, before[b], "{} changed its answer", backend.name());
    }
    assert_eq!(cached.cache_stats().hits, 1, "entry survived the rejection");

    // And a subsequent valid append still works: the failure left no
    // wedged writer lock or half-state behind.
    engine.append_series(ingest_series(&q, 0)).unwrap();
    sharded.append_series(ingest_series(&q, 0)).unwrap();
    assert_eq!((engine.epoch(), sharded.epoch()), (1, 1));
    let fresh = flatten(&plain.k_best(&q, K).unwrap());
    assert_ne!(fresh, before[0], "the new epoch is live");
    assert_eq!(fresh, flatten(&sharded.k_best(&q, K).unwrap()));
}
