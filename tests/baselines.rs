//! Cross-system agreement tests: the ONEX engine, the exhaustive scanner
//! and the UCR Suite must tell consistent stories on data with a planted
//! ground truth.

use onex::engine::{exhaustive, Onex, QueryOptions};
use onex::grouping::{BaseConfig, RepresentativePolicy};
use onex::tseries::gen::{planted_motif_series, random_walk};
use onex::tseries::{Dataset, TimeSeries};
use onex::ucrsuite::{ucr_dtw_search, ucr_ed_search, DtwSearchConfig};

/// Two series, each with the same motif planted once, plus a decoy series.
fn planted_collection() -> (Dataset, Vec<f64>, Vec<(u32, usize)>) {
    let (s1, motif, p1) = planted_motif_series(300, 24, 1, 0.1, 5);
    let (s2, _, p2) = planted_motif_series(300, 24, 1, 0.1, 6);
    let decoy = random_walk(300, 1.0, 7);
    let ds = Dataset::from_series(vec![
        TimeSeries::new("a", s1),
        TimeSeries::new("b", s2),
        TimeSeries::new("decoy", decoy),
    ])
    .unwrap();
    let locations = vec![(0u32, p1[0]), (1u32, p2[0])];
    (ds, motif, locations)
}

#[test]
fn engine_finds_a_planted_motif() {
    let (ds, motif, locations) = planted_collection();
    let cfg = BaseConfig {
        policy: RepresentativePolicy::Seed,
        ..BaseConfig::new(1.0, 24, 24)
    };
    let (engine, _) = Onex::build(ds, cfg).unwrap();
    let (m, _) = engine.best_match(&motif, &QueryOptions::default()).unwrap();
    let m = m.unwrap();
    let hit = locations.iter().any(|&(sid, pos)| {
        m.subseq.series == sid && (m.subseq.start as i64 - pos as i64).abs() <= 2
    });
    assert!(
        hit,
        "engine match {:?} not at a planted site {locations:?}",
        m.subseq
    );
}

#[test]
fn engine_equals_exhaustive_on_planted_data() {
    let (ds, motif, _) = planted_collection();
    let cfg = BaseConfig {
        policy: RepresentativePolicy::Seed,
        ..BaseConfig::new(1.0, 24, 24)
    };
    let (engine, _) = Onex::build(ds.clone(), cfg).unwrap();
    let opts = QueryOptions::default();
    let (m, _) = engine.best_match(&motif, &opts).unwrap();
    let truth = exhaustive::scan_best(&ds, &motif, &[24], 1, &opts, true)
        .unwrap()
        .unwrap();
    assert!((m.unwrap().distance - truth.distance).abs() < 1e-9);
}

#[test]
fn ucr_suite_finds_planted_motifs_too() {
    // UCR works z-normalised, but the motif dwarfs the noise floor, so
    // the z-normalised best window still sits at a planted location.
    let (ds, motif, locations) = planted_collection();
    for &(sid, pos) in &locations {
        let series = ds.series(sid).unwrap().values();
        let (hit, stats) = ucr_dtw_search(series, &motif, &DtwSearchConfig::default()).unwrap();
        assert!(
            (hit.start as i64 - pos as i64).abs() <= 2,
            "series {sid}: ucr found {} expected ~{pos}",
            hit.start
        );
        assert!(stats.candidates > 0);
        let (ed_hit, _) = ucr_ed_search(series, &motif).unwrap();
        assert!((ed_hit.start as i64 - pos as i64).abs() <= 2);
    }
}

#[test]
fn scans_and_engine_agree_under_banded_dtw() {
    let (ds, motif, _) = planted_collection();
    let cfg = BaseConfig {
        policy: RepresentativePolicy::Seed,
        ..BaseConfig::new(1.0, 24, 24)
    };
    let (engine, _) = Onex::build(ds.clone(), cfg).unwrap();
    let opts = QueryOptions::with_band(onex::distance::Band::SakoeChiba(2));
    let (m, _) = engine.best_match(&motif, &opts).unwrap();
    let truth = exhaustive::scan_best(&ds, &motif, &[24], 1, &opts, true)
        .unwrap()
        .unwrap();
    assert!((m.unwrap().distance - truth.distance).abs() < 1e-9);
}

#[test]
fn k_best_covers_both_planted_sites() {
    let (ds, motif, locations) = planted_collection();
    let cfg = BaseConfig {
        policy: RepresentativePolicy::Seed,
        ..BaseConfig::new(1.0, 24, 24)
    };
    let (engine, _) = Onex::build(ds, cfg).unwrap();
    // Ask for enough neighbours to cover shifted duplicates around each
    // planted site plus both sites.
    let (matches, _) = engine.k_best(&motif, 10, &QueryOptions::default()).unwrap();
    for &(sid, pos) in &locations {
        let covered = matches
            .iter()
            .any(|m| m.subseq.series == sid && (m.subseq.start as i64 - pos as i64).abs() <= 3);
        assert!(covered, "site ({sid},{pos}) missing from top-10");
    }
}

// ---------------------------------------------------------------------
// The four reference baselines (paper refs [1], [3], [4], [7]) must tell
// the same story as the engine and each other on planted ground truth.
// ---------------------------------------------------------------------

use onex::distance::{dtw, Band, IddtwModel};
use onex::embedding::{EbsmConfig, EbsmIndex};
use onex::frm::{StConfig, StIndex};
use onex::spring::{spring_best_match, spring_search};

#[test]
fn spring_finds_planted_motifs_in_a_stream() {
    let (stream, motif, plants) = planted_motif_series(400, 24, 3, 0.05, 11);
    let hits = spring_search(&stream, &motif, 1.0).unwrap();
    // Every planted site must be covered by some reported match.
    for &p in &plants {
        let covered = hits.iter().any(|h| h.start <= p + 2 && p + 21 <= h.end + 2);
        assert!(covered, "plant at {p} missed; hits {hits:?}");
    }
}

#[test]
fn spring_best_match_agrees_with_engine_on_shared_semantics() {
    // Fixed-length raw-DTW best match: the engine in exact mode restricted
    // to one series must never beat SPRING's variable-length optimum, and
    // SPRING's optimum must never be worse than the engine's fixed-length
    // answer.
    let (s1, motif, _) = planted_motif_series(250, 24, 1, 0.1, 21);
    let ds = Dataset::from_series(vec![TimeSeries::new("a", s1.clone())]).unwrap();
    let cfg = BaseConfig {
        policy: RepresentativePolicy::Seed,
        ..BaseConfig::new(1.0, 24, 24)
    };
    let (engine, _) = Onex::build(ds, cfg).unwrap();
    let (m, _) = engine.best_match(&motif, &QueryOptions::default()).unwrap();
    let m = m.unwrap();
    let spring = spring_best_match(&s1, &motif).unwrap();
    assert!(
        spring.dist <= m.distance + 1e-9,
        "variable-length optimum {} above fixed-length {}",
        spring.dist,
        m.distance
    );
}

#[test]
fn frm_best_window_equals_raw_ed_scan() {
    let (s1, motif, _) = planted_motif_series(300, 32, 2, 0.08, 31);
    let (s2, _, _) = planted_motif_series(300, 32, 1, 0.08, 32);
    let series = vec![s1, s2];
    let idx = StIndex::<4>::build(
        series.clone(),
        StConfig {
            window: 32,
            subtrail_max: 24,
            cost_scale: 1.0,
        },
    );
    let (best, _) = idx.best_match(&motif).unwrap();
    // Brute-force raw ED.
    let mut want = f64::INFINITY;
    for s in &series {
        for start in 0..=s.len() - 32 {
            let d: f64 = s[start..start + 32]
                .iter()
                .zip(&motif)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            want = want.min(d);
        }
    }
    assert!(
        (best.dist - want).abs() < 1e-9,
        "frm {} scan {}",
        best.dist,
        want
    );
}

#[test]
fn ebsm_with_generous_budget_matches_spring_ground_truth() {
    let (s1, motif, _) = planted_motif_series(200, 24, 2, 0.1, 41);
    let (s2, _, _) = planted_motif_series(200, 24, 1, 0.1, 42);
    let series = vec![s1, s2];
    let idx = EbsmIndex::build(
        series.clone(),
        EbsmConfig {
            references: 8,
            ref_len: 24,
            candidates: 10_000,
            refine_factor: 4,
            seed: 5,
        },
    );
    let (hit, _) = idx.best_match(&motif).unwrap();
    let exact = series
        .iter()
        .filter_map(|s| spring_best_match(s, &motif))
        .map(|m| m.dist)
        .fold(f64::INFINITY, f64::min);
    assert!(
        (hit.dist - exact).abs() < 1e-9,
        "ebsm {} exact {}",
        hit.dist,
        exact
    );
}

#[test]
fn iddtw_ranks_planted_window_first() {
    // Candidates: windows of a planted series; the window at the planted
    // site must win, and IDDTW must agree with brute force.
    let (s1, motif, plants) = planted_motif_series(300, 24, 1, 0.05, 51);
    let windows: Vec<Vec<f64>> = (0..s1.len() - 24)
        .step_by(6)
        .map(|i| s1[i..i + 24].to_vec())
        .collect();
    let pairs: Vec<(Vec<f64>, Vec<f64>)> =
        windows.iter().map(|w| (motif.clone(), w.clone())).collect();
    let model = IddtwModel::train(&pairs, &[4, 12], 1.0, Band::Full);
    let (gi, gd, stats) = model
        .nearest(&motif, windows.iter().map(|v| v.as_slice()))
        .unwrap();
    let mut want = (0usize, f64::INFINITY);
    for (i, w) in windows.iter().enumerate() {
        let d = dtw(&motif, w, Band::Full);
        if d < want.1 {
            want = (i, d);
        }
    }
    assert!((gd - want.1).abs() < 1e-9, "iddtw {} brute {}", gd, want.1);
    assert_eq!(gi, want.0);
    // The winner should sit near the planted site.
    let win_start = gi * 6;
    assert!(
        (win_start as i64 - plants[0] as i64).abs() <= 6,
        "winner at {win_start}, plant at {}",
        plants[0]
    );
    // And the coarse filter should have done real work.
    let abandoned: usize = stats.abandoned_per_level.iter().sum();
    assert!(abandoned > 0, "no coarse abandonment: {stats:?}");
}
