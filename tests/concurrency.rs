//! The demo's client–server architecture: one engine, many concurrent
//! analysts. Queries take `&self`, so the engine must answer identically
//! and without data races when shared across threads.

use std::sync::Arc;

use onex::engine::{Onex, QueryOptions, SeasonalOptions};
use onex::grouping::BaseConfig;
use onex::tseries::gen::{matters_collection, Indicator, MattersConfig};

fn engine() -> Arc<Onex> {
    let ds = matters_collection(&MattersConfig {
        indicators: vec![Indicator::GrowthRate],
        ..MattersConfig::default()
    });
    let (e, _) = Onex::build(ds, BaseConfig::new(1.0, 6, 10)).unwrap();
    Arc::new(e)
}

#[test]
fn concurrent_queries_agree_with_serial_answers() {
    let engine = engine();
    let states = ["MA", "NY", "CA", "TX", "OH", "GA", "WA", "FL"];
    // Serial reference answers.
    let mut reference = Vec::new();
    for s in &states {
        let name = format!("{s}-GrowthRate");
        let q = engine
            .dataset()
            .by_name(&name)
            .unwrap()
            .subsequence(4, 8)
            .unwrap()
            .to_vec();
        let opts = QueryOptions::default().excluding_series(engine.dataset().id_of(&name));
        let (m, _) = engine.best_match(&q, &opts).unwrap();
        reference.push(m.unwrap());
    }
    // The same queries, four threads, several rounds each.
    crossbeam::thread::scope(|scope| {
        for t in 0..4 {
            let engine = Arc::clone(&engine);
            let reference = &reference;
            scope.spawn(move |_| {
                for round in 0..3 {
                    let idx = (t + round * 2) % states.len();
                    let name = format!("{}-GrowthRate", states[idx]);
                    let q = engine
                        .dataset()
                        .by_name(&name)
                        .unwrap()
                        .subsequence(4, 8)
                        .unwrap()
                        .to_vec();
                    let opts =
                        QueryOptions::default().excluding_series(engine.dataset().id_of(&name));
                    let (m, _) = engine.best_match(&q, &opts).unwrap();
                    let m = m.unwrap();
                    assert_eq!(m.subseq, reference[idx].subseq, "thread {t} round {round}");
                    assert!((m.distance - reference[idx].distance).abs() < 1e-12);
                }
            });
        }
    })
    .unwrap();
    // Lifetime stats observed every query without losing updates:
    // 8 serial + 4 threads × 3 rounds = 20 best_match calls.
    let total = engine.lifetime_stats();
    assert!(total.groups_examined >= 20, "{total:?}");
}

#[test]
fn mixed_operation_kinds_run_concurrently() {
    let engine = engine();
    crossbeam::thread::scope(|scope| {
        let e1 = Arc::clone(&engine);
        scope.spawn(move |_| {
            for _ in 0..5 {
                let q = e1
                    .dataset()
                    .by_name("MN-GrowthRate")
                    .unwrap()
                    .subsequence(0, 8)
                    .unwrap()
                    .to_vec();
                let (m, _) = e1.k_best(&q, 3, &QueryOptions::default()).unwrap();
                assert_eq!(m.len(), 3);
            }
        });
        let e2 = Arc::clone(&engine);
        scope.spawn(move |_| {
            for _ in 0..5 {
                let patterns = e2
                    .seasonal("IA-GrowthRate", &SeasonalOptions::default())
                    .unwrap();
                // Annual growth data may or may not have recurrences;
                // the call just must not race or panic.
                let _ = patterns.len();
            }
        });
        let e3 = Arc::clone(&engine);
        scope.spawn(move |_| {
            for seed in 0..5 {
                let rec = e3.recommend_threshold(8, 500, seed).unwrap();
                assert!(rec.suggested > 0.0);
            }
        });
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// The baseline indexes must be shareable across query threads too.
// ---------------------------------------------------------------------

#[test]
fn frm_and_ebsm_answer_concurrently() {
    use onex::embedding::{EbsmConfig, EbsmIndex};
    use onex::frm::{StConfig, StIndex};

    let series: Vec<Vec<f64>> = (0..8)
        .map(|p| {
            (0..120)
                .map(|i| ((i + 13 * p) as f64 * 0.23).sin() * 2.0)
                .collect()
        })
        .collect();
    let frm = StIndex::<4>::build(
        series.clone(),
        StConfig {
            window: 16,
            subtrail_max: 16,
            cost_scale: 1.0,
        },
    );
    let ebsm = EbsmIndex::build(
        series.clone(),
        EbsmConfig {
            references: 4,
            ref_len: 16,
            candidates: 8,
            refine_factor: 2,
            seed: 3,
        },
    );
    crossbeam::scope(|scope| {
        for t in 0..4 {
            let frm = &frm;
            let ebsm = &ebsm;
            let series = &series;
            scope.spawn(move |_| {
                let query = series[t % series.len()][10..26].to_vec();
                let (fh, _) = frm.best_match(&query).expect("non-empty index");
                assert!(fh.dist < 1e-9, "FRM is exact: verbatim window must win");
                // EBSM is approximate — a verbatim window may rank below
                // the candidate budget when the database embedding sees
                // more context than the query embedding — but it must
                // return a faithful finite answer under concurrent use.
                let (eh, _) = ebsm.best_match(&query).expect("non-empty index");
                assert!(eh.dist.is_finite());
            });
        }
    })
    .expect("no thread panicked");
}

// ---------------------------------------------------------------------
// Concurrency conformance: every SimilaritySearch backend — the four
// baselines, ONEX, and the scale-out engines — must answer a hammered
// shared instance identically from every thread, with race-free stats.
// ---------------------------------------------------------------------

#[test]
fn every_backend_answers_identically_under_thread_hammer() {
    use onex::engine::backends::{
        CachedSearch, EbsmBackend, FrmBackend, OnexBackend, ShardedEngine, SpringBackend,
        UcrSuiteBackend,
    };
    use onex::SimilaritySearch;

    const QLEN: usize = 16;
    const THREADS: usize = 8;
    const ROUNDS: usize = 3;

    // Six diverse series so every metric is well-conditioned (the same
    // shape the conformance suite uses).
    let series: Vec<onex::tseries::TimeSeries> = (0..6)
        .map(|i| {
            let phase = i as f64 * 0.9;
            let values: Vec<f64> = (0..96)
                .map(|t| {
                    let x = t as f64;
                    (x * 0.21 + phase).sin() * 2.0 + (x * 0.043 + phase * 0.5).cos()
                })
                .collect();
            onex::tseries::TimeSeries::new(format!("series-{i}"), values)
        })
        .collect();
    let ds = onex::tseries::Dataset::from_series(series).unwrap();
    let cfg = || BaseConfig::new(0.8, QLEN, QLEN);

    let (plain_engine, _) = onex::engine::Onex::build(ds.clone(), cfg()).unwrap();
    let plain_engine = Arc::new(plain_engine);
    let (cache_engine, _) = onex::engine::Onex::build(ds.clone(), cfg()).unwrap();
    let cached = CachedSearch::new(OnexBackend::new(Arc::new(cache_engine)), 64).unwrap();
    // Independent per-shard bounds: this test demands *stats* determinism
    // per query, which cross-shard bound sharing deliberately trades away
    // (work depends on how fast shards tighten each other). The
    // sharing-on hammer lives in backend_conformance.rs and asserts what
    // sharing does guarantee — identical matches.
    let (sharded, _) = ShardedEngine::build(&ds, cfg(), 3).unwrap();
    let sharded = sharded.sharing_bound(false);

    let backends: Vec<Box<dyn SimilaritySearch + Send + Sync>> = vec![
        Box::new(OnexBackend::new(Arc::clone(&plain_engine))),
        Box::new(UcrSuiteBackend::from_dataset(&ds)),
        Box::new(FrmBackend::<4>::from_dataset(&ds, 8)),
        Box::new(EbsmBackend::from_dataset(&ds, onex::embedding::EbsmConfig::default()).unwrap()),
        Box::new(SpringBackend::from_dataset(&ds)),
        Box::new(sharded),
    ];

    let queries: Vec<Vec<f64>> = [(0u32, 10usize), (2, 40), (4, 71)]
        .iter()
        .map(|&(sid, start)| {
            ds.series(sid)
                .unwrap()
                .subsequence(start, QLEN)
                .unwrap()
                .to_vec()
        })
        .collect();

    for backend in &backends {
        // Serial reference answers (and per-call stats) first.
        let reference: Vec<_> = queries
            .iter()
            .map(|q| backend.k_best(q, 4).unwrap())
            .collect();
        crossbeam::thread::scope(|scope| {
            for t in 0..THREADS {
                let backend = &backend;
                let queries = &queries;
                let reference = &reference;
                scope.spawn(move |_| {
                    for round in 0..ROUNDS {
                        let qi = (t + round) % queries.len();
                        let out = backend.k_best(&queries[qi], 4).unwrap();
                        assert_eq!(
                            out.matches,
                            reference[qi].matches,
                            "{}: thread {t} round {round} diverged",
                            backend.name()
                        );
                        assert_eq!(
                            out.stats,
                            reference[qi].stats,
                            "{}: stats must be per-query deterministic",
                            backend.name()
                        );
                    }
                });
            }
        })
        .unwrap();
    }

    // The ONEX engine's lifetime counters observed every one of the
    // (serial + hammered) queries without losing an update.
    let per_query: usize = queries
        .iter()
        .map(|q| {
            let (_, s) = plain_engine
                .k_best(q, 4, &onex::engine::QueryOptions::default())
                .unwrap();
            s.groups_examined
        })
        .sum();
    assert!(per_query > 0);
    let total = plain_engine.lifetime_stats().groups_examined;
    // Every query ran the same number of times through this engine: once
    // in the serial reference pass, once per thread in the hammer
    // (ROUNDS == queries.len(), so `(t + round) % len` covers each query
    // exactly once per thread), and once in the measurement just above.
    assert_eq!(ROUNDS, queries.len(), "hammer covers queries uniformly");
    let calls_per_query = 1 + THREADS + 1;
    assert_eq!(
        total,
        per_query * calls_per_query,
        "lifetime counters lost updates under concurrency"
    );

    // The cache's counters are exact under the same hammer: warmed
    // serially (one miss per query), every concurrent call is a hit.
    let warm: Vec<_> = queries
        .iter()
        .map(|q| cached.k_best(q, 4).unwrap())
        .collect();
    crossbeam::thread::scope(|scope| {
        for t in 0..THREADS {
            let cached = &cached;
            let queries = &queries;
            let warm = &warm;
            scope.spawn(move |_| {
                for round in 0..ROUNDS {
                    let qi = (t + round) % queries.len();
                    let out = cached.k_best(&queries[qi], 4).unwrap();
                    assert_eq!(out, warm[qi], "cached: thread {t} round {round}");
                }
            });
        }
    })
    .unwrap();
    let stats = cached.cache_stats();
    assert_eq!(stats.misses, queries.len(), "one miss per distinct query");
    assert_eq!(stats.hits, THREADS * ROUNDS, "every hammered call hit");
    assert_eq!(stats.entries, queries.len());
}

#[test]
fn spring_monitors_run_per_thread() {
    use onex::spring::SpringMonitor;

    let pattern = [0.0, 1.0, 2.0, 1.0, 0.0];
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let pattern = pattern.to_vec();
            std::thread::spawn(move || {
                let mut mon = SpringMonitor::new(&pattern, 0.5).expect("valid pattern");
                let mut stream = vec![9.0; 5 + t];
                stream.extend_from_slice(&pattern);
                stream.extend(vec![9.0; 4]);
                let mut found = Vec::new();
                for &x in &stream {
                    found.extend(mon.push(x));
                }
                found.extend(mon.finish());
                assert_eq!(found.len(), 1);
                assert_eq!(found[0].start, 5 + t);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panic");
    }
}
