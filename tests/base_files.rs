//! Base files through the live mutation path: a base saved *after*
//! `append_series` must cold-start back to the exact same engine — the
//! L0 sketch slabs byte-identical (v2 persists them verbatim under
//! their frozen quantisation parameters, so a loaded base prunes with
//! the same rejections, not statistically similar ones) and the top-k
//! unchanged whether the L0 prefilter is on or off.

use onex::engine::{Match, Onex, QueryOptions};
use onex::grouping::BaseConfig;
use onex::tseries::gen::{random_walk_dataset, SyntheticConfig};
use onex::tseries::TimeSeries;

const K: usize = 4;

fn windows(matches: &[Match]) -> Vec<(u32, u32, u32, String)> {
    matches
        .iter()
        .map(|m| {
            (
                m.subseq.series,
                m.subseq.start,
                m.subseq.len,
                format!("{:.12}", m.distance),
            )
        })
        .collect()
}

#[test]
fn base_saved_after_appends_reloads_with_identical_sketches_and_topk() {
    let ds = random_walk_dataset(SyntheticConfig {
        series: 8,
        len: 48,
        seed: 0xBA5EF11E,
    });
    let (engine, _) = Onex::build(ds, BaseConfig::new(0.8, 8, 16)).expect("valid config");

    // Grow the base through the live path — the saved file must capture
    // the *extended* engine, including sketch slots appended for the new
    // members under the per-length parameters frozen at first sync.
    for (i, seed) in [0x0Au64, 0x0B].iter().enumerate() {
        let mut x = *seed as f64 / 7.0;
        let values: Vec<f64> = (0..48)
            .map(|t| {
                x += ((t as f64 * 0.37 + *seed as f64).sin()) * 0.5;
                x
            })
            .collect();
        engine
            .append_series(TimeSeries::new(format!("appended-{i}"), values))
            .expect("valid series");
    }

    let dir = std::env::temp_dir().join("onex_base_files_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("after_append.onexbase");
    engine.save_base(&path).expect("writable temp dir");

    let reloaded = Onex::open(&path, engine.dataset().clone()).expect("own file");
    reloaded.resolve_all().expect("own file");
    std::fs::remove_file(&path).ok();

    // The sketch index is byte-exact (PartialEq over slabs + params):
    // nothing was re-quantised on the way through the file.
    assert_eq!(
        *reloaded.base().sketches(),
        *engine.base().sketches(),
        "reloaded sketch slabs must be byte-identical to the saved engine's"
    );
    assert_eq!(*reloaded.base(), *engine.base(), "full base round-trips");

    // Top-k equality across the reload, with the L0 prefilter on and
    // off: the prefilter is an optimisation, never an approximation, and
    // the persisted slabs must not change which candidates survive.
    let query: Vec<f64> = engine.dataset().series(8).unwrap().values()[3..15].to_vec();
    let on = QueryOptions::default();
    let off = QueryOptions::default().without_l0();
    let reference = windows(&engine.k_best(&query, K, &on).expect("valid query").0);
    assert!(!reference.is_empty(), "the query must actually match");
    for (label, engine_under_test, opts) in [
        ("saved engine, L0 off", &engine, &off),
        ("reloaded, L0 on", &reloaded, &on),
        ("reloaded, L0 off", &reloaded, &off),
    ] {
        let got = windows(
            &engine_under_test
                .k_best(&query, K, opts)
                .expect("valid query")
                .0,
        );
        assert_eq!(got, reference, "{label}: top-{K} diverged");
    }
}
