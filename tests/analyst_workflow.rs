//! The paper's §1 motivating scenario as one integration test: analysts
//! studying the 2013 Massachusetts tax-repeal question derive growth
//! series from levels, align mixed-granularity indicators, tune the
//! threshold per domain, and run warped similarity searches — exercising
//! ops + threshold + engine + viz together.

use onex::engine::{Onex, QueryOptions};
use onex::grouping::BaseConfig;
use onex::tseries::gen::{matters_collection, Indicator, MattersConfig};
use onex::tseries::ops::{moving_average, pct_change, resample};
use onex::tseries::{Dataset, TimeSeries};
use onex::viz::{ConnectedScatter, QueryPreview};

#[test]
fn derive_align_tune_search() {
    // 1. Raw panel: median income levels (dollars).
    let levels = matters_collection(&MattersConfig {
        indicators: vec![Indicator::MedianIncome],
        years: 20,
        ..MattersConfig::default()
    });

    // 2. Derive: percent growth of income, smoothed, per state.
    let mut derived = Dataset::new();
    for (_, s) in levels.iter() {
        let growth = pct_change(s);
        let smooth = moving_average(&growth, 3);
        derived
            .push(TimeSeries::with_axis(
                s.name().replace("MedianIncome", "IncomeGrowth"),
                smooth.values().to_vec(),
                smooth.axis(),
            ))
            .unwrap();
    }
    assert_eq!(derived.len(), 50);
    assert_eq!(derived.by_name("MA-IncomeGrowth").unwrap().len(), 19);

    // 3. Tune: derived growth is in percent — the recommended threshold
    //    must be on that scale, orders of magnitude below dollars.
    let rec_levels = onex::engine::threshold::recommend(&levels, 8, 4000, 1).unwrap();
    let rec_growth = onex::engine::threshold::recommend(&derived, 8, 4000, 1).unwrap();
    assert!(
        rec_levels.suggested / rec_growth.suggested > 50.0,
        "levels {} vs growth {}",
        rec_levels.suggested,
        rec_growth.suggested
    );

    // 4. Search with the tuned threshold.
    let (engine, report) =
        Onex::build(derived, BaseConfig::new(rec_growth.suggested * 2.0, 6, 10)).unwrap();
    assert!(report.groups > 0);
    let ds = engine.dataset();
    let ma = ds.by_name("MA-IncomeGrowth").unwrap();
    let preview = QueryPreview::for_series(520, ma).brush(ma.len() - 8, 8);
    let query = preview.selection().to_vec();
    let opts = QueryOptions::default().excluding_series(engine.dataset().id_of("MA-IncomeGrowth"));
    let (matches, _) = engine.k_best(&query, 3, &opts).unwrap();
    assert_eq!(matches.len(), 3);
    for m in &matches {
        assert!(m.distance.is_finite());
        assert_ne!(m.series_name, "MA-IncomeGrowth");
    }

    // 5. Inspect the winner in a linked view.
    let best = &matches[0];
    let ds = engine.dataset();
    let matched = ds.resolve(best.subseq).unwrap();
    let scatter = ConnectedScatter::new(300, "MA vs peer", &query, matched).with_path(&best.path);
    assert!(scatter.render().contains("<polyline"));
    assert!(scatter.diagonal_deviation().is_finite());
}

#[test]
fn mixed_granularity_alignment() {
    // An annual indicator next to a quarterly one: resample to a common
    // grid, then they join one dataset and one base.
    let annual = matters_collection(&MattersConfig {
        indicators: vec![Indicator::GrowthRate],
        years: 12,
        ..MattersConfig::default()
    });
    let ma_annual = annual.by_name("MA-GrowthRate").unwrap();
    // Pretend a quarterly feed of the same span (4× samples).
    let quarterly = resample(ma_annual, ma_annual.len() * 4 - 3);
    assert!((quarterly.axis().step - 0.25).abs() < 0.02);
    let back = resample(&quarterly, ma_annual.len());
    for (a, b) in back.values().iter().zip(ma_annual.values()) {
        assert!(
            (a - b).abs() < 1e-9,
            "down-up-down round trip is lossless on the grid"
        );
    }

    let mut mixed = Dataset::new();
    mixed
        .push(TimeSeries::new("ma-annual", ma_annual.values().to_vec()))
        .unwrap();
    mixed
        .push(TimeSeries::new(
            "ma-quarterly-aligned",
            back.values().to_vec(),
        ))
        .unwrap();
    let (engine, _) = Onex::build(mixed, BaseConfig::new(0.5, 6, 8)).unwrap();
    let q = engine
        .dataset()
        .by_name("ma-annual")
        .unwrap()
        .subsequence(2, 8)
        .unwrap()
        .to_vec();
    let opts = QueryOptions::default().excluding_series(engine.dataset().id_of("ma-annual"));
    let (m, _) = engine.best_match(&q, &opts).unwrap();
    let m = m.unwrap();
    assert_eq!(m.series_name, "ma-quarterly-aligned");
    assert!(m.distance < 1e-6, "aligned feeds match near-exactly");
}
