//! The shared conformance suite for the [`SimilaritySearch`] trait: every
//! backend in the workspace — ONEX itself, the UCR Suite, the
//! FRM/ST-index, EBSM and SPRING — is run through the same contract:
//!
//! 1. **Self-match**: a query cut verbatim from a stored series comes
//!    back as the best match at distance ≈ 0 (each backend under its own
//!    metric — raw DTW, z-norm DTW, raw ED, subsequence DTW — all of
//!    which are zero on an identical window).
//! 2. **k ordering**: `k_best` returns at most `k` matches, sorted
//!    best-first, all referring to distinct windows.
//! 3. **Stats monotonicity**: [`onex::BackendStats::work`] never
//!    decreases as `k` grows — a backend cannot claim less effort for a
//!    larger answer.
//! 4. **Typed failures**: `k == 0`, empty and non-finite queries are
//!    `Err(OnexError::InvalidQuery)`, never panics.
//!
//! The scale-out engines — [`ShardedEngine`] fanning the query across
//! per-shard ONEX bases, [`CachedSearch`] decorating the single engine,
//! and the cross-process [`ClusterEngine`] fanning out over loopback
//! shard servers — run through the identical contract, plus a
//! cross-backend agreement check: the sharded and cluster top-k must
//! equal the single-engine top-k on the same dataset.

use std::net::TcpListener;
use std::sync::Arc;

use onex::engine::backends::{
    CachedSearch, EbsmBackend, FrmBackend, OnexBackend, ShardedEngine, SpringBackend,
    UcrSuiteBackend,
};
use onex::engine::Onex;
use onex::grouping::BaseConfig;
use onex::net::{AcceptOptions, ClusterEngine, RemoteConfig, ShardServer};
use onex::tseries::{Dataset, TimeSeries};
use onex::{OnexError, SimilaritySearch};

const QLEN: usize = 16;

/// Start one binary shard server over `ds` on an ephemeral loopback
/// port (detached for the process lifetime — one worker is enough, the
/// cluster keeps one connection per shard).
fn spawn_shard(ds: Dataset, config: BaseConfig) -> String {
    let (engine, _) = Onex::build(ds, config).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = ShardServer::new(Arc::new(engine));
    std::thread::spawn(move || {
        let _ = server.serve_with(
            listener,
            &AcceptOptions {
                workers: 1,
                queue: 4,
                ..AcceptOptions::default()
            },
        );
    });
    addr
}

/// Partition `ds` round-robin (global `g` → shard `g % n`, local
/// `g / n` — the identity [`ClusterEngine`] assumes), start one shard
/// server per part, and connect a cluster over the fleet.
fn spawn_cluster(ds: &Dataset, config: &BaseConfig, n: usize) -> ClusterEngine {
    let addrs: Vec<String> = (0..n)
        .map(|s| {
            let part: Vec<TimeSeries> = (0..ds.len())
                .filter(|g| g % n == s)
                .map(|g| ds.series(g as u32).unwrap().clone())
                .collect();
            spawn_shard(Dataset::from_series(part).unwrap(), config.clone())
        })
        .collect();
    ClusterEngine::connect(&addrs, RemoteConfig::default()).expect("loopback shards are reachable")
}

fn collection() -> Dataset {
    // Six diverse, non-constant series so every metric (including
    // z-normalised DTW) is well-conditioned.
    let series: Vec<TimeSeries> = (0..6)
        .map(|i| {
            let phase = i as f64 * 0.9;
            let values: Vec<f64> = (0..96)
                .map(|t| {
                    let x = t as f64;
                    (x * 0.21 + phase).sin() * 2.0
                        + (x * 0.043 + phase * 0.5).cos()
                        + (x * 1.31 + phase).sin() * 0.25
                })
                .collect();
            TimeSeries::new(format!("series-{i}"), values)
        })
        .collect();
    Dataset::from_series(series).unwrap()
}

/// Every backend under test, boxed behind the trait — the four baseline
/// engines, ONEX itself, and the three scale-out engines (in-process
/// shards, the caching decorator, and the cross-process cluster over
/// loopback shard servers) built over the same collection.
fn backends(ds: &Dataset) -> Vec<Box<dyn SimilaritySearch>> {
    let (engine, _) = Onex::build(ds.clone(), BaseConfig::new(0.8, QLEN, QLEN)).unwrap();
    let (cache_engine, _) = Onex::build(ds.clone(), BaseConfig::new(0.8, QLEN, QLEN)).unwrap();
    let (sharded, _) = ShardedEngine::build(ds, BaseConfig::new(0.8, QLEN, QLEN), 3).unwrap();
    vec![
        Box::new(OnexBackend::new(Arc::new(engine))),
        Box::new(UcrSuiteBackend::from_dataset(ds)),
        Box::new(FrmBackend::<4>::from_dataset(ds, 8)),
        Box::new(EbsmBackend::from_dataset(ds, onex::embedding::EbsmConfig::default()).unwrap()),
        Box::new(SpringBackend::from_dataset(ds)),
        Box::new(sharded),
        Box::new(CachedSearch::new(OnexBackend::new(Arc::new(cache_engine)), 64).unwrap()),
        Box::new(spawn_cluster(ds, &BaseConfig::new(0.8, QLEN, QLEN), 2)),
    ]
}

#[test]
fn self_match_at_distance_zero() {
    let ds = collection();
    let query = ds
        .series(3)
        .unwrap()
        .subsequence(40, QLEN)
        .unwrap()
        .to_vec();
    for b in backends(&ds) {
        let out = b.best_match(&query).unwrap();
        let best = out
            .best()
            .unwrap_or_else(|| panic!("{}: no match for a stored window", b.name()));
        assert!(
            best.distance < 1e-6,
            "{}: verbatim window at distance {}",
            b.name(),
            best.distance
        );
        // The match covers the queried site (multi-length backends may
        // trim or extend the window slightly).
        if !b.capabilities().multi_length {
            assert_eq!(best.len, QLEN, "{}", b.name());
        }
    }
}

#[test]
fn k_best_is_sorted_and_distinct() {
    let ds = collection();
    let query = ds
        .series(1)
        .unwrap()
        .subsequence(22, QLEN)
        .unwrap()
        .to_vec();
    for b in backends(&ds) {
        let k = 3;
        let out = b.k_best(&query, k).unwrap();
        assert!(
            !out.matches.is_empty() && out.matches.len() <= k,
            "{}: {} matches",
            b.name(),
            out.matches.len()
        );
        for w in out.matches.windows(2) {
            assert!(
                w[0].distance <= w[1].distance + 1e-12,
                "{}: unsorted answers",
                b.name()
            );
        }
        let distinct: std::collections::HashSet<(u32, usize, usize)> = out
            .matches
            .iter()
            .map(|m| (m.series, m.start, m.len))
            .collect();
        assert_eq!(
            distinct.len(),
            out.matches.len(),
            "{}: duplicate windows",
            b.name()
        );
        // one_match_per_series backends must honour their declaration.
        if b.capabilities().one_match_per_series {
            let per_series: std::collections::HashSet<u32> =
                out.matches.iter().map(|m| m.series).collect();
            assert_eq!(per_series.len(), out.matches.len(), "{}", b.name());
        }
    }
}

#[test]
fn stats_work_is_monotone_in_k() {
    let ds = collection();
    let query = ds
        .series(4)
        .unwrap()
        .subsequence(10, QLEN)
        .unwrap()
        .to_vec();
    for b in backends(&ds) {
        let w1 = b.k_best(&query, 1).unwrap().stats.work();
        let w3 = b.k_best(&query, 3).unwrap().stats.work();
        let w5 = b.k_best(&query, 5).unwrap().stats.work();
        assert!(w1 > 0, "{}: no work reported", b.name());
        assert!(
            w1 <= w3 && w3 <= w5,
            "{}: work not monotone in k ({w1}, {w3}, {w5})",
            b.name()
        );
    }
}

#[test]
fn malformed_queries_are_typed_errors() {
    let ds = collection();
    let query = ds.series(0).unwrap().subsequence(0, QLEN).unwrap().to_vec();
    for b in backends(&ds) {
        assert!(
            matches!(b.k_best(&[], 1), Err(OnexError::InvalidQuery(_))),
            "{}: empty query must be InvalidQuery",
            b.name()
        );
        assert!(
            matches!(b.k_best(&query, 0), Err(OnexError::InvalidQuery(_))),
            "{}: k = 0 must be InvalidQuery",
            b.name()
        );
        let mut bad = query.clone();
        bad[3] = f64::INFINITY;
        assert!(
            matches!(b.k_best(&bad, 1), Err(OnexError::InvalidQuery(_))),
            "{}: non-finite query must be InvalidQuery",
            b.name()
        );
    }
}

#[test]
fn capabilities_match_reported_behaviour() {
    let ds = collection();
    let query = ds
        .series(2)
        .unwrap()
        .subsequence(30, QLEN)
        .unwrap()
        .to_vec();
    for b in backends(&ds) {
        let caps = b.capabilities();
        let out = b.k_best(&query, 4).unwrap();
        if !caps.multi_length {
            assert!(
                out.matches.iter().all(|m| m.len == QLEN),
                "{}: fixed-length backend returned a different length",
                b.name()
            );
        }
        // Names are stable identifiers the server routes on.
        assert!(
            ["onex", "ucrsuite", "frm", "ebsm", "spring", "sharded", "cached", "cluster"]
                .contains(&b.name()),
            "{}: unexpected name",
            b.name()
        );
        // Only the caching decorator declares itself cached.
        assert_eq!(caps.cached, b.name() == "cached", "{}", b.name());
    }
}

// ---------------------------------------------------------------------
// Cross-backend agreement: scale-out must not change answers.
// ---------------------------------------------------------------------

/// Exact configuration (Seed policy) so both the single engine and every
/// shard provably return the best indexed subsequences — under it the
/// shard-merged top-k must equal the single-engine top-k bit for bit.
fn exact_config() -> BaseConfig {
    BaseConfig {
        policy: onex::grouping::RepresentativePolicy::Seed,
        ..BaseConfig::new(0.8, QLEN, QLEN)
    }
}

#[test]
fn sharded_top_k_equals_single_engine_top_k() {
    let ds = collection();
    let (engine, _) = Onex::build(ds.clone(), exact_config()).unwrap();
    let single = OnexBackend::new(Arc::new(engine));
    for shards in [2, 3, 5] {
        let (sharded, _) = ShardedEngine::build(&ds, exact_config(), shards).unwrap();
        for (sid, start) in [(0u32, 12usize), (2, 44), (5, 70)] {
            // Small perturbation keeps distances distinct (no ordering
            // ambiguity from exact ties between different windows).
            let mut query = ds
                .series(sid)
                .unwrap()
                .subsequence(start, QLEN)
                .unwrap()
                .to_vec();
            for (i, v) in query.iter_mut().enumerate() {
                *v += 0.003 * ((i as f64) * 2.1).sin();
            }
            let a = single.k_best(&query, 6).unwrap();
            let b = sharded.k_best(&query, 6).unwrap();
            assert_eq!(a.matches.len(), b.matches.len(), "{shards} shards");
            for (x, y) in a.matches.iter().zip(&b.matches) {
                assert_eq!(
                    (x.series, x.start, x.len),
                    (y.series, y.start, y.len),
                    "{shards} shards, query ({sid}, {start})"
                );
                assert!(
                    (x.distance - y.distance).abs() < 1e-12,
                    "{shards} shards: {} vs {}",
                    x.distance,
                    y.distance
                );
            }
        }
    }
}

/// Property: on random collections, random queries and every shard
/// count, the shared-bound sharded top-k — in-process *and* across
/// processes, via a [`ClusterEngine`] over loopback shard servers —
/// equals the single-engine top-k (Seed policy, perturbed queries so
/// distances are distinct and the ordering unambiguous). This is the
/// load-bearing exactness claim of the query-global bound: a bound
/// published by one shard prunes the others *without ever pruning a
/// true answer*, whether it travels through an atomic or over a socket.
mod shared_bound_properties {
    use super::*;
    use onex::tseries::gen::{random_walk_dataset, SyntheticConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn shared_bound_sharded_top_k_is_exact(
            seed in 0u64..10_000,
            sid in 0u32..8,
            start in 0usize..(96 - QLEN),
            k in 1usize..7,
        ) {
            let ds = random_walk_dataset(SyntheticConfig {
                series: 8,
                len: 96,
                seed,
            });
            let (engine, _) = Onex::build(ds.clone(), exact_config()).unwrap();
            let single = OnexBackend::new(Arc::new(engine));
            let mut query = ds
                .series(sid)
                .unwrap()
                .subsequence(start, QLEN)
                .unwrap()
                .to_vec();
            for (i, v) in query.iter_mut().enumerate() {
                *v += 0.01 * ((i as f64) * 1.9 + seed as f64).sin();
            }
            let reference = single.k_best(&query, k).unwrap();
            for shards in [2usize, 3, 5] {
                let (sharded, _) = ShardedEngine::build(&ds, exact_config(), shards).unwrap();
                let merged = sharded.k_best(&query, k).unwrap();
                prop_assert_eq!(merged.matches.len(), reference.matches.len());
                for (x, y) in merged.matches.iter().zip(&reference.matches) {
                    prop_assert_eq!(
                        (x.series, x.start, x.len),
                        (y.series, y.start, y.len)
                    );
                    prop_assert!((x.distance - y.distance).abs() < 1e-12);
                }
                // The same partition behind real sockets, with the bound
                // travelling by gossip instead of a shared atomic.
                let cluster = spawn_cluster(&ds, &exact_config(), shards);
                let remote = cluster.k_best(&query, k).unwrap();
                prop_assert_eq!(remote.matches.len(), reference.matches.len());
                for (x, y) in remote.matches.iter().zip(&reference.matches) {
                    prop_assert_eq!(
                        (x.series, x.start, x.len),
                        (y.series, y.start, y.len)
                    );
                    prop_assert!((x.distance - y.distance).abs() < 1e-12);
                }
            }
        }
    }
}

/// Concurrent queries on one `ShardedEngine` must never observe each
/// other's bounds: every query gets a fresh `∞`-seeded `SharedBound`, so
/// a near-zero bound established by a self-match query cannot prune away
/// the (much more distant) true answers of a far query running at the
/// same time. A leak would surface here as missing or wrong matches on
/// the far queries. The engine's worker pool must also stay fixed-size
/// throughout the hammer — no per-query thread spawns.
#[test]
fn concurrent_sharded_queries_never_cross_contaminate_bounds() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 6;

    let ds = collection();
    let (engine, _) = Onex::build(ds.clone(), exact_config()).unwrap();
    let single = OnexBackend::new(Arc::new(engine));
    let (sharded, _) = ShardedEngine::build(&ds, exact_config(), 3).unwrap();

    // Interleave "near" queries (perturbed stored windows — the k-th
    // best bound collapses towards 0 almost immediately) with "far"
    // queries (offset far outside the data — the bound stays large). If
    // any bound state leaked between concurrent queries, the near
    // queries' tight bounds would prune the far queries' entire
    // candidate space.
    let mut queries: Vec<Vec<f64>> = Vec::new();
    for (i, &(sid, start)) in [(0u32, 5usize), (2, 30), (4, 55), (1, 12), (3, 70), (5, 40)]
        .iter()
        .enumerate()
    {
        let mut q = ds
            .series(sid)
            .unwrap()
            .subsequence(start, QLEN)
            .unwrap()
            .to_vec();
        let far = i % 2 == 1;
        for (j, v) in q.iter_mut().enumerate() {
            *v += 0.01 * ((j as f64) * 2.3 + i as f64).sin();
            if far {
                *v += 6.0 + (j as f64) * 0.1;
            }
        }
        queries.push(q);
    }
    let reference: Vec<_> = queries
        .iter()
        .map(|q| single.k_best(q, 4).unwrap())
        .collect();

    let spawned_before = sharded.pool_stats().threads_spawned;
    crossbeam::thread::scope(|scope| {
        for t in 0..THREADS {
            let sharded = &sharded;
            let queries = &queries;
            let reference = &reference;
            scope.spawn(move |_| {
                for round in 0..ROUNDS {
                    let qi = (t + round) % queries.len();
                    let out = sharded.k_best(&queries[qi], 4).unwrap();
                    assert_eq!(
                        out.matches.len(),
                        reference[qi].matches.len(),
                        "thread {t} round {round}: a leaked bound pruned true answers"
                    );
                    for (x, y) in out.matches.iter().zip(&reference[qi].matches) {
                        assert_eq!(
                            (x.series, x.start, x.len),
                            (y.series, y.start, y.len),
                            "thread {t} round {round} diverged from the single engine"
                        );
                        assert!((x.distance - y.distance).abs() < 1e-12);
                    }
                }
            });
        }
    })
    .expect("no hammer thread panicked");
    let pool = sharded.pool_stats();
    assert_eq!(
        pool.threads_spawned, spawned_before,
        "the hammer must not have spawned query threads"
    );
    assert_eq!(pool.threads_spawned, 3, "one persistent worker per shard");
}

/// The cross-process version of the bound-isolation hammer: concurrent
/// near and far queries through one [`ClusterEngine`] must each get a
/// fresh query-global bound — gossiped tightenings from a self-match
/// query racing on another thread must never prune a far query's true
/// answers. The per-remote worker pool must also stay fixed throughout.
#[test]
fn concurrent_cluster_queries_never_cross_contaminate_bounds() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 6;

    let ds = collection();
    let (engine, _) = Onex::build(ds.clone(), exact_config()).unwrap();
    let single = OnexBackend::new(Arc::new(engine));
    let cluster = spawn_cluster(&ds, &exact_config(), 3);

    let mut queries: Vec<Vec<f64>> = Vec::new();
    for (i, &(sid, start)) in [(0u32, 5usize), (2, 30), (4, 55), (1, 12), (3, 70), (5, 40)]
        .iter()
        .enumerate()
    {
        let mut q = ds
            .series(sid)
            .unwrap()
            .subsequence(start, QLEN)
            .unwrap()
            .to_vec();
        let far = i % 2 == 1;
        for (j, v) in q.iter_mut().enumerate() {
            *v += 0.01 * ((j as f64) * 2.3 + i as f64).sin();
            if far {
                *v += 6.0 + (j as f64) * 0.1;
            }
        }
        queries.push(q);
    }
    let reference: Vec<_> = queries
        .iter()
        .map(|q| single.k_best(q, 4).unwrap())
        .collect();

    let spawned_before = cluster.pool_stats().threads_spawned;
    crossbeam::thread::scope(|scope| {
        for t in 0..THREADS {
            let cluster = &cluster;
            let queries = &queries;
            let reference = &reference;
            scope.spawn(move |_| {
                for round in 0..ROUNDS {
                    let qi = (t + round) % queries.len();
                    let out = cluster.k_best(&queries[qi], 4).unwrap();
                    assert_eq!(
                        out.matches.len(),
                        reference[qi].matches.len(),
                        "thread {t} round {round}: a gossiped bound pruned true answers"
                    );
                    for (x, y) in out.matches.iter().zip(&reference[qi].matches) {
                        assert_eq!(
                            (x.series, x.start, x.len),
                            (y.series, y.start, y.len),
                            "thread {t} round {round} diverged from the single engine"
                        );
                        assert!((x.distance - y.distance).abs() < 1e-12);
                    }
                }
            });
        }
    })
    .expect("no hammer thread panicked");
    let pool = cluster.pool_stats();
    assert_eq!(
        pool.threads_spawned, spawned_before,
        "the hammer must not have spawned query threads"
    );
    assert_eq!(pool.threads_spawned, 3, "one persistent worker per remote");
    assert!(
        pool.jobs_executed >= THREADS * ROUNDS * 3,
        "every query fans out to every shard"
    );
}

#[test]
fn cached_replays_are_bit_identical_to_the_first_answer() {
    let ds = collection();
    let (engine, _) = Onex::build(ds.clone(), exact_config()).unwrap();
    let cached = CachedSearch::new(OnexBackend::new(Arc::new(engine)), 16).unwrap();
    let query = ds
        .series(4)
        .unwrap()
        .subsequence(33, QLEN)
        .unwrap()
        .to_vec();
    let first = cached.k_best(&query, 4).unwrap();
    for _ in 0..3 {
        assert_eq!(cached.k_best(&query, 4).unwrap(), first);
    }
    let stats = cached.cache_stats();
    assert_eq!((stats.hits, stats.misses), (3, 1));
}
