//! Property tests for the FRM baseline: the R-tree must answer exactly
//! like a linear scan, the DFT filter must never dismiss a true match,
//! and the whole index must agree with brute force.

use onex_frm::dft::{dft_features, feature_dist_sq};
use onex_frm::{RTree, Rect, StConfig, StIndex};
use proptest::prelude::*;

fn rects(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<([f64; 2], [f64; 2])>> {
    prop::collection::vec(
        (-50.0f64..50.0, -50.0f64..50.0, 0.0f64..10.0, 0.0f64..10.0)
            .prop_map(|(x, y, w, h)| ([x, y], [x + w, y + h])),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random bulk inserts keep every Guttman invariant.
    #[test]
    fn rtree_invariants_hold(rs in rects(0..120)) {
        let mut t = RTree::<2>::new();
        for (i, (min, max)) in rs.iter().enumerate() {
            t.insert(Rect { min: *min, max: *max }, i as u64);
        }
        prop_assert_eq!(t.len(), rs.len());
        prop_assert!(t.check_invariants().is_ok(),
            "{:?}", t.check_invariants());
    }

    /// Intersection search equals a linear scan, for arbitrary data and
    /// query rectangles.
    #[test]
    fn rtree_search_equals_scan(
        rs in rects(0..100),
        q in rects(1..2),
    ) {
        let mut t = RTree::<2>::new();
        for (i, (min, max)) in rs.iter().enumerate() {
            t.insert(Rect { min: *min, max: *max }, i as u64);
        }
        let query = Rect { min: q[0].0, max: q[0].1 };
        let mut got = t.search_intersecting(&query);
        got.sort_unstable();
        let mut want: Vec<u64> = rs
            .iter()
            .enumerate()
            .filter(|(_, (min, max))| Rect { min: *min, max: *max }.intersects(&query))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Ball search (MINDIST) equals a linear scan.
    #[test]
    fn rtree_ball_search_equals_scan(
        rs in rects(0..100),
        px in -60.0f64..60.0,
        py in -60.0f64..60.0,
        radius in 0.0f64..30.0,
    ) {
        let mut t = RTree::<2>::new();
        for (i, (min, max)) in rs.iter().enumerate() {
            t.insert(Rect { min: *min, max: *max }, i as u64);
        }
        let mut got = t.search_within(&[px, py], radius);
        got.sort_unstable();
        let mut want: Vec<u64> = rs
            .iter()
            .enumerate()
            .filter(|(_, (min, max))| {
                Rect { min: *min, max: *max }.mindist_sq(&[px, py]) <= radius * radius
            })
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The DFT feature distance never exceeds the true window distance
    /// (the contraction that makes FRM exact).
    #[test]
    fn dft_features_are_contractive(
        a in prop::collection::vec(-10.0f64..10.0, 8..32),
        b_delta in prop::collection::vec(-10.0f64..10.0, 8..32),
        fc in 1usize..4,
    ) {
        let n = a.len().min(b_delta.len());
        if 2 * fc > n {
            return Ok(());
        }
        let a = &a[..n];
        let b: Vec<f64> = a.iter().zip(&b_delta[..n]).map(|(x, d)| x + d).collect();
        let fd = feature_dist_sq(&dft_features(a, fc), &dft_features(&b, fc));
        let td: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        prop_assert!(fd <= td + 1e-6 + td * 1e-9, "feature {fd} > true {td}");
    }

    /// End-to-end: the ST-index range query returns exactly the brute-
    /// force answer set (no false dismissals, all faithful distances).
    #[test]
    fn stindex_range_query_is_exact(
        seed_vals in prop::collection::vec(-3.0f64..3.0, 30..60),
        eps in 0.2f64..3.0,
        qoff in 0usize..20,
    ) {
        let series = vec![seed_vals.clone()];
        let w = 8;
        let idx = StIndex::<4>::build(series.clone(), StConfig {
            window: w,
            subtrail_max: 6,
            cost_scale: 0.5,
        });
        let qstart = qoff.min(seed_vals.len() - w);
        let query = seed_vals[qstart..qstart + w].to_vec();
        let (hits, stats) = idx.range_query(&query, eps);
        // Brute force over raw data.
        let mut want = Vec::new();
        for start in 0..=seed_vals.len() - w {
            let d: f64 = seed_vals[start..start + w]
                .iter()
                .zip(&query)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            if d <= eps {
                want.push((start, d));
            }
        }
        prop_assert_eq!(hits.len(), want.len(),
            "eps={} hits={:?} want={:?}", eps, hits, want);
        for (start, d) in want {
            let h = hits.iter().find(|h| h.start == start);
            prop_assert!(h.is_some(), "missing start {}", start);
            prop_assert!((h.unwrap().dist - d).abs() < 1e-9);
        }
        prop_assert!(stats.candidates >= stats.verified);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `best_match` via the incremental-NN traversal equals brute force,
    /// for queries of the window length and longer.
    #[test]
    fn stindex_best_match_is_exact(
        vals in prop::collection::vec(-3.0f64..3.0, 30..60),
        qoff in 0usize..40,
        qlen_extra in 0usize..6,
    ) {
        let w = 8;
        let series = vec![vals.clone()];
        let idx = StIndex::<4>::build(series, StConfig {
            window: w,
            subtrail_max: 6,
            cost_scale: 0.5,
        });
        let qlen = w + qlen_extra;
        let qstart = qoff.min(vals.len() - qlen);
        let query = vals[qstart..qstart + qlen].to_vec();
        let (best, _) = idx.best_match(&query).unwrap();
        let mut want = f64::INFINITY;
        for start in 0..=vals.len() - qlen {
            let d: f64 = vals[start..start + qlen]
                .iter()
                .zip(&query)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            want = want.min(d);
        }
        prop_assert!((best.dist - want).abs() < 1e-9,
            "nn {} brute {}", best.dist, want);
    }

    /// Bulk-loaded and incrementally built indexes answer identically.
    #[test]
    fn bulk_and_incremental_builds_agree(
        s0 in prop::collection::vec(-3.0f64..3.0, 20..50),
        s1 in prop::collection::vec(-3.0f64..3.0, 20..50),
        eps in 0.3f64..3.0,
    ) {
        let cfg = StConfig { window: 8, subtrail_max: 6, cost_scale: 0.5 };
        let batch = StIndex::<4>::build(vec![s0.clone(), s1.clone()], cfg);
        let mut inc = StIndex::<4>::build(Vec::new(), cfg);
        inc.push_series(s0.clone());
        inc.push_series(s1);
        let query = s0[..8].to_vec();
        let (mut h1, _) = batch.range_query(&query, eps);
        let (mut h2, _) = inc.range_query(&query, eps);
        let key = |h: &onex_frm::FrmHit| (h.series, h.start);
        h1.sort_by_key(key);
        h2.sort_by_key(key);
        prop_assert_eq!(h1, h2);
    }
}
