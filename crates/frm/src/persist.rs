//! Versioned, checksummed binary persistence for the ST-index.
//!
//! FRM treats its index as a *derived* structure over the raw series, so
//! the codec stores the raw data, the build configuration and the
//! sub-trail division — everything deterministic — and rebuilds the
//! R-tree with an STR bulk load at open time. That keeps the format
//! independent of in-memory tree layout (the same policy the grouping
//! crate's codec follows) while still skipping the expensive part of a
//! rebuild: the trail division never has to be re-derived.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use crate::dft::dft_features;
use crate::rtree::{RTree, Rect};
use crate::stindex::{StConfig, StIndex};

const MAGIC: &[u8; 8] = b"ONEXFRM\0";
const VERSION: u8 = 1;

/// Errors from saving or loading an ST-index.
#[derive(Debug)]
pub enum PersistError {
    /// The file does not start with the ST-index magic bytes.
    BadMagic,
    /// The file was written by an unknown format version.
    UnsupportedVersion(u8),
    /// The payload checksum does not match its contents.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// The payload ended early or carries impossible values.
    Corrupt(String),
    /// The stored feature dimension does not match the requested type.
    DimensionMismatch {
        /// Dimension recorded in the file.
        stored: u32,
        /// Dimension of the `StIndex<D>` being loaded.
        requested: u32,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not an ONEX FRM index file"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            PersistError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: file says {expected:#x}, content hashes to {actual:#x}"
            ),
            PersistError::Corrupt(why) => write!(f, "corrupt index payload: {why}"),
            PersistError::DimensionMismatch { stored, requested } => write!(
                f,
                "index stores {stored}-dimensional features but StIndex<{requested}> was requested"
            ),
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.buf.len() < n {
            return Err(PersistError::Corrupt(format!(
                "needed {n} more bytes, {} left",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn done(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Serialise the index: magic, version, checksum, then the payload
/// (config, raw series, sub-trail ranges).
pub fn save<const D: usize, W: Write>(idx: &StIndex<D>, mut w: W) -> Result<(), PersistError> {
    let mut e = Enc::new();
    let cfg = idx.config();
    e.u32(D as u32);
    e.u32(cfg.window as u32);
    e.u32(cfg.subtrail_max as u32);
    e.f64(cfg.cost_scale);
    e.u32(idx.series_count() as u32);
    for sid in 0..idx.series_count() {
        let s = idx.series(sid as u32).expect("sid in range");
        e.u32(s.len() as u32);
        for &v in s {
            e.f64(v);
        }
    }
    let trails = idx.subtrail_ranges();
    e.u32(trails.len() as u32);
    for (series, first, last) in trails {
        e.u32(series);
        e.u32(first);
        e.u32(last);
    }

    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&fnv1a(&e.buf).to_le_bytes())?;
    w.write_all(&e.buf)?;
    Ok(())
}

/// Load an index saved by [`save`], verifying magic, version and
/// checksum, then rebuilding the R-tree by STR bulk load over the stored
/// sub-trails' recomputed MBRs.
pub fn load<const D: usize, R: Read>(mut r: R) -> Result<StIndex<D>, PersistError> {
    let mut header = [0u8; 8 + 1 + 8];
    r.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    if header[8] != VERSION {
        return Err(PersistError::UnsupportedVersion(header[8]));
    }
    let expected = u64::from_le_bytes(header[9..17].try_into().expect("8 bytes"));
    let mut payload = Vec::new();
    r.read_to_end(&mut payload)?;
    let actual = fnv1a(&payload);
    if actual != expected {
        return Err(PersistError::ChecksumMismatch { expected, actual });
    }

    let mut d = Dec { buf: &payload };
    let stored_dim = d.u32()?;
    if stored_dim != D as u32 {
        return Err(PersistError::DimensionMismatch {
            stored: stored_dim,
            requested: D as u32,
        });
    }
    let cfg = StConfig {
        window: d.u32()? as usize,
        subtrail_max: d.u32()? as usize,
        cost_scale: d.f64()?,
    };
    if cfg.window == 0 || cfg.subtrail_max == 0 || !cfg.cost_scale.is_finite() {
        return Err(PersistError::Corrupt("impossible configuration".into()));
    }
    let series_count = d.u32()? as usize;
    let mut series = Vec::with_capacity(series_count);
    for _ in 0..series_count {
        let len = d.u32()? as usize;
        let mut s = Vec::with_capacity(len);
        for _ in 0..len {
            s.push(d.f64()?);
        }
        series.push(s);
    }
    let trail_count = d.u32()? as usize;
    let mut trails = Vec::with_capacity(trail_count);
    for _ in 0..trail_count {
        let (sid, first, last) = (d.u32()?, d.u32()?, d.u32()?);
        let s = series
            .get(sid as usize)
            .ok_or_else(|| PersistError::Corrupt(format!("sub-trail references series {sid}")))?;
        if first > last || (last as usize) + cfg.window > s.len() + 1 {
            return Err(PersistError::Corrupt(format!(
                "sub-trail range {first}..={last} outside series {sid}"
            )));
        }
        trails.push((sid, first, last));
    }
    if !d.done() {
        return Err(PersistError::Corrupt("trailing bytes".into()));
    }

    // Recompute each sub-trail's MBR from the raw data (deterministic),
    // then bulk-load.
    let fc = D / 2;
    let mut entries: Vec<(Rect<D>, u64)> = Vec::with_capacity(trails.len());
    for (id, &(sid, first, last)) in trails.iter().enumerate() {
        let s = &series[sid as usize];
        let mut mbr: Option<Rect<D>> = None;
        for wpos in first..=last {
            let f = dft_features(&s[wpos as usize..wpos as usize + cfg.window], fc);
            let mut p = [0.0; D];
            p.copy_from_slice(&f);
            let pr = Rect::point(p);
            mbr = Some(match mbr {
                None => pr,
                Some(m) => m.union(&pr),
            });
        }
        entries.push((mbr.expect("ranges are non-empty"), id as u64));
    }
    let rtree = RTree::bulk_load(entries);
    Ok(StIndex::from_parts(cfg, series, trails, rtree))
}

/// [`save`] to a file path.
pub fn save_file<const D: usize>(
    idx: &StIndex<D>,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    let f = std::fs::File::create(path)?;
    save(idx, std::io::BufWriter::new(f))
}

/// [`load`] from a file path.
pub fn load_file<const D: usize>(path: impl AsRef<Path>) -> Result<StIndex<D>, PersistError> {
    let f = std::fs::File::open(path)?;
    load(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StIndex<4> {
        let series: Vec<Vec<f64>> = (0..4)
            .map(|p| {
                (0..60)
                    .map(|i| ((i + 9 * p) as f64 * 0.27).sin() * 2.0)
                    .collect()
            })
            .collect();
        StIndex::build(
            series,
            StConfig {
                window: 8,
                subtrail_max: 6,
                cost_scale: 0.5,
            },
        )
    }

    fn to_bytes(idx: &StIndex<4>) -> Vec<u8> {
        let mut out = Vec::new();
        save(idx, &mut out).unwrap();
        out
    }

    #[test]
    fn round_trip_answers_identically() {
        let idx = sample();
        let back: StIndex<4> = load(to_bytes(&idx).as_slice()).unwrap();
        assert_eq!(back.series_count(), idx.series_count());
        assert_eq!(back.windows_total(), idx.windows_total());
        assert_eq!(back.subtrail_count(), idx.subtrail_count());
        let query: Vec<f64> = (0..8).map(|i| (i as f64 * 0.27).sin() * 2.0).collect();
        for eps in [0.5, 1.5] {
            let (mut h1, _) = idx.range_query(&query, eps);
            let (mut h2, _) = back.range_query(&query, eps);
            let key = |h: &crate::FrmHit| (h.series, h.start);
            h1.sort_by_key(key);
            h2.sort_by_key(key);
            assert_eq!(h1, h2, "eps {eps}");
        }
        let (b1, _) = idx.best_match(&query).unwrap();
        let (b2, _) = back.best_match(&query).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        assert!(matches!(
            load::<4, _>(bytes.as_slice()),
            Err(PersistError::BadMagic)
        ));
        let mut bytes = to_bytes(&sample());
        bytes[8] = 99;
        assert!(matches!(
            load::<4, _>(bytes.as_slice()),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn detects_corruption_truncation_and_dimension_mismatch() {
        let bytes = to_bytes(&sample());
        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xFF;
        assert!(matches!(
            load::<4, _>(corrupted.as_slice()),
            Err(PersistError::ChecksumMismatch { .. })
        ));
        assert!(load::<4, _>(&bytes[..bytes.len() - 5]).is_err());
        assert!(load::<4, _>(&[][..]).is_err());
        assert!(matches!(
            load::<6, _>(bytes.as_slice()),
            Err(PersistError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("onex_frm_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.frm");
        let idx = sample();
        save_file(&idx, &path).unwrap();
        let back: StIndex<4> = load_file(&path).unwrap();
        assert_eq!(back.subtrail_count(), idx.subtrail_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        assert!(PersistError::BadMagic.to_string().contains("FRM"));
        let e = PersistError::DimensionMismatch {
            stored: 4,
            requested: 6,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('6'));
    }
}
