//! The ST-index: trails of window features, sub-trail MBRs, and
//! filter-and-refine subsequence search.

use onex_api::BestK;

use crate::dft::{dft_features, feature_dim, SlidingDft};
use crate::rtree::{RTree, Rect};
use std::collections::HashSet;

/// Build-time configuration of an [`StIndex`].
#[derive(Debug, Clone, Copy)]
pub struct StConfig {
    /// Sliding-window width `w`; the minimum supported query length.
    pub window: usize,
    /// Hard cap on sub-trail length (windows per MBR); the marginal-cost
    /// heuristic may cut earlier.
    pub subtrail_max: usize,
    /// Normalisation scale for the marginal-cost heuristic: MBR sides are
    /// divided by this before costing, so it should be on the order of a
    /// typical feature-space query radius. Only affects trail division
    /// quality, never correctness.
    pub cost_scale: f64,
}

impl Default for StConfig {
    fn default() -> Self {
        StConfig {
            window: 16,
            subtrail_max: 64,
            cost_scale: 1.0,
        }
    }
}

/// One sub-trail: a run of consecutive window positions of one series
/// summarised by a single MBR in the R-tree.
#[derive(Debug, Clone, Copy)]
struct SubTrail {
    series: u32,
    /// First window start position covered.
    first: u32,
    /// Last window start position covered (inclusive).
    last: u32,
}

/// A verified query answer: a window of a stored series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrmHit {
    /// Index of the series within the index.
    pub series: u32,
    /// Start offset of the matching subsequence.
    pub start: usize,
    /// True Euclidean distance to the query (root scale).
    pub dist: f64,
}

/// Filter-and-refine accounting for one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrmStats {
    /// Window positions stored in the index.
    pub windows_total: usize,
    /// Sub-trail MBRs touched by the R-tree search.
    pub subtrails_hit: usize,
    /// Candidate window positions after expanding sub-trails.
    pub candidates: usize,
    /// Candidates surviving raw-data verification.
    pub verified: usize,
}

impl FrmStats {
    /// Fraction of stored windows never verified — the filter's power.
    pub fn prune_rate(&self) -> f64 {
        if self.windows_total == 0 {
            return 0.0;
        }
        1.0 - self.candidates as f64 / self.windows_total as f64
    }
}

/// ST-index over a collection of series, parameterised by the feature
/// dimension `D = 2 × (retained DFT coefficients)`.
///
/// ```
/// use onex_frm::{StIndex, StConfig};
///
/// let series = vec![
///     (0..64).map(|i| (i as f64 * 0.3).sin()).collect::<Vec<_>>(),
///     (0..64).map(|i| (i as f64 * 0.3).cos()).collect::<Vec<_>>(),
/// ];
/// let idx = StIndex::<4>::build(series, StConfig { window: 8, ..Default::default() });
/// let query: Vec<f64> = (10..18).map(|i| (i as f64 * 0.3).sin()).collect();
/// let (hits, _stats) = idx.range_query(&query, 1e-6);
/// assert!(hits.iter().any(|h| h.series == 0 && h.start == 10));
/// ```
#[derive(Debug, Clone)]
pub struct StIndex<const D: usize> {
    cfg: StConfig,
    series: Vec<Vec<f64>>,
    subtrails: Vec<SubTrail>,
    rtree: RTree<D>,
    windows_total: usize,
}

impl<const D: usize> StIndex<D> {
    /// Retained complex DFT coefficients for this feature dimension.
    pub const FC: usize = D / 2;

    /// Build the index over `series` (series shorter than the window are
    /// stored but yield no windows).
    ///
    /// # Panics
    ///
    /// Panics if `D` is odd or zero, or `window < 2 × FC` (feature
    /// contraction would not hold), or `subtrail_max == 0`.
    pub fn build(series: Vec<Vec<f64>>, cfg: StConfig) -> Self {
        assert!(
            D >= 2 && D.is_multiple_of(2),
            "feature dimension must be even"
        );
        assert!(
            2 * Self::FC <= cfg.window,
            "window {} too short for {} coefficients",
            cfg.window,
            Self::FC
        );
        assert!(cfg.subtrail_max >= 1, "subtrail_max must be positive");
        assert_eq!(feature_dim(Self::FC), D);

        let mut idx = StIndex {
            cfg,
            series: Vec::new(),
            subtrails: Vec::new(),
            rtree: RTree::new(),
            windows_total: 0,
        };
        // Batch build: collect every sub-trail first, then STR bulk-load
        // the R-tree for near-full nodes and tight sibling locality.
        let mut pending: Vec<(Rect<D>, u64)> = Vec::new();
        for s in series {
            let sid = idx.series.len() as u32;
            idx.collect_subtrails(sid, &s, &mut pending);
            idx.series.push(s);
        }
        idx.rtree = RTree::bulk_load(pending);
        idx
    }

    /// Append one more series, indexing its windows (the incremental
    /// loading path of experiment E11). Uses one-at-a-time R-tree
    /// insertion; batch [`build`](StIndex::build) bulk-loads instead.
    pub fn push_series(&mut self, s: Vec<f64>) -> u32 {
        let sid = self.series.len() as u32;
        let mut pending = Vec::new();
        self.collect_subtrails(sid, &s, &mut pending);
        for (mbr, id) in pending {
            self.rtree.insert(mbr, id);
        }
        self.series.push(s);
        sid
    }

    /// Cut one series into sub-trails, registering them and appending
    /// their `(MBR, id)` pairs to `pending` for the caller to index.
    fn collect_subtrails(&mut self, sid: u32, s: &[f64], pending: &mut Vec<(Rect<D>, u64)>) {
        let w = self.cfg.window;
        if s.len() < w {
            return;
        }
        let mut sliding = SlidingDft::new(w, Self::FC);
        let mut cur: Option<(Rect<D>, u32, u32)> = None; // (mbr, first, last)
        let mut pos = 0u32;
        for &x in s {
            let Some(f) = sliding.push(x) else { continue };
            let p = to_point::<D>(&f);
            let pr = Rect::point(p);
            self.windows_total += 1;
            cur = Some(match cur {
                None => (pr, pos, pos),
                Some((mbr, first, last)) => {
                    let grown = mbr.union(&pr);
                    let count = (last - first + 1) as usize;
                    if count >= self.cfg.subtrail_max
                        || marginal_cost(&mbr, &grown, self.cfg.cost_scale) > 1.0
                    {
                        self.flush_subtrail(sid, mbr, first, last, pending);
                        (pr, pos, pos)
                    } else {
                        (grown, first, pos)
                    }
                }
            });
            pos += 1;
        }
        if let Some((mbr, first, last)) = cur {
            self.flush_subtrail(sid, mbr, first, last, pending);
        }
    }

    fn flush_subtrail(
        &mut self,
        series: u32,
        mbr: Rect<D>,
        first: u32,
        last: u32,
        pending: &mut Vec<(Rect<D>, u64)>,
    ) {
        let id = self.subtrails.len() as u64;
        self.subtrails.push(SubTrail {
            series,
            first,
            last,
        });
        pending.push((mbr, id));
    }

    /// Number of indexed series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Raw values of series `id`, if present.
    pub fn series(&self, id: u32) -> Option<&[f64]> {
        self.series.get(id as usize).map(|v| v.as_slice())
    }

    /// Total window positions indexed.
    pub fn windows_total(&self) -> usize {
        self.windows_total
    }

    /// Number of sub-trail MBRs (the R-tree's entry count).
    pub fn subtrail_count(&self) -> usize {
        self.subtrails.len()
    }

    /// The build-time configuration.
    pub fn config(&self) -> StConfig {
        self.cfg
    }

    /// The sub-trail division as `(series, first, last)` window ranges —
    /// the deterministic part the persistence codec stores.
    pub fn subtrail_ranges(&self) -> Vec<(u32, u32, u32)> {
        self.subtrails
            .iter()
            .map(|t| (t.series, t.first, t.last))
            .collect()
    }

    /// Reassemble an index from persisted parts (the crate-internal
    /// contract with [`crate::persist::load`], which recomputed the MBRs
    /// and bulk-loaded `rtree` over the same trail ids).
    pub(crate) fn from_parts(
        cfg: StConfig,
        series: Vec<Vec<f64>>,
        trails: Vec<(u32, u32, u32)>,
        rtree: RTree<D>,
    ) -> Self {
        // A series of length n contributes n − w + 1 windows (0 if shorter
        // than the window).
        let windows_total = series
            .iter()
            .map(|s| s.len().saturating_sub(cfg.window - 1))
            .sum();
        StIndex {
            cfg,
            series,
            subtrails: trails
                .into_iter()
                .map(|(series, first, last)| SubTrail {
                    series,
                    first,
                    last,
                })
                .collect(),
            rtree,
            windows_total,
        }
    }

    /// All subsequences of length `query.len()` within Euclidean distance
    /// `eps` of `query`, by filter-and-refine. Exact: the DFT contraction
    /// plus the multi-piece lemma guarantee no false dismissals.
    ///
    /// # Panics
    ///
    /// Panics if the query is shorter than the index window.
    pub fn range_query(&self, query: &[f64], eps: f64) -> (Vec<FrmHit>, FrmStats) {
        let w = self.cfg.window;
        assert!(
            query.len() >= w,
            "query length {} below index window {}",
            query.len(),
            w
        );
        let mut stats = FrmStats {
            windows_total: self.windows_total,
            ..FrmStats::default()
        };

        // Multi-piece lemma (PrefixSearch): cut the query into p disjoint
        // windows; if ED(Q,S) ≤ ε then some piece is within ε/√p of the
        // aligned window of S.
        let p = query.len() / w;
        let piece_radius = eps / (p as f64).sqrt();
        let mut candidates: HashSet<(u32, usize)> = HashSet::new();
        for piece in 0..p {
            let qs = &query[piece * w..(piece + 1) * w];
            let f = dft_features(qs, Self::FC);
            let point = to_point::<D>(&f);
            let ids = self.rtree.search_within(&point, piece_radius);
            stats.subtrails_hit += ids.len();
            for id in ids {
                let st = self.subtrails[id as usize];
                for wpos in st.first..=st.last {
                    // Window wpos matched piece `piece`; the candidate
                    // subsequence starts piece*w earlier.
                    let Some(start) = (wpos as usize).checked_sub(piece * w) else {
                        continue;
                    };
                    let series = &self.series[st.series as usize];
                    if start + query.len() <= series.len() {
                        candidates.insert((st.series, start));
                    }
                }
            }
        }
        stats.candidates = candidates.len();

        // Refine against raw data with early abandonment at ε.
        let eps_sq = eps * eps;
        let mut hits = Vec::new();
        for (sid, start) in candidates {
            let s = &self.series[sid as usize];
            let window = &s[start..start + query.len()];
            let d_sq = onex_distance::ed_early_abandon_sq(query, window, eps_sq);
            if d_sq <= eps_sq {
                hits.push(FrmHit {
                    series: sid,
                    start,
                    dist: d_sq.sqrt(),
                });
            }
        }
        stats.verified = hits.len();
        hits.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        (hits, stats)
    }

    /// The single nearest subsequence of length `query.len()` under raw
    /// Euclidean distance, or `None` if no series is long enough.
    ///
    /// Exact, via the incremental nearest-neighbour traversal
    /// (Hjaltason–Samet): sub-trails stream out of the R-tree in
    /// non-decreasing feature-space distance to the query's first
    /// window; since that distance lower-bounds the true ED of any
    /// candidate the sub-trail contains (DFT contraction + prefix
    /// lemma), the scan stops the moment the next MBR is farther than
    /// the best verified candidate.
    pub fn best_match(&self, query: &[f64]) -> Option<(FrmHit, FrmStats)> {
        let w = self.cfg.window;
        assert!(
            query.len() >= w,
            "query length {} below index window {}",
            query.len(),
            w
        );
        let mut stats = FrmStats {
            windows_total: self.windows_total,
            ..FrmStats::default()
        };
        let point = to_point::<D>(&dft_features(&query[..w], Self::FC));
        let mut best: Option<FrmHit> = None;
        for (mindist_sq, id) in self.rtree.nearest_iter(point) {
            if let Some(b) = &best {
                if mindist_sq > b.dist * b.dist {
                    break; // every remaining sub-trail is provably worse
                }
            }
            stats.subtrails_hit += 1;
            let st = self.subtrails[id as usize];
            let series = &self.series[st.series as usize];
            for wpos in st.first..=st.last {
                let start = wpos as usize;
                if start + query.len() > series.len() {
                    continue;
                }
                stats.candidates += 1;
                let bound_sq = best.as_ref().map_or(f64::INFINITY, |b| b.dist * b.dist);
                let d_sq = onex_distance::ed_early_abandon_sq(
                    query,
                    &series[start..start + query.len()],
                    bound_sq,
                );
                if d_sq < bound_sq {
                    best = Some(FrmHit {
                        series: st.series,
                        start,
                        dist: d_sq.sqrt(),
                    });
                }
            }
        }
        stats.verified = usize::from(best.is_some());
        best.map(|b| (b, stats))
    }

    /// The `k` nearest subsequences of length `query.len()` under raw
    /// Euclidean distance, best first (fewer when the collection holds
    /// fewer eligible windows). Exact by the same incremental
    /// nearest-neighbour argument as [`StIndex::best_match`], with the
    /// running k-th best as the stopping bound.
    ///
    /// # Panics
    ///
    /// Panics if the query is shorter than the index window or `k == 0`.
    pub fn k_best(&self, query: &[f64], k: usize) -> (Vec<FrmHit>, FrmStats) {
        let w = self.cfg.window;
        assert!(k > 0, "k must be positive");
        assert!(
            query.len() >= w,
            "query length {} below index window {}",
            query.len(),
            w
        );
        let mut stats = FrmStats {
            windows_total: self.windows_total,
            ..FrmStats::default()
        };
        let point = to_point::<D>(&dft_features(&query[..w], Self::FC));
        // Shared bounded best-k accumulator: its k-th best squared
        // distance is both the stopping and the verification bound.
        let mut acc: BestK<(u32, usize)> = BestK::new(k);
        for (mindist_sq, id) in self.rtree.nearest_iter(point) {
            if mindist_sq > acc.bound() {
                break; // every remaining sub-trail is provably worse
            }
            stats.subtrails_hit += 1;
            let st = self.subtrails[id as usize];
            let series = &self.series[st.series as usize];
            for wpos in st.first..=st.last {
                let start = wpos as usize;
                if start + query.len() > series.len() {
                    continue;
                }
                stats.candidates += 1;
                let d_sq = onex_distance::ed_early_abandon_sq(
                    query,
                    &series[start..start + query.len()],
                    acc.bound(),
                );
                acc.offer(d_sq, (st.series, start));
            }
        }
        let hits: Vec<FrmHit> = acc
            .into_sorted()
            .into_iter()
            .map(|(d_sq, (series, start))| FrmHit {
                series,
                start,
                dist: d_sq.sqrt(),
            })
            .collect();
        stats.verified = hits.len();
        (hits, stats)
    }
}

/// Marginal cost of growing `mbr` to `grown`, in Guttman/FRM units: the
/// increase in expected R-tree accesses for a point query, modelled as
/// the volume of the side-extended rectangle ∏(Lᵢ/scale + 1).
fn marginal_cost<const D: usize>(mbr: &Rect<D>, grown: &Rect<D>, scale: f64) -> f64 {
    let cost = |r: &Rect<D>| -> f64 {
        (0..D)
            .map(|d| (r.max[d] - r.min[d]) / scale + 1.0)
            .product()
    };
    cost(grown) - cost(mbr)
}

fn to_point<const D: usize>(f: &[f64]) -> [f64; D] {
    let mut p = [0.0; D];
    p.copy_from_slice(f);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.31 + phase).sin() * 2.0 + (i as f64 * 0.07).cos())
            .collect()
    }

    fn brute_range(series: &[Vec<f64>], query: &[f64], eps: f64) -> Vec<(u32, usize, f64)> {
        let mut out = Vec::new();
        for (sid, s) in series.iter().enumerate() {
            if s.len() < query.len() {
                continue;
            }
            for start in 0..=s.len() - query.len() {
                let d = onex_distance::ed(query, &s[start..start + query.len()]);
                if d <= eps {
                    out.push((sid as u32, start, d));
                }
            }
        }
        out
    }

    #[test]
    fn finds_exact_occurrence() {
        let series = vec![wavy(80, 0.0), wavy(80, 1.0)];
        let idx = StIndex::<4>::build(
            series.clone(),
            StConfig {
                window: 8,
                ..StConfig::default()
            },
        );
        let query = series[1][20..28].to_vec();
        let (hits, stats) = idx.range_query(&query, 1e-9);
        assert!(hits.iter().any(|h| h.series == 1 && h.start == 20));
        assert!(stats.candidates >= hits.len());
    }

    #[test]
    fn range_query_equals_brute_force() {
        let series = vec![wavy(60, 0.0), wavy(45, 2.0), wavy(70, 4.0)];
        let idx = StIndex::<4>::build(
            series.clone(),
            StConfig {
                window: 8,
                subtrail_max: 8,
                cost_scale: 1.0,
            },
        );
        let query = wavy(8, 0.3);
        for eps in [0.5, 1.0, 2.0, 4.0] {
            let (hits, _) = idx.range_query(&query, eps);
            let want = brute_range(&series, &query, eps);
            assert_eq!(hits.len(), want.len(), "eps={eps}");
            for (sid, start, d) in want {
                let got = hits
                    .iter()
                    .find(|h| h.series == sid && h.start == start)
                    .unwrap_or_else(|| panic!("missing ({sid},{start}) at eps={eps}"));
                assert!((got.dist - d).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn long_queries_use_multipiece_lemma() {
        let series = vec![wavy(120, 0.0)];
        let idx = StIndex::<4>::build(
            series.clone(),
            StConfig {
                window: 8,
                ..StConfig::default()
            },
        );
        // Query of 3.5 windows (28 points): p = 3 pieces.
        let query = series[0][40..68].to_vec();
        let (hits, _) = idx.range_query(&query, 1e-9);
        assert!(hits.iter().any(|h| h.start == 40), "hits: {hits:?}");

        // And with noise, against brute force.
        let mut q2 = query.clone();
        for (i, v) in q2.iter_mut().enumerate() {
            *v += ((i * 7 % 5) as f64 - 2.0) * 0.05;
        }
        let eps = 1.5;
        let (hits, _) = idx.range_query(&q2, eps);
        let want = brute_range(&series, &q2, eps);
        assert_eq!(hits.len(), want.len());
    }

    #[test]
    fn best_match_is_exact() {
        let series = vec![wavy(90, 0.0), wavy(90, 0.9)];
        let idx = StIndex::<6>::build(
            series.clone(),
            StConfig {
                window: 10,
                ..StConfig::default()
            },
        );
        let query = wavy(10, 0.85);
        let (best, _) = idx.best_match(&query).unwrap();
        let mut want = (0u32, 0usize, f64::INFINITY);
        for (sid, s) in series.iter().enumerate() {
            for start in 0..=s.len() - query.len() {
                let d = onex_distance::ed(&query, &s[start..start + query.len()]);
                if d < want.2 {
                    want = (sid as u32, start, d);
                }
            }
        }
        assert_eq!((best.series, best.start), (want.0, want.1));
        assert!((best.dist - want.2).abs() < 1e-9);
    }

    #[test]
    fn k_best_matches_exhaustive_ranking() {
        let series = vec![wavy(70, 0.0), wavy(70, 1.1), wavy(55, 2.2)];
        let idx = StIndex::<4>::build(
            series.clone(),
            StConfig {
                window: 8,
                subtrail_max: 8,
                cost_scale: 1.0,
            },
        );
        let query = wavy(8, 0.4);
        let k = 6;
        let (hits, stats) = idx.k_best(&query, k);
        assert_eq!(hits.len(), k);
        assert_eq!(stats.verified, k);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist + 1e-12);
        }
        // Brute-force reference.
        let mut all: Vec<(f64, u32, usize)> = Vec::new();
        for (sid, s) in series.iter().enumerate() {
            for start in 0..=s.len() - query.len() {
                let d = onex_distance::ed(&query, &s[start..start + query.len()]);
                all.push((d, sid as u32, start));
            }
        }
        all.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (hit, want) in hits.iter().zip(&all) {
            assert!((hit.dist - want.0).abs() < 1e-9);
        }
        // k = 1 agrees with best_match; larger k never does less work.
        let (best, s1) = idx.best_match(&query).unwrap();
        assert!((hits[0].dist - best.dist).abs() < 1e-9);
        let (_, sk) = idx.k_best(&query, k);
        assert!(sk.candidates >= s1.candidates);
    }

    #[test]
    fn filter_prunes_on_separable_data() {
        // Two far-apart families: querying one should prune the other.
        let mut series: Vec<Vec<f64>> = (0..6).map(|i| wavy(100, i as f64 * 0.01)).collect();
        series.extend((0..6).map(|i| {
            wavy(100, i as f64 * 0.01)
                .into_iter()
                .map(|v| v + 50.0)
                .collect::<Vec<_>>()
        }));
        let idx = StIndex::<4>::build(
            series.clone(),
            StConfig {
                window: 16,
                subtrail_max: 16,
                cost_scale: 1.0,
            },
        );
        let query = wavy(16, 0.005);
        let (_, stats) = idx.range_query(&query, 1.0);
        assert!(
            stats.prune_rate() > 0.4,
            "expected pruning, got {:?}",
            stats
        );
    }

    #[test]
    fn short_series_are_skipped_gracefully() {
        let idx = StIndex::<4>::build(
            vec![vec![1.0, 2.0], wavy(40, 0.0)],
            StConfig {
                window: 8,
                ..StConfig::default()
            },
        );
        assert_eq!(idx.series_count(), 2);
        assert_eq!(idx.windows_total(), 40 - 8 + 1);
        let (hits, _) = idx.range_query(&wavy(8, 0.0), 0.5);
        assert!(hits.iter().all(|h| h.series == 1));
    }

    #[test]
    fn incremental_push_matches_batch_build() {
        let series = vec![wavy(50, 0.0), wavy(50, 1.5)];
        let cfg = StConfig {
            window: 8,
            ..StConfig::default()
        };
        let batch = StIndex::<4>::build(series.clone(), cfg);
        let mut inc = StIndex::<4>::build(Vec::new(), cfg);
        for s in series {
            inc.push_series(s);
        }
        assert_eq!(batch.windows_total(), inc.windows_total());
        assert_eq!(batch.subtrail_count(), inc.subtrail_count());
        let q = wavy(8, 1.45);
        let (h1, _) = batch.range_query(&q, 1.0);
        let (h2, _) = inc.range_query(&q, 1.0);
        assert_eq!(h1, h2);
    }

    #[test]
    #[should_panic(expected = "query length")]
    fn rejects_short_query() {
        let idx = StIndex::<4>::build(
            vec![wavy(40, 0.0)],
            StConfig {
                window: 8,
                ..StConfig::default()
            },
        );
        idx.range_query(&[1.0; 4], 1.0);
    }
}
