//! Orthonormal truncated DFT features with an O(fc) sliding update.
//!
//! FRM's filter rests on one analytic fact (Parseval): the orthonormal
//! DFT is an isometry of ℝ^w, so the Euclidean distance between two
//! windows equals the distance between their full spectra, and the
//! distance between *truncated* spectra can only be smaller. Features
//! built here therefore give a **lower bound** of the true window
//! distance — the no-false-dismissal guarantee.
//!
//! Two refinements from the literature are applied:
//!
//! * Real inputs have conjugate-symmetric spectra, so every retained
//!   non-DC coefficient has a mirror twin contributing the same amount
//!   to the distance. Scaling non-DC coefficients by √2 folds the twin
//!   in, tightening the bound while keeping feature-space distance plain
//!   Euclidean (so the R-tree needs no custom metric).
//! * Sliding the window by one point updates every coefficient in O(1)
//!   (rotate-and-replace), so a length-n series yields its n−w+1 feature
//!   points in O(n·fc) instead of O(n·w·fc).

/// Number of real feature dimensions for `fc` retained complex
/// coefficients (re/im interleaved).
pub const fn feature_dim(fc: usize) -> usize {
    2 * fc
}

/// Direct orthonormal DFT of `window`, truncated to the first `fc`
/// coefficients, written as `[re₀, im₀, re₁, im₁, …]` with non-DC
/// coefficients scaled by √2.
///
/// # Panics
///
/// Panics if `fc == 0` or `2 * fc > window.len()` (retaining more would
/// double-count mirror coefficients and break the lower bound).
pub fn dft_features(window: &[f64], fc: usize) -> Vec<f64> {
    let w = window.len();
    assert!(fc >= 1, "need at least one coefficient");
    assert!(2 * fc <= w, "fc too large for window of length {w}");
    let norm = 1.0 / (w as f64).sqrt();
    let mut out = Vec::with_capacity(feature_dim(fc));
    for f in 0..fc {
        let mut re = 0.0;
        let mut im = 0.0;
        for (j, &x) in window.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (f * j) as f64 / w as f64;
            re += x * ang.cos();
            im += x * ang.sin();
        }
        let scale = if f == 0 {
            norm
        } else {
            norm * std::f64::consts::SQRT_2
        };
        out.push(re * scale);
        out.push(im * scale);
    }
    out
}

/// Squared Euclidean distance between two feature vectors.
pub fn feature_dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Incremental sliding-window DFT over a stream of samples.
///
/// Prime it with the first `w` samples via [`push`](SlidingDft::push);
/// from then on each push slides the window by one and updates all
/// coefficients in O(fc). [`features`](SlidingDft::features) emits the
/// scaled feature vector of the current window.
#[derive(Debug, Clone)]
pub struct SlidingDft {
    w: usize,
    fc: usize,
    /// Unscaled coefficients (re, im) of the current window.
    coeffs: Vec<(f64, f64)>,
    /// Ring buffer of the current window.
    buf: Vec<f64>,
    head: usize,
    filled: usize,
}

impl SlidingDft {
    /// New sliding DFT for window width `w` keeping `fc` coefficients.
    ///
    /// # Panics
    ///
    /// Same conditions as [`dft_features`].
    pub fn new(w: usize, fc: usize) -> Self {
        assert!(fc >= 1, "need at least one coefficient");
        assert!(2 * fc <= w, "fc too large for window of length {w}");
        SlidingDft {
            w,
            fc,
            coeffs: vec![(0.0, 0.0); fc],
            buf: vec![0.0; w],
            head: 0,
            filled: 0,
        }
    }

    /// Whether a full window has been seen.
    pub fn ready(&self) -> bool {
        self.filled >= self.w
    }

    /// Push one sample; returns the feature vector once a full window is
    /// in view (i.e. from the `w`-th push onward).
    pub fn push(&mut self, x: f64) -> Option<Vec<f64>> {
        let norm = 1.0 / (self.w as f64).sqrt();
        if self.filled < self.w {
            // Accumulate the initial window coefficient by coefficient.
            let j = self.filled;
            for f in 0..self.fc {
                let ang = -2.0 * std::f64::consts::PI * (f * j) as f64 / self.w as f64;
                self.coeffs[f].0 += x * ang.cos() * norm;
                self.coeffs[f].1 += x * ang.sin() * norm;
            }
            self.buf[j] = x;
            self.filled += 1;
            return if self.ready() {
                Some(self.features())
            } else {
                None
            };
        }
        // Slide: X'_f = ω^f · (X_f + (x_new − x_old)/√w), ω = e^{2πi/w}.
        let x_old = self.buf[self.head];
        self.buf[self.head] = x;
        self.head = (self.head + 1) % self.w;
        let delta = (x - x_old) * norm;
        for f in 0..self.fc {
            let ang = 2.0 * std::f64::consts::PI * f as f64 / self.w as f64;
            let (c, s) = (ang.cos(), ang.sin());
            let (re, im) = self.coeffs[f];
            let re2 = re + delta;
            self.coeffs[f] = (re2 * c - im * s, re2 * s + im * c);
        }
        Some(self.features())
    }

    /// Scaled feature vector of the current window.
    ///
    /// # Panics
    ///
    /// Panics if called before a full window has been pushed.
    pub fn features(&self) -> Vec<f64> {
        assert!(self.ready(), "window not yet full");
        let mut out = Vec::with_capacity(feature_dim(self.fc));
        for (f, &(re, im)) in self.coeffs.iter().enumerate() {
            let scale = if f == 0 {
                1.0
            } else {
                std::f64::consts::SQRT_2
            };
            out.push(re * scale);
            out.push(im * scale);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ed_sq(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        // X_0 = Σx / √w, so a constant window c has DC = c·√w.
        let w = 8;
        let f = dft_features(&vec![3.0; w], 2);
        assert!((f[0] - 3.0 * (w as f64).sqrt()).abs() < 1e-9);
        assert!(f[1].abs() < 1e-9); // DC of a real signal is real
    }

    #[test]
    fn feature_distance_lower_bounds_true_distance() {
        let a = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0, 1.0, 0.0];
        let b = [2.0, 3.0, 2.5, 7.0, 6.0, 6.0, 2.0, 1.0];
        for fc in 1..=4 {
            let fa = dft_features(&a, fc);
            let fb = dft_features(&b, fc);
            let fd = feature_dist_sq(&fa, &fb);
            let td = ed_sq(&a, &b);
            assert!(fd <= td + 1e-9, "fc={fc}: feature {fd} exceeds true {td}");
        }
    }

    #[test]
    fn more_coefficients_tighten_the_bound() {
        let a = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0, 1.0, 0.0];
        let b = [0.0, 1.0, 7.0, 2.0, 3.0, 9.0, 4.0, 2.0];
        let mut prev = 0.0;
        for fc in 1..=4 {
            let fd = feature_dist_sq(&dft_features(&a, fc), &dft_features(&b, fc));
            assert!(fd + 1e-12 >= prev, "fc={fc} loosened the bound");
            prev = fd;
        }
    }

    #[test]
    fn sliding_matches_direct() {
        let xs: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.37).sin() * 3.0 + (i as f64 * 0.11).cos())
            .collect();
        let w = 12;
        let fc = 3;
        let mut sliding = SlidingDft::new(w, fc);
        let mut got = Vec::new();
        for &x in &xs {
            if let Some(f) = sliding.push(x) {
                got.push(f);
            }
        }
        assert_eq!(got.len(), xs.len() - w + 1);
        for (i, f) in got.iter().enumerate() {
            let direct = dft_features(&xs[i..i + w], fc);
            for (a, b) in f.iter().zip(&direct) {
                assert!((a - b).abs() < 1e-7, "window {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "fc too large")]
    fn rejects_oversized_fc() {
        dft_features(&[1.0, 2.0, 3.0], 2);
    }
}
