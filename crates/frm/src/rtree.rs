//! A from-scratch R-tree (Guttman 1984) over `D`-dimensional rectangles.
//!
//! The ST-index stores sub-trail MBRs in a spatial access method; the
//! original paper used an R*-tree. This is a classic Guttman R-tree with
//! quadratic split — the variant whose behaviour is easiest to reason
//! about and test. Payloads are opaque `u64`s (the ST-index stores
//! sub-trail ids).
//!
//! The tree is deliberately minimal: insert and two query forms (box
//! intersection and point-within-radius via mindist). Deletion is not
//! needed by any caller in this workspace; the ST-index rebuilds instead,
//! mirroring how FRM treats its index as a derived structure.

use onex_api::OnexError;

/// Maximum entries per node before a split (Guttman's M).
const MAX_ENTRIES: usize = 8;
/// Minimum fill per node after a split (Guttman's m ≤ M/2).
const MIN_ENTRIES: usize = 3;

/// An axis-aligned rectangle in ℝ^D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    /// Lower corner.
    pub min: [f64; D],
    /// Upper corner.
    pub max: [f64; D],
}

impl<const D: usize> Rect<D> {
    /// Degenerate rectangle covering a single point.
    pub fn point(p: [f64; D]) -> Self {
        Rect { min: p, max: p }
    }

    /// The smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rect<D>) -> Rect<D> {
        let mut r = *self;
        for d in 0..D {
            r.min[d] = r.min[d].min(other.min[d]);
            r.max[d] = r.max[d].max(other.max[d]);
        }
        r
    }

    /// Grow in place to cover `other`.
    pub fn expand(&mut self, other: &Rect<D>) {
        for d in 0..D {
            self.min[d] = self.min[d].min(other.min[d]);
            self.max[d] = self.max[d].max(other.max[d]);
        }
    }

    /// Whether the rectangles share any point (closed intervals).
    pub fn intersects(&self, other: &Rect<D>) -> bool {
        (0..D).all(|d| self.min[d] <= other.max[d] && other.min[d] <= self.max[d])
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect<D>) -> bool {
        (0..D).all(|d| self.min[d] <= other.min[d] && other.max[d] <= self.max[d])
    }

    /// Hyper-volume (product of extents).
    pub fn area(&self) -> f64 {
        (0..D).map(|d| self.max[d] - self.min[d]).product()
    }

    /// Increase in area if grown to cover `other`.
    pub fn enlargement(&self, other: &Rect<D>) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared distance from `p` to the nearest point of the rectangle
    /// (zero if `p` is inside) — the classic MINDIST of Roussopoulos.
    pub fn mindist_sq(&self, p: &[f64; D]) -> f64 {
        p.iter()
            .zip(self.min.iter().zip(&self.max))
            .map(|(&v, (&lo, &hi))| {
                let excess = if v < lo {
                    lo - v
                } else if v > hi {
                    v - hi
                } else {
                    0.0
                };
                excess * excess
            })
            .sum()
    }
}

#[derive(Debug, Clone)]
enum Node<const D: usize> {
    Leaf(Vec<(Rect<D>, u64)>),
    Inner(Vec<(Rect<D>, Box<Node<D>>)>),
}

impl<const D: usize> Node<D> {
    fn len(&self) -> usize {
        match self {
            Node::Leaf(v) => v.len(),
            Node::Inner(v) => v.len(),
        }
    }

    fn mbr(&self) -> Option<Rect<D>> {
        match self {
            Node::Leaf(v) => v.iter().map(|(r, _)| *r).reduce(|a, b| a.union(&b)),
            Node::Inner(v) => v.iter().map(|(r, _)| *r).reduce(|a, b| a.union(&b)),
        }
    }
}

/// Guttman R-tree over `D`-dimensional rectangles with `u64` payloads.
///
/// ```
/// use onex_frm::{RTree, Rect};
///
/// let mut tree = RTree::<2>::new();
/// for i in 0..20u64 {
///     let x = i as f64;
///     tree.insert(Rect { min: [x, 0.0], max: [x + 0.5, 1.0] }, i);
/// }
/// // Box intersection:
/// let mut hits = tree.search_intersecting(&Rect { min: [3.2, 0.0], max: [5.1, 0.5] });
/// hits.sort_unstable();
/// assert_eq!(hits, vec![3, 4, 5]);
/// // Best-first nearest neighbour:
/// let (d_sq, id) = tree.nearest([7.2, 0.5], 1)[0];
/// assert_eq!(id, 7);
/// assert!(d_sq < 1e-12); // [7.2, 0.5] lies inside rect 7
/// ```
#[derive(Debug, Clone)]
pub struct RTree<const D: usize> {
    root: Node<D>,
    len: usize,
    height: usize,
}

impl<const D: usize> Default for RTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> RTree<D> {
    /// Empty tree.
    pub fn new() -> Self {
        RTree {
            root: Node::Leaf(Vec::new()),
            len: 0,
            height: 1,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Insert a rectangle with its payload.
    pub fn insert(&mut self, rect: Rect<D>, payload: u64) {
        self.len += 1;
        if let Some((r1, n1, r2, n2)) = Self::insert_rec(&mut self.root, rect, payload) {
            // Root split: grow the tree by one level.
            self.root = Node::Inner(vec![(r1, Box::new(n1)), (r2, Box::new(n2))]);
            self.height += 1;
        }
    }

    /// Recursive insert; returns the two halves if `node` split.
    fn insert_rec(
        node: &mut Node<D>,
        rect: Rect<D>,
        payload: u64,
    ) -> Option<(Rect<D>, Node<D>, Rect<D>, Node<D>)> {
        match node {
            Node::Leaf(entries) => {
                entries.push((rect, payload));
                if entries.len() > MAX_ENTRIES {
                    let (l, r) = quadratic_split(std::mem::take(entries));
                    let (lr, rr) = (leaf_mbr(&l), leaf_mbr(&r));
                    Some((lr, Node::Leaf(l), rr, Node::Leaf(r)))
                } else {
                    None
                }
            }
            Node::Inner(children) => {
                // ChooseLeaf: least enlargement, ties by smaller area.
                let mut best = 0;
                let mut best_enl = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, (r, _)) in children.iter().enumerate() {
                    let enl = r.enlargement(&rect);
                    let area = r.area();
                    if enl < best_enl || (enl == best_enl && area < best_area) {
                        best = i;
                        best_enl = enl;
                        best_area = area;
                    }
                }
                let split = {
                    let (r, child) = &mut children[best];
                    r.expand(&rect);
                    Self::insert_rec(child, rect, payload)
                };
                if let Some((r1, n1, r2, n2)) = split {
                    children[best] = (r1, Box::new(n1));
                    children.push((r2, Box::new(n2)));
                    if children.len() > MAX_ENTRIES {
                        let (l, r) = quadratic_split(std::mem::take(children));
                        let (lr, rr) = (inner_mbr(&l), inner_mbr(&r));
                        return Some((lr, Node::Inner(l), rr, Node::Inner(r)));
                    }
                }
                None
            }
        }
    }

    /// Payloads of all entries whose rectangle intersects `query`.
    pub fn search_intersecting(&self, query: &Rect<D>) -> Vec<u64> {
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf(entries) => {
                    for (r, p) in entries {
                        if r.intersects(query) {
                            out.push(*p);
                        }
                    }
                }
                Node::Inner(children) => {
                    for (r, child) in children {
                        if r.intersects(query) {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        out
    }

    /// Payloads of all entries whose rectangle comes within Euclidean
    /// distance `radius` of point `p` (ball query via MINDIST pruning).
    pub fn search_within(&self, p: &[f64; D], radius: f64) -> Vec<u64> {
        let r_sq = radius * radius;
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf(entries) => {
                    for (rect, payload) in entries {
                        if rect.mindist_sq(p) <= r_sq {
                            out.push(*payload);
                        }
                    }
                }
                Node::Inner(children) => {
                    for (rect, child) in children {
                        if rect.mindist_sq(p) <= r_sq {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        out
    }

    /// Structural invariants, for tests: uniform leaf depth, child MBRs
    /// contained in and exactly covered by parent rectangles, node sizes
    /// within bounds (root exempt from the minimum).
    pub fn check_invariants(&self) -> Result<(), OnexError> {
        fn walk<const D: usize>(
            node: &Node<D>,
            depth: usize,
            is_root: bool,
            leaf_depth: &mut Option<usize>,
        ) -> Result<(), OnexError> {
            let bad = |msg: String| Err(OnexError::InvalidData(msg));
            if !is_root && node.len() < MIN_ENTRIES {
                return bad(format!("underfull node: {} entries", node.len()));
            }
            if node.len() > MAX_ENTRIES {
                return bad(format!("overfull node: {} entries", node.len()));
            }
            match node {
                Node::Leaf(_) => match leaf_depth {
                    None => {
                        *leaf_depth = Some(depth);
                        Ok(())
                    }
                    Some(d) if *d == depth => Ok(()),
                    Some(d) => bad(format!("leaf depth {depth} != {d}")),
                },
                Node::Inner(children) => {
                    if children.is_empty() {
                        return bad("empty inner node".into());
                    }
                    for (r, child) in children {
                        let mbr = child.mbr().ok_or_else(|| {
                            OnexError::InvalidData("child with no entries".into())
                        })?;
                        if !r.contains_rect(&mbr) {
                            return bad(format!("parent rect {r:?} does not contain {mbr:?}"));
                        }
                        walk(child, depth + 1, false, leaf_depth)?;
                    }
                    Ok(())
                }
            }
        }
        let mut leaf_depth = None;
        walk(&self.root, 0, true, &mut leaf_depth)
    }
}

fn leaf_mbr<const D: usize>(entries: &[(Rect<D>, u64)]) -> Rect<D> {
    entries
        .iter()
        .map(|(r, _)| *r)
        .reduce(|a, b| a.union(&b))
        .expect("split halves are non-empty")
}

fn inner_mbr<const D: usize>(entries: &[(Rect<D>, Box<Node<D>>)]) -> Rect<D> {
    entries
        .iter()
        .map(|(r, _)| *r)
        .reduce(|a, b| a.union(&b))
        .expect("split halves are non-empty")
}

/// The two halves produced by a node split.
type SplitHalves<const D: usize, T> = (Vec<(Rect<D>, T)>, Vec<(Rect<D>, T)>);

/// Guttman's quadratic split: seed with the pair wasting the most area,
/// then assign remaining entries by strongest preference, honouring the
/// minimum fill.
fn quadratic_split<const D: usize, T>(mut entries: Vec<(Rect<D>, T)>) -> SplitHalves<D, T> {
    debug_assert!(entries.len() > MAX_ENTRIES);
    // PickSeeds: maximise dead area of the pair's union.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let d = entries[i].0.union(&entries[j].0).area()
                - entries[i].0.area()
                - entries[j].0.area();
            if d > worst {
                worst = d;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove the later index first so the earlier one stays valid.
    let e2 = entries.swap_remove(s2.max(s1));
    let e1 = entries.swap_remove(s2.min(s1));
    let mut r1 = e1.0;
    let mut r2 = e2.0;
    let mut g1 = vec![e1];
    let mut g2 = vec![e2];

    while let Some(pos) = pick_next(&entries, &r1, &r2) {
        let remaining = entries.len();
        // Min-fill guard: if one group must take everything left, do so.
        if g1.len() + remaining <= MIN_ENTRIES {
            for e in entries.drain(..) {
                r1.expand(&e.0);
                g1.push(e);
            }
            break;
        }
        if g2.len() + remaining <= MIN_ENTRIES {
            for e in entries.drain(..) {
                r2.expand(&e.0);
                g2.push(e);
            }
            break;
        }
        let e = entries.swap_remove(pos);
        let d1 = r1.enlargement(&e.0);
        let d2 = r2.enlargement(&e.0);
        let to_first = d1 < d2
            || (d1 == d2
                && (r1.area() < r2.area() || (r1.area() == r2.area() && g1.len() <= g2.len())));
        if to_first {
            r1.expand(&e.0);
            g1.push(e);
        } else {
            r2.expand(&e.0);
            g2.push(e);
        }
    }
    (g1, g2)
}

/// PickNext: entry with the greatest difference of enlargement
/// preference between the two groups.
fn pick_next<const D: usize, T>(
    entries: &[(Rect<D>, T)],
    r1: &Rect<D>,
    r2: &Rect<D>,
) -> Option<usize> {
    entries
        .iter()
        .enumerate()
        .map(|(i, (r, _))| (i, (r1.enlargement(r) - r2.enlargement(r)).abs()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect2(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect<2> {
        Rect {
            min: [x0, y0],
            max: [x1, y1],
        }
    }

    #[test]
    fn rect_geometry() {
        let a = rect2(0.0, 0.0, 2.0, 2.0);
        let b = rect2(1.0, 1.0, 3.0, 3.0);
        let c = rect2(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.union(&b), rect2(0.0, 0.0, 3.0, 3.0));
        assert!(a.union(&b).contains_rect(&a));
        assert_eq!(a.area(), 4.0);
        assert_eq!(a.enlargement(&b), 5.0);
        // mindist: point outside in both dims
        assert_eq!(c.mindist_sq(&[3.0, 5.5]), 4.0);
        // point inside
        assert_eq!(a.mindist_sq(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn touching_rects_intersect() {
        let a = rect2(0.0, 0.0, 1.0, 1.0);
        let b = rect2(1.0, 1.0, 2.0, 2.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn insert_and_search_small() {
        let mut t = RTree::<2>::new();
        for i in 0..5 {
            let x = i as f64;
            t.insert(rect2(x, x, x + 0.5, x + 0.5), i);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 1);
        let mut hits = t.search_intersecting(&rect2(0.0, 0.0, 1.2, 1.2));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn grows_and_keeps_invariants() {
        let mut t = RTree::<2>::new();
        for i in 0..200u64 {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            t.insert(rect2(x, y, x + 0.9, y + 0.9), i);
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 200);
        assert!(t.height() > 1);
    }

    #[test]
    fn search_matches_linear_scan() {
        let mut t = RTree::<2>::new();
        let mut all = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 10.0
        };
        for i in 0..300u64 {
            let (x, y) = (next(), next());
            let (w, h) = (next() * 0.2, next() * 0.2);
            let r = rect2(x, y, x + w, y + h);
            t.insert(r, i);
            all.push((r, i));
        }
        let q = rect2(2.0, 2.0, 5.0, 5.0);
        let mut got = t.search_intersecting(&q);
        got.sort_unstable();
        let mut want: Vec<u64> = all
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|&(_, i)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);

        let p = [3.3, 7.1];
        let radius = 1.5;
        let mut got = t.search_within(&p, radius);
        got.sort_unstable();
        let mut want: Vec<u64> = all
            .iter()
            .filter(|(r, _)| r.mindist_sq(&p) <= radius * radius)
            .map(|&(_, i)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_tree_behaves() {
        let t = RTree::<3>::new();
        assert!(t.is_empty());
        assert!(t
            .search_intersecting(&Rect::point([0.0, 0.0, 0.0]))
            .is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_rects_are_all_found() {
        let mut t = RTree::<2>::new();
        let r = rect2(1.0, 1.0, 2.0, 2.0);
        for i in 0..30 {
            t.insert(r, i);
        }
        let hits = t.search_intersecting(&r);
        assert_eq!(hits.len(), 30);
        t.check_invariants().unwrap();
    }
}

// ---------------------------------------------------------------------
// Incremental nearest-neighbour traversal (Hjaltason & Samet) and STR
// bulk loading.
// ---------------------------------------------------------------------

use std::collections::BinaryHeap;

enum PqItem<'a, const D: usize> {
    Node(&'a Node<D>),
    Entry(u64),
}

/// Heap element ordered so the smallest mindist pops first (ties broken
/// by insertion order, so `PqItem` itself is never compared).
struct HeapItem<'a, const D: usize> {
    key: f64,
    seq: usize,
    item: PqItem<'a, D>,
}

impl<const D: usize> PartialEq for HeapItem<'_, D> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

impl<const D: usize> Eq for HeapItem<'_, D> {}

impl<const D: usize> PartialOrd for HeapItem<'_, D> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<const D: usize> Ord for HeapItem<'_, D> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want min-mindist first.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Iterator yielding `(mindist², payload)` in non-decreasing mindist
/// order — the classic best-first traversal. Each entry surfaces exactly
/// once; the caller decides when the distances prove it can stop.
pub struct NearestIter<'a, const D: usize> {
    point: [f64; D],
    heap: BinaryHeap<HeapItem<'a, D>>,
    /// Tie-break counter so the heap never compares `PqItem`s.
    seq: usize,
}

impl<'a, const D: usize> Iterator for NearestIter<'a, D> {
    type Item = (f64, u64);

    fn next(&mut self) -> Option<(f64, u64)> {
        while let Some(HeapItem { key, item, .. }) = self.heap.pop() {
            match item {
                PqItem::Entry(payload) => return Some((key, payload)),
                PqItem::Node(node) => match node {
                    Node::Leaf(entries) => {
                        for (r, p) in entries {
                            self.seq += 1;
                            self.heap.push(HeapItem {
                                key: r.mindist_sq(&self.point),
                                seq: self.seq,
                                item: PqItem::Entry(*p),
                            });
                        }
                    }
                    Node::Inner(children) => {
                        for (r, child) in children {
                            self.seq += 1;
                            self.heap.push(HeapItem {
                                key: r.mindist_sq(&self.point),
                                seq: self.seq,
                                item: PqItem::Node(child),
                            });
                        }
                    }
                },
            }
        }
        None
    }
}

impl<const D: usize> RTree<D> {
    /// Best-first traversal from `p`: entries in non-decreasing
    /// `(mindist², payload)` order. O(log n) amortised per step on
    /// well-shaped trees; never visits a subtree whose MBR is farther
    /// than the entries already required.
    pub fn nearest_iter(&self, p: [f64; D]) -> NearestIter<'_, D> {
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            key: 0.0,
            seq: 0,
            item: PqItem::Node(&self.root),
        });
        NearestIter {
            point: p,
            heap,
            seq: 0,
        }
    }

    /// The `k` entries with smallest mindist to `p`.
    pub fn nearest(&self, p: [f64; D], k: usize) -> Vec<(f64, u64)> {
        self.nearest_iter(p).take(k).collect()
    }

    /// Bulk-load with Sort-Tile-Recursive packing: near-100% node fill
    /// and far better leaf locality than one-at-a-time insertion. The
    /// classic build path for a derived index like the ST-index.
    pub fn bulk_load(mut entries: Vec<(Rect<D>, u64)>) -> Self {
        let len = entries.len();
        if len == 0 {
            return RTree::new();
        }
        // Leaves: tile by centre coordinate, one dimension per pass.
        // Chunk sizes are balanced so no node falls below minimum fill.
        str_tile(&mut entries, 0, MAX_ENTRIES);
        let mut leaves: Vec<(Rect<D>, Node<D>)> = Vec::new();
        {
            let mut rest: &[(Rect<D>, u64)] = &entries;
            for size in balanced_chunks(rest.len(), MAX_ENTRIES) {
                let (chunk, tail) = rest.split_at(size);
                leaves.push((leaf_mbr(chunk), Node::Leaf(chunk.to_vec())));
                rest = tail;
            }
        }
        let mut height = 1;
        while leaves.len() > 1 {
            str_tile(&mut leaves, height % D, MAX_ENTRIES);
            let mut next = Vec::new();
            let mut rest: &[(Rect<D>, Node<D>)] = &leaves;
            for size in balanced_chunks(rest.len(), MAX_ENTRIES) {
                let (chunk, tail) = rest.split_at(size);
                let boxed: Vec<(Rect<D>, Box<Node<D>>)> = chunk
                    .iter()
                    .map(|(r, n)| (*r, Box::new(n.clone())))
                    .collect();
                next.push((inner_mbr(&boxed), Node::Inner(boxed)));
                rest = tail;
            }
            leaves = next;
            height += 1;
        }
        let (_, root) = leaves.pop().expect("non-empty by construction");
        RTree { root, len, height }
    }
}

/// Split `len` items into ceil(len/cap) chunks whose sizes differ by at
/// most one, so every chunk of a bulk load meets the minimum fill (for
/// `len > cap`, each chunk holds at least `⌊cap/2⌋ ≥ m` items).
fn balanced_chunks(len: usize, cap: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let k = len.div_ceil(cap);
    let base = len / k;
    let extra = len % k;
    (0..k).map(|i| base + usize::from(i < extra)).collect()
}

/// One STR pass: sort by centre of `dim`, then recursively refine each
/// slab on the next dimension so sibling groups are spatially tight.
fn str_tile<const D: usize, T>(entries: &mut [(Rect<D>, T)], dim: usize, node_cap: usize) {
    if entries.len() <= node_cap || dim >= D {
        return;
    }
    let centre = |r: &Rect<D>| (r.min[dim] + r.max[dim]) / 2.0;
    entries.sort_by(|a, b| centre(&a.0).total_cmp(&centre(&b.0)));
    let leaves = entries.len().div_ceil(node_cap);
    // Slab count ≈ the D-th root spread over remaining dimensions.
    let slabs = (leaves as f64).powf(1.0 / (D - dim) as f64).ceil().max(1.0) as usize;
    let slab_size = entries.len().div_ceil(slabs).max(node_cap);
    for slab in entries.chunks_mut(slab_size) {
        str_tile(slab, dim + 1, node_cap);
    }
}

#[cfg(test)]
mod nn_tests {
    use super::*;

    fn grid_tree(n: usize) -> (RTree<2>, Vec<[f64; 2]>) {
        let mut t = RTree::new();
        let mut pts = Vec::new();
        for i in 0..n {
            let p = [(i % 17) as f64 * 1.3, (i / 17) as f64 * 0.9];
            t.insert(Rect::point(p), i as u64);
            pts.push(p);
        }
        (t, pts)
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let (t, pts) = grid_tree(150);
        let q = [7.1, 3.4];
        let got = t.nearest(q, 10);
        let mut want: Vec<(f64, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d = (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2);
                (d, i as u64)
            })
            .collect();
        want.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (g, w) in got.iter().zip(&want) {
            assert!((g.0 - w.0).abs() < 1e-12, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn nearest_iter_is_monotone_and_complete() {
        let (t, pts) = grid_tree(120);
        let dists: Vec<f64> = t.nearest_iter([3.0, 3.0]).map(|(d, _)| d).collect();
        assert_eq!(dists.len(), pts.len());
        for w in dists.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "not monotone: {w:?}");
        }
    }

    #[test]
    fn bulk_load_equals_incremental_for_queries() {
        let entries: Vec<(Rect<2>, u64)> = (0..500u64)
            .map(|i| {
                let x = (i % 23) as f64 * 0.7;
                let y = (i / 23) as f64 * 1.1;
                (
                    Rect {
                        min: [x, y],
                        max: [x + 0.3, y + 0.3],
                    },
                    i,
                )
            })
            .collect();
        let bulk = RTree::bulk_load(entries.clone());
        let mut incr = RTree::new();
        for (r, p) in &entries {
            incr.insert(*r, *p);
        }
        bulk.check_invariants().unwrap();
        assert_eq!(bulk.len(), incr.len());
        let q = Rect {
            min: [2.0, 3.0],
            max: [9.0, 12.0],
        };
        let mut a = bulk.search_intersecting(&q);
        let mut b = incr.search_intersecting(&q);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Bulk loading should not be taller than incremental insertion.
        assert!(bulk.height() <= incr.height());
    }

    #[test]
    fn bulk_load_handles_edge_sizes() {
        assert!(RTree::<2>::bulk_load(Vec::new()).is_empty());
        let one = RTree::<2>::bulk_load(vec![(Rect::point([1.0, 2.0]), 7)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.nearest([1.0, 2.0], 1), vec![(0.0, 7)]);
        // Exactly one over capacity.
        let entries: Vec<(Rect<2>, u64)> = (0..9u64)
            .map(|i| (Rect::point([i as f64, 0.0]), i))
            .collect();
        let t = RTree::bulk_load(entries);
        assert_eq!(t.len(), 9);
        t.check_invariants().unwrap();
    }
}
