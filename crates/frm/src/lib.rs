//! # onex-frm — the FRM / ST-index subsequence-matching baseline
//!
//! A clean-room Rust implementation of Faloutsos, Ranganathan and
//! Manolopoulos, *Fast subsequence matching in time-series databases*
//! (SIGMOD 1994) — reference \[4\] of the ONEX demo paper and the classic
//! representative of the "fast-to-compute distances like the Euclidean
//! Distance" school the paper contrasts ONEX with.
//!
//! The pipeline, exactly as in the paper:
//!
//! 1. **Feature extraction** ([`dft`]): slide a window of width `w` over
//!    every series and map each window to its first few DFT coefficients.
//!    With the orthonormal DFT, truncation is *contractive* — feature
//!    distance lower-bounds true Euclidean distance — which is the whole
//!    correctness argument (no false dismissals).
//! 2. **Trail division** ([`stindex`]): consecutive windows trace a
//!    *trail* through feature space; the trail is greedily cut into
//!    sub-trails using the paper's marginal-cost heuristic and each
//!    sub-trail is summarised by its minimum bounding rectangle.
//! 3. **Spatial index** ([`rtree`]): sub-trail MBRs go into an R-tree —
//!    built from scratch here, with quadratic split, as a genuine
//!    database substrate.
//! 4. **Search** ([`stindex::StIndex`]): a range query maps the query
//!    into feature space, retrieves intersecting sub-trails, expands them
//!    to candidate window positions, and verifies candidates against the
//!    raw data with early-abandoning Euclidean distance. Queries longer
//!    than `w` use the paper's PrefixSearch/multi-piece lemma with radius
//!    `ε/√p` per piece.
//!
//! ## Semantics
//!
//! FRM answers **raw-scale Euclidean** subsequence queries of a fixed
//! window length — the narrowest semantics of the four engines compared
//! in experiment E11 (ONEX: elastic DTW over heterogeneous lengths;
//! UCR Suite: z-normalised DTW; SPRING: streaming DTW; FRM: raw ED).
//! The point of the experiment is precisely this semantic ladder: FRM's
//! filter is cheapest and its answers are least robust to warping, which
//! is the gap ONEX's "marriage of distances" closes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dft;
pub mod persist;
pub mod rtree;
pub mod stindex;

pub use rtree::{RTree, Rect};
pub use stindex::{FrmHit, FrmStats, StConfig, StIndex};
