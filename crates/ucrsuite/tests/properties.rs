//! Property tests: the UCR Suite must agree with an unoptimised
//! z-normalised scan on every input — the whole cascade is pure pruning,
//! never approximation.

use onex_distance::{dtw, Band};
use onex_tseries::normalize::znorm;
use onex_ucrsuite::{ucr_dtw_search, ucr_ed_search, DtwSearchConfig};
use proptest::prelude::*;

fn brute_force_dtw(t: &[f64], q: &[f64], radius: usize) -> (usize, f64) {
    let m = q.len();
    let qz = znorm(q);
    let mut best = (0usize, f64::INFINITY);
    for start in 0..=t.len() - m {
        let cz = znorm(&t[start..start + m]);
        let d = dtw(&qz, &cz, Band::SakoeChiba(radius));
        if d < best.1 {
            best = (start, d);
        }
    }
    best
}

fn brute_force_ed(t: &[f64], q: &[f64]) -> f64 {
    let m = q.len();
    let qz = znorm(q);
    let mut best = f64::INFINITY;
    for start in 0..=t.len() - m {
        let cz = znorm(&t[start..start + m]);
        let d: f64 = qz
            .iter()
            .zip(&cz)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        best = best.min(d);
    }
    best
}

fn series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dtw_search_equals_brute_force(
        t in series(30..80),
        q in series(4..16),
        frac in 0.0f64..0.3,
    ) {
        let cfg = DtwSearchConfig { band_fraction: frac };
        let (hit, stats) = ucr_dtw_search(&t, &q, &cfg).expect("t longer than q");
        let radius = (frac * q.len() as f64).ceil() as usize;
        let (_, bf_dist) = brute_force_dtw(&t, &q, radius);
        prop_assert!(
            (hit.distance - bf_dist).abs() < 1e-7,
            "ucr {} vs brute {}", hit.distance, bf_dist
        );
        prop_assert_eq!(stats.candidates, t.len() - q.len() + 1);
    }

    #[test]
    fn ed_search_equals_brute_force(t in series(30..80), q in series(4..16)) {
        let (hit, _) = ucr_ed_search(&t, &q).expect("t longer than q");
        let bf = brute_force_ed(&t, &q);
        prop_assert!((hit.distance - bf).abs() < 1e-7, "{} vs {bf}", hit.distance);
    }

    #[test]
    fn pruning_counters_are_consistent(t in series(40..100), q in series(6..14)) {
        let (_, stats) = ucr_dtw_search(&t, &q, &DtwSearchConfig::default()).unwrap();
        let accounted = stats.kim_pruned
            + stats.keogh_eq_pruned
            + stats.keogh_ec_pruned
            + stats.dtw_runs;
        prop_assert_eq!(accounted, stats.candidates, "every candidate ends somewhere");
        prop_assert!(stats.dtw_abandoned <= stats.dtw_runs);
        prop_assert!((0.0..=1.0).contains(&stats.prune_rate()));
    }
}
