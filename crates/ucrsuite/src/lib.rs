//! # onex-ucrsuite — the UCR Suite baseline
//!
//! A clean-room Rust implementation of the subsequence-search algorithm of
//! Rakthanmanon et al., *Searching and mining trillions of time series
//! subsequences under dynamic time warping* (KDD 2012) — reference \[6\] of
//! the ONEX demo paper and the "fastest known method" its headline speed
//! claim is measured against (experiment E5).
//!
//! Given a query `q` and a long series `t`, the suite finds the window of
//! `t` whose **z-normalised** distance to `q` is minimal, under ED or
//! band-constrained DTW, using the full optimisation stack:
//!
//! 1. just-in-time z-normalisation from running sums (no window rescans),
//! 2. query reordering by |z| so early abandonment hits fast,
//! 3. the cascading lower bounds LB_KimFL → LB_Keogh(EQ) → LB_Keogh(EC),
//! 4. early-abandoning DTW fed with the cumulative bound of the last
//!    LB_Keogh stage.
//!
//! Every pruning tier is counted in [`SearchStats`], reproducing the
//! "pruned by …" accounting of the original paper's tables.
//!
//! ## Semantics note
//!
//! The UCR Suite answers *z-normalised* similarity (every candidate window
//! is normalised to zero mean / unit variance); ONEX answers raw-scale
//! similarity. The speed experiment E5 compares wall-clock per query on
//! each system's own semantics — the same caveat the original comparison
//! carries. Distances returned here are on the root scale (`√Σd²`), like
//! everything else in this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod search;

pub use search::{
    ucr_dtw_search, ucr_dtw_search_dataset, ucr_dtw_search_dataset_topk, ucr_dtw_search_topk,
    ucr_dtw_search_with_bsf, ucr_ed_search, DtwSearchConfig, Hit, SearchStats, TopK,
};
