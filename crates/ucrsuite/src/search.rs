use onex_api::BestK;
use onex_distance::dtw::dtw_early_abandon_sq_with_cb;
use onex_distance::lb::{
    cumulative_bound, lb_keogh_env_znorm_sq, lb_keogh_znorm_sq, lb_kim_fl_sq_corners,
};
use onex_distance::{Band, Envelope};
use onex_tseries::normalize::{znorm, STD_FLOOR};
use onex_tseries::Dataset;

/// Where the best window was found, and how far it is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Index of the series in the dataset (0 for single-series search).
    pub series: u32,
    /// Start offset of the best window.
    pub start: usize,
    /// Z-normalised distance (root scale).
    pub distance: f64,
}

/// Pruning accounting across the cascade — the UCR paper reports these
/// percentages; experiment E5 prints them next to the timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidate windows examined.
    pub candidates: usize,
    /// Killed by LB_KimFL.
    pub kim_pruned: usize,
    /// Killed by LB_Keogh (query envelope vs candidate).
    pub keogh_eq_pruned: usize,
    /// Killed by LB_Keogh (candidate envelope vs query).
    pub keogh_ec_pruned: usize,
    /// DTW DP runs started.
    pub dtw_runs: usize,
    /// DTW DP runs abandoned before completion.
    pub dtw_abandoned: usize,
}

impl SearchStats {
    /// Fraction of candidates that never reached the DTW stage.
    pub fn prune_rate(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        1.0 - self.dtw_runs as f64 / self.candidates as f64
    }
}

/// Configuration of a DTW search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtwSearchConfig {
    /// Sakoe–Chiba radius as a fraction of the query length (the UCR
    /// convention; 0.05 is the classic default).
    pub band_fraction: f64,
}

impl Default for DtwSearchConfig {
    fn default() -> Self {
        DtwSearchConfig {
            band_fraction: 0.05,
        }
    }
}

/// Rolling mean/std over fixed-size windows from running sums — the
/// "just-in-time z-normalisation" of the UCR Suite.
struct RollingMoments<'a> {
    t: &'a [f64],
    m: usize,
    sum: f64,
    sumsq: f64,
    /// Start of the window currently summarised, `None` before priming.
    at: Option<usize>,
}

impl<'a> RollingMoments<'a> {
    fn new(t: &'a [f64], m: usize) -> Self {
        RollingMoments {
            t,
            m,
            sum: 0.0,
            sumsq: 0.0,
            at: None,
        }
    }

    /// Moments of window `[start, start + m)`; must be called with
    /// non-decreasing `start` (steps of any size re-prime as needed).
    fn moments(&mut self, start: usize) -> (f64, f64) {
        match self.at {
            Some(prev) if start == prev => {}
            Some(prev) if start == prev + 1 => {
                let out = self.t[prev];
                let inn = self.t[prev + self.m];
                self.sum += inn - out;
                self.sumsq += inn * inn - out * out;
                self.at = Some(start);
            }
            _ => {
                self.sum = self.t[start..start + self.m].iter().sum();
                self.sumsq = self.t[start..start + self.m].iter().map(|v| v * v).sum();
                self.at = Some(start);
            }
        }
        let mean = self.sum / self.m as f64;
        let var = (self.sumsq / self.m as f64 - mean * mean).max(0.0);
        (mean, var.sqrt())
    }
}

/// Query preprocessed once per search.
struct PreparedQuery {
    /// Z-normalised query.
    qz: Vec<f64>,
    /// Indices of `qz` sorted by |value| descending (reordering early
    /// abandonment: biggest contributions first).
    order: Vec<usize>,
    /// Envelope of `qz` (for LB_Keogh EQ), in original index space.
    env: Envelope,
}

fn prepare_query(q: &[f64], radius: usize) -> PreparedQuery {
    let qz = znorm(q);
    let mut order: Vec<usize> = (0..qz.len()).collect();
    order.sort_by(|&a, &b| qz[b].abs().total_cmp(&qz[a].abs()).then(a.cmp(&b)));
    let env = Envelope::build(&qz, radius);
    PreparedQuery { qz, order, env }
}

/// The kernel-side z-norm scale for a window: `1/σ`, or 0 for a flat
/// window (the [`STD_FLOOR`] convention — same collapse-to-zero the DTW
/// stage's `znorm_with_moments` applies, in the identical
/// subtract-then-multiply form, so bounds and DP values stay
/// bit-consistent).
#[inline]
fn znorm_scale(std: f64) -> f64 {
    if std < STD_FLOOR {
        0.0
    } else {
        1.0 / std
    }
}

/// LB_KimFL on z-normalised data: the shared
/// [`lb_kim_fl_sq_corners`] kernel fed with just the four z-normalised
/// corner values of the window (the ONEX cascade's `lb_kim_fl_sq` is the
/// same kernel over raw values). `mean`/`std` are the candidate window's
/// moments.
fn lb_kim_fl(
    t: &[f64],
    start: usize,
    m: usize,
    qz: &[f64],
    mean: f64,
    std: f64,
    bsf_sq: f64,
) -> f64 {
    let scale = znorm_scale(std);
    let zn = |i: usize| (t[start + i] - mean) * scale;
    let (c1, c2) = if m >= 4 {
        (zn(1), zn(m - 2))
    } else {
        (0.0, 0.0)
    };
    lb_kim_fl_sq_corners(qz, m, zn(0), c1, c2, zn(m - 1), bsf_sq)
}

/// LB_Keogh EQ: candidate values (z-normalised inside the shared SIMD
/// kernel) against the query envelope. Fills `contrib` for the
/// cumulative bound.
fn lb_keogh_eq(
    t: &[f64],
    start: usize,
    pq: &PreparedQuery,
    mean: f64,
    std: f64,
    bsf_sq: f64,
    contrib: &mut [f64],
) -> f64 {
    let m = pq.qz.len();
    lb_keogh_znorm_sq(
        &t[start..start + m],
        mean,
        znorm_scale(std),
        &pq.env,
        bsf_sq,
        contrib,
    )
}

/// LB_Keogh EC: z-normalised *candidate* envelope against the query,
/// via the shared SIMD kernel. Uses the precomputed raw envelope of the
/// whole series — a superset of the window envelope, hence still a
/// sound (slightly looser) bound — normalised with the window's moments.
fn lb_keogh_ec(
    env_t: &Envelope,
    start: usize,
    pq: &PreparedQuery,
    mean: f64,
    std: f64,
    bsf_sq: f64,
    contrib: &mut [f64],
) -> f64 {
    let m = pq.qz.len();
    lb_keogh_env_znorm_sq(
        &pq.qz,
        &env_t.lower[start..start + m],
        &env_t.upper[start..start + m],
        mean,
        znorm_scale(std),
        bsf_sq,
        contrib,
    )
}

/// Best z-normalised **ED** window of length `|q|` in `t` (reordering
/// early abandonment, no lower-bound cascade needed: ED itself is cheap).
pub fn ucr_ed_search(t: &[f64], q: &[f64]) -> Option<(Hit, SearchStats)> {
    let m = q.len();
    if m == 0 || t.len() < m {
        return None;
    }
    let pq = prepare_query(q, 0);
    let mut moments = RollingMoments::new(t, m);
    let mut stats = SearchStats::default();
    let mut bsf_sq = f64::INFINITY;
    let mut best_start = 0usize;
    for start in 0..=t.len() - m {
        stats.candidates += 1;
        let (mean, std) = moments.moments(start);
        let mut acc = 0.0;
        let mut abandoned = false;
        for &i in &pq.order {
            let c = if std < STD_FLOOR {
                0.0
            } else {
                (t[start + i] - mean) / std
            };
            let d = c - pq.qz[i];
            acc += d * d;
            if acc > bsf_sq {
                abandoned = true;
                break;
            }
        }
        if !abandoned && acc < bsf_sq {
            bsf_sq = acc;
            best_start = start;
        }
    }
    Some((
        Hit {
            series: 0,
            start: best_start,
            distance: bsf_sq.sqrt(),
        },
        stats,
    ))
}

/// Best z-normalised **DTW** window of length `|q|` in `t` under the
/// configured Sakoe–Chiba band, with the full UCR cascade.
///
/// ```
/// use onex_ucrsuite::{ucr_dtw_search, DtwSearchConfig};
/// let t: Vec<f64> = (0..200).map(|i| (i as f64 * 0.3).sin()).collect();
/// let q = t[120..150].to_vec(); // an embedded window
/// let (hit, _stats) = ucr_dtw_search(&t, &q, &DtwSearchConfig::default()).unwrap();
/// assert_eq!(hit.start, 120);
/// assert!(hit.distance < 1e-9);
/// ```
pub fn ucr_dtw_search(t: &[f64], q: &[f64], cfg: &DtwSearchConfig) -> Option<(Hit, SearchStats)> {
    let mut stats = SearchStats::default();
    ucr_dtw_search_with_bsf(t, q, cfg, f64::INFINITY, &mut stats).map(|h| (h, stats))
}

/// The shared scan behind every DTW search form: slide the window over
/// `t`, run the full pruning cascade against the current bound, and hand
/// each surviving window to `accept(start, d_sq)`, which returns the
/// bound (squared) the scan continues with. Best-only searches return the
/// new distance; top-k searches return their k-th best.
fn scan_dtw_windows(
    t: &[f64],
    q: &[f64],
    cfg: &DtwSearchConfig,
    stats: &mut SearchStats,
    init_bound_sq: f64,
    accept: &mut dyn FnMut(usize, f64) -> f64,
) {
    let m = q.len();
    if m == 0 || t.len() < m {
        return;
    }
    assert!(
        (0.0..=1.0).contains(&cfg.band_fraction),
        "band fraction out of range"
    );
    let radius = (cfg.band_fraction * m as f64).ceil() as usize;
    let band = Band::SakoeChiba(radius);
    let pq = prepare_query(q, radius);
    let env_t = Envelope::build(t, radius);
    let mut moments = RollingMoments::new(t, m);
    let mut bsf_sq = init_bound_sq;
    let mut contrib_eq = vec![0.0; m];
    let mut contrib_ec = vec![0.0; m];
    let mut cand = vec![0.0; m];

    for start in 0..=t.len() - m {
        stats.candidates += 1;
        let (mean, std) = moments.moments(start);

        // Tier 1: LB_KimFL.
        if lb_kim_fl(t, start, m, &pq.qz, mean, std, bsf_sq).is_infinite() {
            stats.kim_pruned += 1;
            continue;
        }
        // Tier 2: LB_Keogh EQ.
        let lb_eq = lb_keogh_eq(t, start, &pq, mean, std, bsf_sq, &mut contrib_eq);
        if lb_eq.is_infinite() {
            stats.keogh_eq_pruned += 1;
            continue;
        }
        // Tier 3: LB_Keogh EC.
        let lb_ec = lb_keogh_ec(&env_t, start, &pq, mean, std, bsf_sq, &mut contrib_ec);
        if lb_ec.is_infinite() {
            stats.keogh_ec_pruned += 1;
            continue;
        }
        // DTW with the cumulative bound of the tighter LB.
        let cb = if lb_eq >= lb_ec {
            cumulative_bound(&contrib_eq)
        } else {
            cumulative_bound(&contrib_ec)
        };
        onex_tseries::normalize::znorm_with_moments(&t[start..start + m], mean, std, &mut cand);
        stats.dtw_runs += 1;
        let d_sq = dtw_early_abandon_sq_with_cb(&pq.qz, &cand, band, bsf_sq, Some(&cb));
        if d_sq.is_infinite() {
            stats.dtw_abandoned += 1;
            continue;
        }
        if d_sq < bsf_sq {
            bsf_sq = accept(start, d_sq);
        }
    }
}

/// [`ucr_dtw_search`] seeded with an externally known best-so-far
/// (squared). Returns `None` when `t` is shorter than the query **or** no
/// window beats the seed. The dataset search threads its running best
/// through this, so pruning carries across series exactly as the original
/// single-sequence code carries it across windows.
pub fn ucr_dtw_search_with_bsf(
    t: &[f64],
    q: &[f64],
    cfg: &DtwSearchConfig,
    seed_bsf_sq: f64,
    stats: &mut SearchStats,
) -> Option<Hit> {
    let mut best: Option<(usize, f64)> = None;
    scan_dtw_windows(t, q, cfg, stats, seed_bsf_sq, &mut |start, d_sq| {
        best = Some((start, d_sq));
        d_sq
    });
    best.map(|(start, d_sq)| Hit {
        series: 0,
        start,
        distance: d_sq.sqrt(),
    })
}

/// Bounded best-k accumulator for multi-series top-k searches: the
/// shared [`BestK`] over `(series, start)` windows keyed by squared
/// distance, exposed as the pruning bound threaded through the shared
/// window scan.
#[derive(Debug)]
pub struct TopK {
    inner: BestK<(u32, usize)>,
}

impl TopK {
    /// Accumulator keeping the best `k` windows (`k` must be positive).
    pub fn new(k: usize) -> TopK {
        TopK {
            inner: BestK::new(k),
        }
    }

    /// Current pruning bound: the k-th best squared distance, or infinity
    /// while fewer than `k` windows have been kept.
    pub fn bound_sq(&self) -> f64 {
        self.inner.bound()
    }

    fn offer(&mut self, series: u32, start: usize, d_sq: f64) -> f64 {
        self.inner.offer(d_sq, (series, start))
    }

    /// The kept windows as [`Hit`]s, best first.
    pub fn into_hits(self) -> Vec<Hit> {
        self.inner
            .into_sorted()
            .into_iter()
            .map(|(d_sq, (series, start))| Hit {
                series,
                start,
                distance: d_sq.sqrt(),
            })
            .collect()
    }
}

/// Feed every window of `t` (labelled `series_id`) through the cascade
/// into a shared [`TopK`] accumulator. The accumulator's k-th best is the
/// pruning bound, so the cascade prunes exactly as hard as a k-best
/// search soundly can.
pub fn ucr_dtw_search_topk(
    t: &[f64],
    q: &[f64],
    cfg: &DtwSearchConfig,
    series_id: u32,
    acc: &mut TopK,
    stats: &mut SearchStats,
) {
    let bound = acc.bound_sq();
    scan_dtw_windows(t, q, cfg, stats, bound, &mut |start, d_sq| {
        acc.offer(series_id, start, d_sq)
    });
}

/// The `k` best z-normalised DTW windows across a whole dataset, best
/// first. Exact under the same argument as [`ucr_dtw_search`]: the bound
/// only ever prunes windows provably worse than the current k-th best.
pub fn ucr_dtw_search_dataset_topk(
    dataset: &Dataset,
    q: &[f64],
    cfg: &DtwSearchConfig,
    k: usize,
) -> (Vec<Hit>, SearchStats) {
    let mut acc = TopK::new(k);
    let mut stats = SearchStats::default();
    for (sid, series) in dataset.iter() {
        ucr_dtw_search_topk(series.values(), q, cfg, sid, &mut acc, &mut stats);
    }
    (acc.into_hits(), stats)
}

/// Run the UCR search over every series of a dataset (the collection form
/// ONEX is compared against in E5). The best-so-far threads across
/// series, so later series are pruned against the global best — the same
/// optimisation the original applies across windows.
pub fn ucr_dtw_search_dataset(
    dataset: &Dataset,
    q: &[f64],
    cfg: &DtwSearchConfig,
) -> Option<(Hit, SearchStats)> {
    let mut best: Option<Hit> = None;
    let mut stats = SearchStats::default();
    let mut bsf_sq = f64::INFINITY;
    for (sid, series) in dataset.iter() {
        if let Some(hit) = ucr_dtw_search_with_bsf(series.values(), q, cfg, bsf_sq, &mut stats) {
            bsf_sq = hit.distance * hit.distance;
            best = Some(Hit { series: sid, ..hit });
        }
    }
    best.map(|b| (b, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use onex_distance::dtw;
    use onex_distance::ed;

    /// Reference: exhaustive z-normalised scan without any pruning.
    fn brute_force(t: &[f64], q: &[f64], band: Band) -> (usize, f64) {
        let m = q.len();
        let qz = znorm(q);
        let mut best = (0usize, f64::INFINITY);
        for start in 0..=t.len() - m {
            let cz = znorm(&t[start..start + m]);
            let d = dtw(&qz, &cz, band);
            if d < best.1 {
                best = (start, d);
            }
        }
        best
    }

    fn toy_series(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic wiggle without pulling rand into the hot tests.
        (0..n)
            .map(|i| {
                let x = i as f64 + seed as f64;
                (x * 0.31).sin() * 2.0 + (x * 0.07).cos() + (x * 1.7).sin() * 0.3
            })
            .collect()
    }

    #[test]
    fn dtw_search_matches_brute_force() {
        let t = toy_series(300, 5);
        let q: Vec<f64> = t[140..160].iter().map(|v| v + 0.05).collect();
        let cfg = DtwSearchConfig { band_fraction: 0.1 };
        let (hit, stats) = ucr_dtw_search(&t, &q, &cfg).unwrap();
        let radius = (0.1f64 * q.len() as f64).ceil() as usize;
        let (bf_start, bf_dist) = brute_force(&t, &q, Band::SakoeChiba(radius));
        assert!(
            (hit.distance - bf_dist).abs() < 1e-9,
            "ucr {} vs brute {}",
            hit.distance,
            bf_dist
        );
        assert_eq!(hit.start, bf_start);
        assert_eq!(stats.candidates, t.len() - q.len() + 1);
    }

    #[test]
    fn dtw_search_various_bands_match_brute_force() {
        let t = toy_series(160, 11);
        let q = toy_series(24, 87);
        for frac in [0.0, 0.05, 0.2, 1.0] {
            let cfg = DtwSearchConfig {
                band_fraction: frac,
            };
            let (hit, _) = ucr_dtw_search(&t, &q, &cfg).unwrap();
            let radius = (frac * q.len() as f64).ceil() as usize;
            let (_, bf_dist) = brute_force(&t, &q, Band::SakoeChiba(radius));
            assert!(
                (hit.distance - bf_dist).abs() < 1e-9,
                "frac={frac}: {} vs {bf_dist}",
                hit.distance
            );
        }
    }

    #[test]
    fn exact_embedded_window_is_found() {
        let t = toy_series(400, 3);
        let q = t[250..280].to_vec();
        let (hit, _) = ucr_dtw_search(&t, &q, &DtwSearchConfig::default()).unwrap();
        assert!(hit.distance < 1e-9);
        assert_eq!(hit.start, 250);
    }

    #[test]
    fn ed_search_matches_brute_force() {
        let t = toy_series(250, 7);
        let q = toy_series(20, 99);
        let (hit, _) = ucr_ed_search(&t, &q).unwrap();
        let qz = znorm(&q);
        let mut best = f64::INFINITY;
        let mut best_start = 0;
        for start in 0..=t.len() - q.len() {
            let cz = znorm(&t[start..start + q.len()]);
            let d = ed(&qz, &cz);
            if d < best {
                best = d;
                best_start = start;
            }
        }
        assert!((hit.distance - best).abs() < 1e-9);
        assert_eq!(hit.start, best_start);
    }

    #[test]
    fn pruning_actually_fires() {
        let t = toy_series(2000, 1);
        let q = t[500..532].to_vec();
        let (_, stats) = ucr_dtw_search(&t, &q, &DtwSearchConfig::default()).unwrap();
        let pruned = stats.kim_pruned + stats.keogh_eq_pruned + stats.keogh_ec_pruned;
        assert!(
            pruned > stats.candidates / 2,
            "cascade should remove most candidates: {stats:?}"
        );
        assert!(stats.prune_rate() > 0.5);
    }

    #[test]
    fn rolling_moments_match_batch() {
        let t = toy_series(64, 2);
        let m = 16;
        let mut rolling = RollingMoments::new(&t, m);
        for start in 0..=t.len() - m {
            let (mean, std) = rolling.moments(start);
            let (bm, bs) = onex_tseries::stats::mean_std(&t[start..start + m]);
            assert!((mean - bm).abs() < 1e-9, "start={start}");
            assert!((std - bs).abs() < 1e-9, "start={start}");
        }
        // Re-prime after a jump.
        let mut jumping = RollingMoments::new(&t, m);
        let (m0, _) = jumping.moments(0);
        let (m40, _) = jumping.moments(40);
        let (bm0, _) = onex_tseries::stats::mean_std(&t[0..m]);
        let (bm40, _) = onex_tseries::stats::mean_std(&t[40..40 + m]);
        assert!((m0 - bm0).abs() < 1e-9);
        assert!((m40 - bm40).abs() < 1e-9);
    }

    #[test]
    fn constant_regions_do_not_explode() {
        let mut t = vec![3.0; 100];
        t[60] = 4.0; // one blip so the query is not degenerate everywhere
        let q = vec![1.0, 2.0, 3.0, 2.0, 1.0, 0.0, 1.0, 2.0];
        let (hit, _) = ucr_dtw_search(&t, &q, &DtwSearchConfig::default()).unwrap();
        assert!(hit.distance.is_finite());
        let (ed_hit, _) = ucr_ed_search(&t, &q).unwrap();
        assert!(ed_hit.distance.is_finite());
    }

    #[test]
    fn dataset_search_picks_the_best_series() {
        use onex_tseries::TimeSeries;
        let mut target = toy_series(120, 21);
        let planted = toy_series(30, 55);
        target.splice(50..80, planted.iter().copied());
        let ds = Dataset::from_series(vec![
            TimeSeries::new("noise", toy_series(120, 77)),
            TimeSeries::new("target", target),
        ])
        .unwrap();
        let (hit, stats) =
            ucr_dtw_search_dataset(&ds, &planted, &DtwSearchConfig::default()).unwrap();
        assert_eq!(hit.series, 1);
        assert_eq!(hit.start, 50);
        assert!(hit.distance < 1e-9);
        assert!(stats.candidates > 0);
    }

    #[test]
    fn seeded_search_semantics() {
        let t = toy_series(200, 4);
        let q = toy_series(20, 61);
        let (free, _) = ucr_dtw_search(&t, &q, &DtwSearchConfig::default()).unwrap();
        // Seed below the best distance: nothing beats it → None.
        let mut stats = SearchStats::default();
        let tight = (free.distance * 0.5).powi(2);
        assert!(
            ucr_dtw_search_with_bsf(&t, &q, &DtwSearchConfig::default(), tight, &mut stats)
                .is_none()
        );
        // Seed above: same hit as the unseeded search.
        let mut stats2 = SearchStats::default();
        let loose = (free.distance * 2.0).powi(2) + 1.0;
        let hit = ucr_dtw_search_with_bsf(&t, &q, &DtwSearchConfig::default(), loose, &mut stats2)
            .unwrap();
        assert_eq!(hit.start, free.start);
        assert!((hit.distance - free.distance).abs() < 1e-12);
        // Tighter seeds prune at least as hard.
        assert!(stats.dtw_runs <= stats2.dtw_runs);
    }

    #[test]
    fn dataset_shared_bsf_matches_independent_searches() {
        use onex_tseries::TimeSeries;
        let ds = Dataset::from_series(vec![
            TimeSeries::new("s0", toy_series(150, 31)),
            TimeSeries::new("s1", toy_series(150, 32)),
            TimeSeries::new("s2", toy_series(150, 33)),
        ])
        .unwrap();
        let q = toy_series(24, 91);
        let cfg = DtwSearchConfig::default();
        let (shared, _) = ucr_dtw_search_dataset(&ds, &q, &cfg).unwrap();
        // Reference: best over independent per-series searches.
        let mut best: Option<Hit> = None;
        for (sid, s) in ds.iter() {
            if let Some((h, _)) = ucr_dtw_search(s.values(), &q, &cfg) {
                if best.is_none_or(|b| h.distance < b.distance) {
                    best = Some(Hit { series: sid, ..h });
                }
            }
        }
        let best = best.unwrap();
        // The toy series embed bit-identical windows in several series, so
        // ties can break differently; the distances must agree exactly up
        // to rounding, and the shared hit must be one of the optima.
        assert!((shared.distance - best.distance).abs() < 1e-9);
        let (indep_hit, _) =
            ucr_dtw_search(ds.series(shared.series).unwrap().values(), &q, &cfg).unwrap();
        assert_eq!(
            indep_hit.start, shared.start,
            "shared hit is that series' optimum"
        );
    }

    #[test]
    fn topk_matches_brute_force_ranking() {
        use onex_tseries::TimeSeries;
        let ds = Dataset::from_series(vec![
            TimeSeries::new("s0", toy_series(140, 41)),
            TimeSeries::new("s1", toy_series(140, 42)),
        ])
        .unwrap();
        let q = toy_series(20, 71);
        let cfg = DtwSearchConfig { band_fraction: 0.1 };
        let k = 5;
        let (hits, stats) = ucr_dtw_search_dataset_topk(&ds, &q, &cfg, k);
        assert_eq!(hits.len(), k);
        assert!(stats.candidates > 0);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-12);
        }
        // Distinct windows.
        let set: std::collections::HashSet<(u32, usize)> =
            hits.iter().map(|h| (h.series, h.start)).collect();
        assert_eq!(set.len(), k);
        // Brute-force reference: every (series, start) window scored.
        let radius = (0.1f64 * q.len() as f64).ceil() as usize;
        let qz = znorm(&q);
        let mut all: Vec<(f64, u32, usize)> = Vec::new();
        for (sid, s) in ds.iter() {
            let t = s.values();
            for start in 0..=t.len() - q.len() {
                let cz = znorm(&t[start..start + q.len()]);
                all.push((dtw(&qz, &cz, Band::SakoeChiba(radius)), sid, start));
            }
        }
        all.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (hit, want) in hits.iter().zip(&all) {
            assert!(
                (hit.distance - want.0).abs() < 1e-9,
                "topk {} vs brute {}",
                hit.distance,
                want.0
            );
        }
        // k = 1 agrees with the dedicated best-match search.
        let (best, _) = ucr_dtw_search_dataset(&ds, &q, &cfg).unwrap();
        let (top1, _) = ucr_dtw_search_dataset_topk(&ds, &q, &cfg, 1);
        assert!((top1[0].distance - best.distance).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(
            ucr_dtw_search(&[1.0, 2.0], &[1.0, 2.0, 3.0], &DtwSearchConfig::default()).is_none()
        );
        assert!(ucr_dtw_search(&[1.0, 2.0], &[], &DtwSearchConfig::default()).is_none());
        assert!(ucr_ed_search(&[], &[1.0]).is_none());
        // Query length == series length: exactly one candidate.
        let t = toy_series(16, 9);
        let (hit, stats) = ucr_dtw_search(&t, &t.clone(), &DtwSearchConfig::default()).unwrap();
        assert_eq!(stats.candidates, 1);
        assert!(hit.distance < 1e-9);
    }
}
