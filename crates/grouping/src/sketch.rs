//! Quantised-PAA sketches over the base's members — the storage side of
//! the L0 prefilter tier.
//!
//! Every member of every similarity group gets a fixed-width
//! [`SKETCH_STRIDE`]-byte sketch ([`onex_distance::sketch`]) stored
//! contiguously per group, in member-slot order. The searcher walks a
//! group's slab linearly and rejects members whose sketch lower bound
//! already exceeds the pruning bound — before resolving any f64 data.
//!
//! Sketches are *derived* data — rebuildable from the dataset and
//! excluded from base equality — but since segment format v2 they are
//! also *persisted* (as verbatim slabs, see [`crate::persist`]), so a
//! loaded base prunes with L0 immediately instead of paying a rebuild.
//! Quantisation parameters are frozen per length the first time that
//! length is synced, so a sketch byte written once stays valid forever;
//! appended values that fall outside the frozen range simply encode as
//! non-pruning (invalid) sketches, keeping incremental extension sound
//! without requantising. Persisting the frozen parameters alongside the
//! slabs is what makes a save/load cycle byte-preserving.

use std::collections::BTreeMap;

use onex_distance::sketch::encode_into;
use onex_distance::{SketchParams, SKETCH_STRIDE};
use onex_tseries::Dataset;

use crate::SimilarityGroup;

/// Sketch storage for one subsequence length: frozen quantisation
/// parameters plus one contiguous byte slab per group.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthSketches {
    params: SketchParams,
    /// `groups[g]` holds `group.cardinality()` slots of
    /// [`SKETCH_STRIDE`] bytes each, parallel to `group.members()`.
    groups: Vec<Vec<u8>>,
}

impl LengthSketches {
    /// Reassemble from persisted parts ([`crate::persist`] format v2).
    pub(crate) fn from_parts(params: SketchParams, groups: Vec<Vec<u8>>) -> LengthSketches {
        LengthSketches { params, groups }
    }

    /// Quantisation parameters every sketch of this length was encoded
    /// under (frozen at first sync).
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// The contiguous sketch slab for group `index`
    /// (`cardinality × SKETCH_STRIDE` bytes), if synced.
    #[inline]
    pub fn group(&self, index: usize) -> Option<&[u8]> {
        self.groups.get(index).map(Vec::as_slice)
    }
}

/// All member sketches of a base, keyed by subsequence length.
///
/// Derived from the dataset + groups via [`SketchIndex::sync`]; cheap to
/// rebuild, append-only under incremental extension. Equality is
/// byte-exact over slabs and parameters — the property persistence
/// round-trip tests pin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SketchIndex {
    per_length: BTreeMap<usize, LengthSketches>,
}

impl SketchIndex {
    /// Sketches for one subsequence length, if that length has been
    /// synced.
    #[inline]
    pub fn for_len(&self, len: usize) -> Option<&LengthSketches> {
        self.per_length.get(&len)
    }

    /// True when no length has been synced yet.
    pub fn is_empty(&self) -> bool {
        self.per_length.is_empty()
    }

    /// Install persisted sketches for one length (format v2 load).
    pub(crate) fn insert(&mut self, len: usize, sketches: LengthSketches) {
        self.per_length.insert(len, sketches);
    }

    /// Bring the index up to date with `groups`: append sketch slots for
    /// members not yet covered, seed slabs for new groups and parameters
    /// for new lengths. Existing bytes are never rewritten — member lists
    /// only grow at the tail (admission order), so sync is incremental
    /// and idempotent.
    pub fn sync(&mut self, dataset: &Dataset, groups: &BTreeMap<usize, Vec<SimilarityGroup>>) {
        // The global value range is only needed when a new length shows
        // up; compute it lazily and at most once per sync.
        let mut range: Option<(f64, f64)> = None;
        let mut slot = [0u8; SKETCH_STRIDE];
        for (&len, group_list) in groups {
            let ls = self.per_length.entry(len).or_insert_with(|| {
                let (min, max) = *range.get_or_insert_with(|| value_range(dataset));
                LengthSketches {
                    params: SketchParams::fit(min, max),
                    groups: Vec::with_capacity(group_list.len()),
                }
            });
            if ls.groups.len() < group_list.len() {
                ls.groups.resize_with(group_list.len(), Vec::new);
            }
            for (gi, group) in group_list.iter().enumerate() {
                let slab = &mut ls.groups[gi];
                let done = slab.len() / SKETCH_STRIDE;
                if done >= group.cardinality() {
                    continue;
                }
                slab.reserve((group.cardinality() - done) * SKETCH_STRIDE);
                for &member in &group.members()[done..] {
                    // An unresolvable reference cannot happen on a
                    // consistent base; encode a non-pruning sketch so the
                    // slab stays slot-aligned regardless.
                    let values = dataset.resolve(member).unwrap_or(&[]);
                    encode_into(&ls.params, values, &mut slot);
                    slab.extend_from_slice(&slot);
                }
            }
        }
    }
}

/// Min/max over every sample of every series in the dataset, ignoring
/// non-finite values. Empty / all-non-finite datasets yield an inverted
/// range, which [`SketchParams::fit`] maps to safe degenerate parameters.
fn value_range(dataset: &Dataset) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (_, series) in dataset.iter() {
        for &v in series.values() {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
        }
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseBuilder, BaseConfig};
    use onex_tseries::TimeSeries;

    fn dataset(seriess: &[&[f64]]) -> Dataset {
        Dataset::from_series(
            seriess
                .iter()
                .enumerate()
                .map(|(i, v)| TimeSeries::new(format!("s{i}"), v.to_vec()))
                .collect(),
        )
        .unwrap()
    }

    fn walk(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.max(1);
        let mut v = 0.0;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                v += (state % 2000) as f64 / 1000.0 - 1.0;
                v
            })
            .collect()
    }

    #[test]
    fn sync_covers_every_member_and_is_idempotent() {
        let ds = dataset(&[&walk(3, 40), &walk(7, 33)]);
        let builder = BaseBuilder::new(BaseConfig::new(4.0, 6, 10)).unwrap();
        let (base, _) = builder.build(&ds);
        let mut idx = SketchIndex::default();
        idx.sync(&ds, base.raw_groups());
        for (&len, groups) in base.raw_groups() {
            let ls = idx.for_len(len).expect("length synced");
            for (gi, g) in groups.iter().enumerate() {
                let slab = ls.group(gi).expect("group synced");
                assert_eq!(slab.len(), g.cardinality() * SKETCH_STRIDE, "g{gi}@{len}");
            }
        }
        let before = idx.clone();
        idx.sync(&ds, base.raw_groups());
        for &len in base.raw_groups().keys() {
            let (a, b) = (before.for_len(len).unwrap(), idx.for_len(len).unwrap());
            assert_eq!(a.groups, b.groups, "idempotent at {len}");
        }
    }

    #[test]
    fn sketch_bounds_never_exceed_dtw_against_members() {
        use onex_distance::{dtw_sq, Band, Envelope, QuerySketch};
        let ds = dataset(&[&walk(11, 48)]);
        let builder = BaseBuilder::new(BaseConfig::new(2.0, 8, 8)).unwrap();
        let (base, _) = builder.build(&ds);
        let mut idx = SketchIndex::default();
        idx.sync(&ds, base.raw_groups());
        let query = walk(5, 8);
        let env = Envelope::build(&query, 2);
        let ls = idx.for_len(8).expect("length 8 indexed");
        let qs = QuerySketch::new(&query, &env, ls.params());
        for (gi, g) in base.raw_groups()[&8].iter().enumerate() {
            let slab = ls.group(gi).unwrap();
            for (slot, &m) in g.members().iter().enumerate() {
                let xs = ds.resolve(m).unwrap();
                let lb = qs.bound_sq(&slab[slot * SKETCH_STRIDE..(slot + 1) * SKETCH_STRIDE]);
                let d = dtw_sq(&query, xs, Band::SakoeChiba(2));
                assert!(
                    lb <= d + 1e-9 * d.abs().max(1.0),
                    "slot {slot} in g{gi}: lb={lb} > dtw={d}"
                );
            }
        }
    }

    #[test]
    fn params_freeze_and_new_members_append() {
        let ds1 = dataset(&[&walk(3, 30)]);
        let builder = BaseBuilder::new(BaseConfig::new(3.0, 5, 7)).unwrap();
        let (base1, _) = builder.build(&ds1);
        let mut idx = SketchIndex::default();
        idx.sync(&ds1, base1.raw_groups());
        let frozen = idx.for_len(5).unwrap().params();

        let ds2 = dataset(&[&walk(3, 30), &walk(9, 25)]);
        let (base2, _) = builder.extend(&base1, &ds2).unwrap();
        idx.sync(&ds2, base2.raw_groups());
        let after = idx.for_len(5).unwrap();
        assert_eq!(after.params(), frozen, "params frozen across extension");
        for (gi, g) in base2.raw_groups()[&5].iter().enumerate() {
            assert_eq!(
                after.group(gi).unwrap().len(),
                g.cardinality() * SKETCH_STRIDE
            );
        }
    }
}
