//! Pluggable nearest-representative lookup for base construction.
//!
//! [`crate::BaseBuilder`] assigns every subsequence to the nearest
//! existing group whose representative lies within the admission radius
//! (`ST/2`). The reference implementation is a linear scan over all
//! representatives — O(groups) per subsequence, O(n·groups) for a whole
//! construction run, which makes preprocessing the slowest path in the
//! system precisely when the base barely compacts (many groups). The
//! paper treats preprocessing as an interactive, one-click step
//! ("loading a new dataset triggers the preprocessing of this data at
//! the server side"), so this latency is user-facing.
//!
//! [`RepresentativeIndex`] abstracts the lookup so an exact metric index
//! ([`VpTreeIndex`]) can answer the same question in roughly logarithmic
//! time with **identical results**. The contract is exact, not
//! approximate: the winner is defined as the representative minimising
//! `(d², group id)` lexicographically among those with
//! `d² ≤ radius²`, where `d²` is the same floating-point sum the linear
//! scan computes (sequential accumulation, as in
//! [`onex_distance::ed::ed_sq`]). Every implementation must return that
//! winner, so construction through any index produces a byte-identical
//! base — the equivalence property tests in `tests/properties.rs` and
//! bench experiment E12 both check this.
//!
//! Which implementation runs is an execution decision, not a semantic
//! one, selected by [`IndexPolicy`] on [`crate::BaseConfig`].

use std::str::FromStr;

use onex_api::OnexError;
use onex_distance::ed::{ed_early_abandon_sq, ed_sq};

use crate::SimilarityGroup;

/// Work accounting for one construction run, mirroring the query-side
/// `onex_api::BackendStats` triple so construction effort can be compared
/// across index policies the same way query effort is compared across
/// backends. `examined` and `pruned` are disjoint: a representative is
/// either dismissed by an index bound before any distance computation
/// (pruned) or actually compared against (examined), never both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexWork {
    /// Representatives whose distance to a subsequence was computed
    /// (including early-abandoned comparisons, which still start the sum).
    pub examined: usize,
    /// Representatives dismissed by an index bound without starting a
    /// distance computation (subtrees cut by the triangle inequality).
    pub pruned: usize,
    /// Euclidean-distance evaluations started, including the index's own
    /// maintenance work (tree rebuilds), so policies are compared on
    /// total effort rather than lookup effort alone.
    pub distance_calls: usize,
}

impl std::ops::AddAssign for IndexWork {
    fn add_assign(&mut self, rhs: IndexWork) {
        self.examined += rhs.examined;
        self.pruned += rhs.pruned;
        self.distance_calls += rhs.distance_calls;
    }
}

/// How [`crate::BaseBuilder`] looks up the nearest representative during
/// construction. Every policy produces a byte-identical base; they differ
/// only in construction time and distance-call count (experiment E12
/// measures both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexPolicy {
    /// Decide per subsequence length: use the VP-tree when the length has
    /// enough subsequences to amortise tree maintenance, the linear scan
    /// otherwise. The default.
    #[default]
    Auto,
    /// Always scan every representative — the reference implementation.
    Linear,
    /// Always use the exact VP-tree index over representatives.
    VpTree,
}

/// Lengths with at least this many subsequences get the VP-tree under
/// [`IndexPolicy::Auto`]; below it the linear scan's lower constant wins.
const AUTO_MIN_SUBSEQUENCES: usize = 512;

impl IndexPolicy {
    /// Instantiate the index for one length, given how many nearest-
    /// representative lookups the builder expects to perform against it.
    pub(crate) fn create(self, expected_lookups: usize) -> Box<dyn RepresentativeIndex> {
        match self {
            IndexPolicy::Linear => Box::new(LinearScan),
            IndexPolicy::VpTree => Box::new(VpTreeIndex::new()),
            IndexPolicy::Auto => {
                if expected_lookups >= AUTO_MIN_SUBSEQUENCES {
                    Box::new(VpTreeIndex::new())
                } else {
                    Box::new(LinearScan)
                }
            }
        }
    }

    /// Stable lowercase name (`auto` / `linear` / `vptree`), the inverse
    /// of [`IndexPolicy::from_str`].
    pub fn label(&self) -> &'static str {
        match self {
            IndexPolicy::Auto => "auto",
            IndexPolicy::Linear => "linear",
            IndexPolicy::VpTree => "vptree",
        }
    }
}

impl std::fmt::Display for IndexPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for IndexPolicy {
    type Err = OnexError;

    /// Parse a policy name as accepted by the bench harness and server
    /// configuration (`auto`, `linear`, `vptree`).
    ///
    /// # Errors
    /// [`OnexError::InvalidConfig`] naming the offending value.
    fn from_str(s: &str) -> Result<Self, OnexError> {
        match s {
            "auto" => Ok(IndexPolicy::Auto),
            "linear" => Ok(IndexPolicy::Linear),
            "vptree" => Ok(IndexPolicy::VpTree),
            other => Err(OnexError::invalid_config(format!(
                "unknown index policy {other:?}; one of auto, linear, vptree"
            ))),
        }
    }
}

/// Nearest-representative lookup used by the builder's admission rule.
///
/// The contract every implementation must honour exactly:
///
/// * [`RepresentativeIndex::nearest_within`] returns the group whose
///   representative minimises `(d², group id)` lexicographically among
///   those with `d² ≤ radius_sq`, with `d²` computed by sequential
///   accumulation ([`onex_distance::ed::ed_sq`] semantics) — or `None`
///   when no representative is within the radius.
/// * The builder calls [`RepresentativeIndex::insert`] exactly once per
///   newly seeded group, with group ids issued densely from 0.
/// * The builder calls [`RepresentativeIndex::update`] after every
///   admission that moved a representative (the `Centroid` policy).
pub trait RepresentativeIndex {
    /// The nearest representative within `radius_sq` of `xs` (squared
    /// Euclidean), ties broken towards the lowest group id. `groups` is
    /// the builder's live group list (stateless implementations read
    /// representatives from it; stateful ones keep their own copies).
    fn nearest_within(
        &mut self,
        xs: &[f64],
        radius_sq: f64,
        groups: &[SimilarityGroup],
        work: &mut IndexWork,
    ) -> Option<(usize, f64)>;

    /// Register a newly seeded group.
    fn insert(&mut self, group: usize, representative: &[f64], work: &mut IndexWork);

    /// Note that a group's representative moved (centroid drift).
    fn update(&mut self, group: usize, representative: &[f64], work: &mut IndexWork);

    /// Register all of an existing base's groups at once (the incremental
    /// `extend` path); equivalent to `insert` in id order, but lets tree
    /// indexes bulk-load instead of trickling through their buffers.
    fn seed(&mut self, groups: &[SimilarityGroup], work: &mut IndexWork) {
        for (gi, g) in groups.iter().enumerate() {
            self.insert(gi, g.representative(), work);
        }
    }

    /// Stable implementation name for reports.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------
// Linear scan — the reference implementation.
// ---------------------------------------------------------------------

/// The reference lookup: scan every representative with an
/// early-abandoning ED whose bound tightens to the best candidate seen so
/// far. O(groups) per call; keeps no state of its own.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearScan;

impl RepresentativeIndex for LinearScan {
    fn nearest_within(
        &mut self,
        xs: &[f64],
        radius_sq: f64,
        groups: &[SimilarityGroup],
        work: &mut IndexWork,
    ) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        let mut bound_sq = radius_sq;
        for (gi, g) in groups.iter().enumerate() {
            work.examined += 1;
            work.distance_calls += 1;
            let d_sq = ed_early_abandon_sq(xs, g.representative(), bound_sq);
            if d_sq.is_finite() && best.is_none_or(|(_, b)| d_sq < b) {
                best = Some((gi, d_sq));
                bound_sq = d_sq;
            }
        }
        best
    }

    fn insert(&mut self, _group: usize, _representative: &[f64], _work: &mut IndexWork) {}

    fn update(&mut self, _group: usize, _representative: &[f64], _work: &mut IndexWork) {}

    fn name(&self) -> &'static str {
        "linear"
    }
}

// ---------------------------------------------------------------------
// VP-tree forest — exact metric index over representatives.
// ---------------------------------------------------------------------

/// Entries flushed from the buffer into a tree per batch.
const BUFFER_CAP: usize = 32;
/// Subtrees at most this large are stored flat and scanned directly.
const LEAF_CAP: usize = 16;

/// Safety margin added to triangle-inequality bounds so floating-point
/// rounding of the (near-exact) computed distances can never prune the
/// true winner. Costs a sliver of pruning power, buys byte-identical
/// equivalence with the linear scan.
fn slack(scale: f64) -> f64 {
    1e-9 * (scale.abs() + 1.0)
}

/// One indexed representative: the group it belongs to, a snapshot of the
/// representative's values at index time, and the version of that
/// snapshot. A snapshot is *live* while its version matches the group's
/// current version; centroid drift bumps the version, turning every older
/// snapshot stale (skipped by searches, dropped at the next rebuild).
#[derive(Debug, Clone)]
struct Entry {
    gid: u32,
    version: u32,
    rep: Vec<f64>,
}

#[derive(Debug)]
enum Node {
    Leaf(Vec<Entry>),
    Ball {
        vp: Entry,
        /// Entries in this subtree including the vantage point.
        size: usize,
        /// Distance bounds (root scale) from `vp` to the inside child.
        in_lo: f64,
        in_hi: f64,
        /// Distance bounds (root scale) from `vp` to the outside child.
        out_lo: f64,
        out_hi: f64,
        inside: Box<Node>,
        outside: Box<Node>,
    },
}

impl Node {
    fn size(&self) -> usize {
        match self {
            Node::Leaf(entries) => entries.len(),
            Node::Ball { size, .. } => *size,
        }
    }
}

/// An exact VP-tree index over group representatives.
///
/// Because representatives *move* under the `Centroid` policy and new
/// groups are seeded constantly, a single static tree would be rebuilt
/// into uselessness. Instead this is a small forest maintained with the
/// logarithmic (binary-counter) method: inserts and updates land in a
/// bounded buffer that is scanned linearly; when the buffer fills, it is
/// merged with every tree no larger than the batch and rebuilt into one
/// tree, so each entry participates in O(log n) rebuilds and a lookup
/// searches the buffer plus O(log n) trees. Stale snapshots (superseded
/// by centroid drift) are skipped during search and dropped at merges.
#[derive(Debug, Default)]
pub struct VpTreeIndex {
    trees: Vec<Node>,
    buffer: Vec<Entry>,
    /// Current snapshot version per group id.
    versions: Vec<u32>,
}

impl VpTreeIndex {
    /// An empty index.
    pub fn new() -> Self {
        VpTreeIndex::default()
    }

    fn upsert_buffer(&mut self, entry: Entry, work: &mut IndexWork) {
        if let Some(slot) = self.buffer.iter_mut().find(|b| b.gid == entry.gid) {
            *slot = entry;
            return;
        }
        self.buffer.push(entry);
        if self.buffer.len() >= BUFFER_CAP {
            self.flush(work);
        }
    }

    /// Merge the buffer with every tree it has outgrown and rebuild the
    /// union as one tree (the binary-counter step).
    fn flush(&mut self, work: &mut IndexWork) {
        let mut entries = std::mem::take(&mut self.buffer);
        while let Some(pos) = self.trees.iter().position(|t| t.size() <= entries.len()) {
            collect_live(self.trees.swap_remove(pos), &self.versions, &mut entries);
        }
        if !entries.is_empty() {
            self.trees.push(build_node(entries, work));
        }
    }
}

/// Drain a subtree, keeping only entries whose snapshot is still current.
fn collect_live(node: Node, versions: &[u32], out: &mut Vec<Entry>) {
    match node {
        Node::Leaf(entries) => {
            out.extend(
                entries
                    .into_iter()
                    .filter(|e| versions[e.gid as usize] == e.version),
            );
        }
        Node::Ball {
            vp,
            inside,
            outside,
            ..
        } => {
            if versions[vp.gid as usize] == vp.version {
                out.push(vp);
            }
            collect_live(*inside, versions, out);
            collect_live(*outside, versions, out);
        }
    }
}

fn build_node(mut entries: Vec<Entry>, work: &mut IndexWork) -> Node {
    if entries.len() <= LEAF_CAP {
        return Node::Leaf(entries);
    }
    let vp = entries.swap_remove(0);
    let mut dists: Vec<(f64, Entry)> = entries
        .into_iter()
        .map(|e| {
            work.distance_calls += 1;
            (ed_sq(&vp.rep, &e.rep).sqrt(), e)
        })
        .collect();
    let mid = dists.len() / 2;
    dists.select_nth_unstable_by(mid, |a, b| a.0.total_cmp(&b.0));
    let outside: Vec<(f64, Entry)> = dists.split_off(mid);
    let bounds = |part: &[(f64, Entry)]| {
        part.iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), (d, _)| {
                (lo.min(*d), hi.max(*d))
            })
    };
    let (in_lo, in_hi) = bounds(&dists);
    let (out_lo, out_hi) = bounds(&outside);
    let size = 1 + dists.len() + outside.len();
    Node::Ball {
        vp,
        size,
        in_lo,
        in_hi,
        out_lo,
        out_hi,
        inside: Box::new(build_node(
            dists.into_iter().map(|(_, e)| e).collect(),
            work,
        )),
        outside: Box::new(build_node(
            outside.into_iter().map(|(_, e)| e).collect(),
            work,
        )),
    }
}

/// Candidate acceptance with the linear scan's exact semantics: strictly
/// closer wins; at equal distance the lower group id wins (the linear
/// scan's first-hit-wins order).
fn offer(best: &mut Option<(usize, f64)>, radius_sq: f64, gid: usize, d_sq: f64) {
    let accepted = match best {
        None => d_sq <= radius_sq,
        Some((bg, b)) => d_sq < *b || (d_sq == *b && gid < *bg),
    };
    if accepted {
        *best = Some((gid, d_sq));
    }
}

fn search(
    node: &Node,
    xs: &[f64],
    radius_sq: f64,
    versions: &[u32],
    best: &mut Option<(usize, f64)>,
    work: &mut IndexWork,
) {
    let tau_sq = best.map_or(radius_sq, |(_, b)| b);
    match node {
        Node::Leaf(entries) => {
            for e in entries {
                if versions[e.gid as usize] != e.version {
                    continue; // superseded snapshot; its successor is elsewhere
                }
                work.examined += 1;
                work.distance_calls += 1;
                let bound_sq = best.map_or(radius_sq, |(_, b)| b);
                let d_sq = ed_early_abandon_sq(xs, &e.rep, bound_sq);
                if d_sq.is_finite() {
                    offer(best, radius_sq, e.gid as usize, d_sq);
                }
            }
        }
        Node::Ball {
            vp,
            size,
            in_lo,
            in_hi,
            out_lo,
            out_hi,
            inside,
            outside,
        } => {
            let tau = tau_sq.sqrt();
            // If the query is farther from the vantage point than every
            // stored distance plus the search radius, the triangle
            // inequality rules out the whole ball — abandon accordingly.
            let node_ub = in_hi.max(*out_hi) + tau;
            let node_ub = node_ub + slack(node_ub);
            work.distance_calls += 1;
            // A stale vantage point still navigates (its snapshot defines
            // the subtree geometry) but is not a live representative, so
            // it counts toward distance_calls only — keeping `examined`
            // and `pruned` disjoint over representatives, as documented.
            let vp_live = versions[vp.gid as usize] == vp.version;
            let d_sq = ed_early_abandon_sq(xs, &vp.rep, node_ub * node_ub);
            if !d_sq.is_finite() {
                if vp_live {
                    work.examined += 1; // comparison started, then abandoned
                }
                // The subtree (which may include a few stale snapshots) is
                // dismissed without any distance computation.
                work.pruned += size - 1;
                return;
            }
            if vp_live {
                work.examined += 1;
                if d_sq <= tau_sq {
                    offer(best, radius_sq, vp.gid as usize, d_sq);
                }
            }
            let d = d_sq.sqrt();
            let visit = |child: &Node,
                         lo: f64,
                         hi: f64,
                         best: &mut Option<(usize, f64)>,
                         work: &mut IndexWork| {
                let tau = best.map_or(radius_sq, |(_, b)| b).sqrt();
                // Lower bound on the distance from the query to anything
                // in the child, by the triangle inequality on d(·, vp).
                let lb = (d - hi).max(lo - d).max(0.0);
                if lb > tau + slack(tau.max(lb)) {
                    work.pruned += child.size();
                } else {
                    search(child, xs, radius_sq, versions, best, work);
                }
            };
            // Visit the side the query falls on first: it tightens the
            // bound before the far side is considered.
            if d <= (in_hi + out_lo) * 0.5 {
                visit(inside, *in_lo, *in_hi, best, work);
                visit(outside, *out_lo, *out_hi, best, work);
            } else {
                visit(outside, *out_lo, *out_hi, best, work);
                visit(inside, *in_lo, *in_hi, best, work);
            }
        }
    }
}

impl RepresentativeIndex for VpTreeIndex {
    fn nearest_within(
        &mut self,
        xs: &[f64],
        radius_sq: f64,
        _groups: &[SimilarityGroup],
        work: &mut IndexWork,
    ) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        // Buffer entries are always current versions.
        for e in &self.buffer {
            work.examined += 1;
            work.distance_calls += 1;
            let bound_sq = best.map_or(radius_sq, |(_, b)| b);
            let d_sq = ed_early_abandon_sq(xs, &e.rep, bound_sq);
            if d_sq.is_finite() {
                offer(&mut best, radius_sq, e.gid as usize, d_sq);
            }
        }
        for tree in &self.trees {
            search(tree, xs, radius_sq, &self.versions, &mut best, work);
        }
        best
    }

    fn insert(&mut self, group: usize, representative: &[f64], work: &mut IndexWork) {
        if self.versions.len() <= group {
            self.versions.resize(group + 1, 0);
        }
        self.upsert_buffer(
            Entry {
                gid: group as u32,
                version: self.versions[group],
                rep: representative.to_vec(),
            },
            work,
        );
    }

    fn update(&mut self, group: usize, representative: &[f64], work: &mut IndexWork) {
        self.versions[group] += 1;
        self.upsert_buffer(
            Entry {
                gid: group as u32,
                version: self.versions[group],
                rep: representative.to_vec(),
            },
            work,
        );
    }

    fn seed(&mut self, groups: &[SimilarityGroup], work: &mut IndexWork) {
        debug_assert!(
            self.versions.is_empty() && self.trees.is_empty() && self.buffer.is_empty(),
            "seed() is for freshly created indexes"
        );
        self.versions = vec![0; groups.len()];
        let entries: Vec<Entry> = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| Entry {
                gid: gi as u32,
                version: 0,
                rep: g.representative().to_vec(),
            })
            .collect();
        if !entries.is_empty() {
            self.trees.push(build_node(entries, work));
        }
    }

    fn name(&self) -> &'static str {
        "vptree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onex_tseries::SubseqRef;

    fn group(values: &[f64]) -> SimilarityGroup {
        SimilarityGroup::seed(SubseqRef::new(0, 0, values.len() as u32), values)
    }

    /// Deterministic pseudo-random vector stream (SplitMix64).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
        }
        fn vec(&mut self, len: usize, scale: f64) -> Vec<f64> {
            (0..len).map(|_| (self.next() - 0.5) * scale).collect()
        }
    }

    /// Drive both implementations through an identical randomized
    /// insert/update/query schedule and demand identical answers.
    fn equivalence_drill(len: usize, scale: f64, radius: f64, seed: u64, centroid_rate: f64) {
        let mut rng = Rng(seed);
        let mut groups: Vec<SimilarityGroup> = Vec::new();
        let mut linear = LinearScan;
        let mut tree = VpTreeIndex::new();
        let mut lw = IndexWork::default();
        let mut tw = IndexWork::default();
        let radius_sq = radius * radius;
        for step in 0..600 {
            let xs = rng.vec(len, scale);
            let a = linear.nearest_within(&xs, radius_sq, &groups, &mut lw);
            let b = tree.nearest_within(&xs, radius_sq, &groups, &mut tw);
            assert_eq!(a, b, "step {step}: linear {a:?} vs vptree {b:?}");
            match a {
                Some((gi, d_sq)) => {
                    let centroid = rng.next() < centroid_rate;
                    groups[gi].admit(
                        SubseqRef::new(1, step, len as u32),
                        &xs,
                        d_sq.sqrt(),
                        centroid,
                    );
                    if centroid {
                        let rep = groups[gi].representative().to_vec();
                        linear.update(gi, &rep, &mut lw);
                        tree.update(gi, &rep, &mut tw);
                    }
                }
                None => {
                    groups.push(group(&xs));
                    let gi = groups.len() - 1;
                    linear.insert(gi, &xs, &mut lw);
                    tree.insert(gi, &xs, &mut tw);
                }
            }
        }
        assert!(groups.len() > 5, "drill must exercise many groups");
        assert!(
            tw.examined < lw.examined,
            "tree must prune: examined {} vs linear {}",
            tw.examined,
            lw.examined
        );
    }

    #[test]
    fn vptree_matches_linear_with_frozen_representatives() {
        equivalence_drill(16, 8.0, 1.0, 7, 0.0);
    }

    #[test]
    fn vptree_matches_linear_under_centroid_drift() {
        equivalence_drill(12, 4.0, 1.5, 99, 1.0);
    }

    #[test]
    fn vptree_matches_linear_with_generous_radius() {
        // Generous radius: most lookups hit, reps drift constantly.
        equivalence_drill(8, 12.0, 4.0, 1234, 0.7);
    }

    #[test]
    fn ties_go_to_the_lowest_group_id() {
        let rep = vec![1.0, 2.0, 3.0, 4.0];
        let groups = vec![group(&[9.0; 4]), group(&rep), group(&rep)];
        let mut work = IndexWork::default();
        let mut tree = VpTreeIndex::new();
        for (gi, g) in groups.iter().enumerate() {
            tree.insert(gi, g.representative(), &mut work);
        }
        let query = vec![1.0, 2.0, 3.0, 4.5];
        let got = tree.nearest_within(&query, 1.0, &groups, &mut work);
        let want = LinearScan.nearest_within(&query, 1.0, &groups, &mut work);
        assert_eq!(got, want);
        assert_eq!(got.unwrap().0, 1, "equal distances resolve to lower id");
    }

    #[test]
    fn seeded_index_equals_incremental_inserts() {
        let mut rng = Rng(5);
        let groups: Vec<SimilarityGroup> = (0..200).map(|_| group(&rng.vec(10, 6.0))).collect();
        let mut work = IndexWork::default();
        let mut seeded = VpTreeIndex::new();
        seeded.seed(&groups, &mut work);
        let mut trickled = VpTreeIndex::new();
        for (gi, g) in groups.iter().enumerate() {
            trickled.insert(gi, g.representative(), &mut work);
        }
        for _ in 0..50 {
            let q = rng.vec(10, 6.0);
            let mut w1 = IndexWork::default();
            let mut w2 = IndexWork::default();
            assert_eq!(
                seeded.nearest_within(&q, 4.0, &groups, &mut w1),
                trickled.nearest_within(&q, 4.0, &groups, &mut w2)
            );
        }
    }

    #[test]
    fn out_of_radius_returns_none() {
        let groups = vec![group(&[100.0; 6])];
        let mut tree = VpTreeIndex::new();
        let mut work = IndexWork::default();
        tree.insert(0, groups[0].representative(), &mut work);
        assert_eq!(
            tree.nearest_within(&[0.0; 6], 1.0, &groups, &mut work),
            None
        );
        assert_eq!(
            LinearScan.nearest_within(&[0.0; 6], 1.0, &groups, &mut work),
            None
        );
    }

    #[test]
    fn empty_index_returns_none() {
        let mut work = IndexWork::default();
        assert_eq!(
            VpTreeIndex::new().nearest_within(&[1.0, 2.0], 10.0, &[], &mut work),
            None
        );
        assert_eq!(
            LinearScan.nearest_within(&[1.0, 2.0], 10.0, &[], &mut work),
            None
        );
    }

    #[test]
    fn policy_parsing_round_trips_and_rejects_garbage() {
        for p in [IndexPolicy::Auto, IndexPolicy::Linear, IndexPolicy::VpTree] {
            assert_eq!(p.label().parse::<IndexPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), p.label());
        }
        assert!(matches!(
            "grid".parse::<IndexPolicy>(),
            Err(OnexError::InvalidConfig(_))
        ));
    }

    #[test]
    fn auto_policy_picks_by_expected_lookups() {
        assert_eq!(IndexPolicy::Auto.create(10_000).name(), "vptree");
        assert_eq!(IndexPolicy::Auto.create(10).name(), "linear");
        assert_eq!(IndexPolicy::Linear.create(10_000).name(), "linear");
        assert_eq!(IndexPolicy::VpTree.create(10).name(), "vptree");
    }

    #[test]
    fn work_accounting_accumulates() {
        let mut a = IndexWork {
            examined: 1,
            pruned: 2,
            distance_calls: 3,
        };
        a += IndexWork {
            examined: 10,
            pruned: 20,
            distance_calls: 30,
        };
        assert_eq!(
            a,
            IndexWork {
                examined: 11,
                pruned: 22,
                distance_calls: 33
            }
        );
    }
}
