//! # onex-grouping — the ONEX base
//!
//! The paper's primary contribution (§3.1): *"We first group subsequences
//! of the same length that are similar using the ubiquitous and
//! inexpensive Euclidean Distance into so called 'ONEX similarity groups'.
//! We then summarize these groups by their centroid […] Our construction
//! methodology insures that these similarity groups contain sequences that
//! are similar to each other within the similarity threshold ST, while
//! each sequence is similar to the representative within half of the
//! similarity threshold."*
//!
//! This crate implements exactly that:
//!
//! * [`SubsequenceSpace`] enumerates every subsequence of a dataset for a
//!   configurable length range and stride — the space the base compacts.
//! * [`SimilarityGroup`] is one group: a representative sequence, member
//!   references, and spread statistics.
//! * [`BaseBuilder`] constructs the base online: each subsequence joins the
//!   nearest group of its length when the representative is within `ST/2`
//!   (Euclidean), otherwise it seeds a new group. Sequential,
//!   length-parallel (crossbeam) and incremental construction all run the
//!   same admission rule and produce identical bases.
//! * [`RepresentativeIndex`] ([`repindex`]) is the pluggable
//!   nearest-representative lookup behind that admission rule: the
//!   [`LinearScan`] reference or the exact [`VpTreeIndex`], selected by
//!   [`BaseConfig::index`] ([`IndexPolicy`]) — byte-identical results,
//!   orders of magnitude fewer distance computations when the base
//!   barely compacts.
//! * [`OnexBase`] is the finished index: groups per length, compaction
//!   statistics, invariant auditing, and a versioned binary persistence
//!   format ([`persist`]).
//! * [`SketchIndex`] ([`sketch`]) carries a quantised-PAA sketch per
//!   member — the L0 prefilter tier the query engine consults before
//!   touching any f64 data. Derived and rebuildable; persistence format
//!   v2 additionally stores the slabs verbatim so a loaded base prunes
//!   immediately.
//!
//! The `ST/2` insert rule plus the Euclidean triangle inequality yield the
//! paper's pairwise guarantee: two members of one group are within `ST` of
//! each other. With the [`RepresentativePolicy::Seed`] policy this holds
//! *exactly*; with the paper's centroid policy the representative drifts
//! as it averages members, so the guarantee is approximate — the base can
//! audit itself ([`OnexBase::audit`]) and experiment E9 measures the
//! trade-off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod base;
mod builder;
mod config;
mod group;
pub mod persist;
pub mod repindex;
pub mod sketch;
mod space;

pub use base::{AuditReport, BaseStats, LengthStats, OnexBase};
pub use builder::{BaseBuilder, BuildReport};
pub use config::{BaseConfig, RepresentativePolicy};
pub use group::{GroupId, SimilarityGroup};
pub use repindex::{IndexPolicy, IndexWork, LinearScan, RepresentativeIndex, VpTreeIndex};
pub use sketch::{LengthSketches, SketchIndex};
pub use space::SubsequenceSpace;
