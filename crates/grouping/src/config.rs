use onex_api::OnexError;

use crate::IndexPolicy;

/// How a group's representative evolves as members join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepresentativePolicy {
    /// The representative is the arithmetic mean of all members — the
    /// paper's definition ("summarize these groups by their centroid, or
    /// the average of all sequences in each group"). The `ST/2` membership
    /// test is applied against the *evolving* centroid, so the invariant
    /// "every member within `ST/2` of the representative" can drift
    /// slightly; [`crate::OnexBase::audit`] quantifies by how much.
    #[default]
    Centroid,
    /// The representative is the first member, frozen. The `ST/2` test is
    /// then exact for every member forever, making the pairwise-`ST`
    /// guarantee unconditional. Groups are slightly less central, queries
    /// slightly less accurate — the ablation experiment E9 measures this.
    Seed,
}

/// Configuration of a base construction run.
///
/// Equality compares the *semantic* fields only: [`BaseConfig::index`]
/// selects how the nearest representative is looked up during
/// construction, and every index policy produces a byte-identical base,
/// so two configs differing only in `index` are interchangeable (a base
/// built with one can be extended under the other, and persistence does
/// not record the policy).
#[derive(Debug, Clone)]
pub struct BaseConfig {
    /// The similarity threshold `ST`. When [`Self::length_normalized`] is
    /// true (default), `st` is a *per-sample RMS* threshold: a subsequence
    /// of length `ℓ` joins a group when its raw Euclidean distance to the
    /// representative is at most `(st/2)·√ℓ`. This makes one threshold
    /// meaningful across lengths, which is how ONEX offers a single knob
    /// over a multi-length base. When false, `st` is a raw Euclidean
    /// threshold applied identically at every length.
    pub st: f64,
    /// Smallest subsequence length indexed (≥ 2).
    pub min_len: usize,
    /// Largest subsequence length indexed (inclusive; clamped per series).
    pub max_len: usize,
    /// Stride between candidate start offsets (1 = every subsequence).
    /// Larger strides trade recall for construction time on long series;
    /// the electricity experiments use hour-aligned strides.
    pub stride: usize,
    /// Representative evolution policy.
    pub policy: RepresentativePolicy,
    /// Interpret `st` per-sample (see [`Self::st`]).
    pub length_normalized: bool,
    /// Nearest-representative lookup strategy used during construction
    /// (see [`IndexPolicy`]). An execution choice, not a semantic one:
    /// results are identical across policies, only construction time and
    /// distance-call counts differ. Excluded from equality.
    pub index: IndexPolicy,
}

impl PartialEq for BaseConfig {
    fn eq(&self, other: &Self) -> bool {
        self.st == other.st
            && self.min_len == other.min_len
            && self.max_len == other.max_len
            && self.stride == other.stride
            && self.policy == other.policy
            && self.length_normalized == other.length_normalized
    }
}

impl BaseConfig {
    /// A config with the given threshold and length range, defaults
    /// elsewhere.
    pub fn new(st: f64, min_len: usize, max_len: usize) -> Self {
        BaseConfig {
            st,
            min_len,
            max_len,
            stride: 1,
            policy: RepresentativePolicy::default(),
            length_normalized: true,
            index: IndexPolicy::default(),
        }
    }

    /// The raw-Euclidean group admission radius (`ST/2`, scaled) for
    /// subsequences of length `len`.
    pub fn admission_radius(&self, len: usize) -> f64 {
        let half = self.st / 2.0;
        if self.length_normalized {
            half * (len as f64).sqrt()
        } else {
            half
        }
    }

    /// The raw-Euclidean pairwise guarantee (`ST`, scaled) for length
    /// `len`: two members of one group are within this of each other
    /// (exact under [`RepresentativePolicy::Seed`]).
    pub fn pairwise_threshold(&self, len: usize) -> f64 {
        2.0 * self.admission_radius(len)
    }

    /// Validate the configuration, returning
    /// [`OnexError::InvalidConfig`] describing the first problem found.
    pub fn validate(&self) -> Result<(), OnexError> {
        if !self.st.is_finite() || self.st <= 0.0 {
            return Err(OnexError::invalid_config(format!(
                "similarity threshold must be positive, got {}",
                self.st
            )));
        }
        if self.min_len < 2 {
            return Err(OnexError::invalid_config(format!(
                "min_len must be at least 2, got {}",
                self.min_len
            )));
        }
        if self.max_len < self.min_len {
            return Err(OnexError::invalid_config(format!(
                "max_len ({}) must be at least min_len ({})",
                self.max_len, self.min_len
            )));
        }
        if self.stride == 0 {
            return Err(OnexError::invalid_config("stride must be positive"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_radius_scales_with_length() {
        let cfg = BaseConfig::new(1.0, 2, 100);
        assert!((cfg.admission_radius(4) - 1.0).abs() < 1e-12); // 0.5·√4
        assert!((cfg.admission_radius(100) - 5.0).abs() < 1e-12);
        assert!((cfg.pairwise_threshold(4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn raw_threshold_ignores_length() {
        let cfg = BaseConfig {
            length_normalized: false,
            ..BaseConfig::new(3.0, 2, 10)
        };
        assert_eq!(cfg.admission_radius(4), 1.5);
        assert_eq!(cfg.admission_radius(100), 1.5);
    }

    #[test]
    fn index_policy_is_an_execution_detail_not_a_semantic_one() {
        let linear = BaseConfig {
            index: IndexPolicy::Linear,
            ..BaseConfig::new(1.0, 4, 8)
        };
        let vptree = BaseConfig {
            index: IndexPolicy::VpTree,
            ..BaseConfig::new(1.0, 4, 8)
        };
        assert_eq!(linear, vptree, "index policy excluded from equality");
        assert_ne!(
            linear,
            BaseConfig::new(2.0, 4, 8),
            "semantic fields still compared"
        );
        assert!(linear.validate().is_ok() && vptree.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(BaseConfig::new(1.0, 4, 8).validate().is_ok());
        assert!(BaseConfig::new(0.0, 4, 8).validate().is_err());
        assert!(BaseConfig::new(-1.0, 4, 8).validate().is_err());
        assert!(BaseConfig::new(f64::NAN, 4, 8).validate().is_err());
        assert!(BaseConfig::new(1.0, 1, 8).validate().is_err());
        assert!(BaseConfig::new(1.0, 8, 4).validate().is_err());
        let zero_stride = BaseConfig {
            stride: 0,
            ..BaseConfig::new(1.0, 4, 8)
        };
        assert!(zero_stride.validate().is_err());
    }
}
