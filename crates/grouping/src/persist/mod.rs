//! Versioned binary persistence for the ONEX base.
//!
//! The demo loads a dataset once ("with a click of a button") and
//! explores it across many sessions, so the expensive construction
//! result must be reusable. Two formats exist:
//!
//! * **v1** (magic `ONEXBASE`) — the original variable-stride
//!   little-endian stream with one trailing FNV-1a checksum. Still
//!   written by [`save`] and always readable, but loading is
//!   O(collection): every group must be decoded and allocated before
//!   the first query.
//! * **v2** (magic `ONEXSEG2`) — the segment format built on
//!   [`onex_storage`]: page-aligned sections (config, per-length
//!   tables, group records, representative columns, member tables, L0
//!   sketch slabs), fixed strides, per-section checksums. Opening a v2
//!   file ([`BaseSegment::open`]) validates everything but decodes
//!   nothing; columns are resolved lazily per length
//!   ([`BaseSegment::load_length`]), which is what makes
//!   `Onex::open`'s cold start O(first query) instead of
//!   O(collection). v2 also persists the L0 sketch slabs verbatim
//!   (with their frozen [`onex_distance::SketchParams`]) so a loaded
//!   base prunes immediately instead of re-encoding every member.
//!
//! [`load`] sniffs the magic and accepts either format. All errors are
//! the workspace-typed [`OnexError`]: [`OnexError::Io`] when the disk
//! fails, [`OnexError::Storage`] when the bytes are wrong.
//!
//! Both decoders obey the same never-allocate-on-hostile-input rule
//! `onex_net` enforces on frames: every file-declared count is
//! validated against the bytes that could back it *before* it sizes an
//! allocation, and checksums are verified before any content-driven
//! decode begins.
//!
//! The group spread statistics (mean insert distance) are intentionally
//! not persisted — they are diagnostics, and [`crate::SimilarityGroup`]
//! documents the reconstruction as lossy for that field.

use std::io::{Read, Write};
use std::path::Path;

use onex_api::{OnexError, StorageErrorKind};

use crate::OnexBase;

mod v1;
mod v2;

pub use v2::{
    save_v2, save_v2_file, section_name, BaseSegment, SEC_CONFIG, SEC_GROUPS, SEC_LENGTHS,
    SEC_MEMBERS, SEC_REPS, SEC_SKETCHES,
};

/// Serialise a base to a writer in format **v1** (the compatibility
/// stream every ONEX build can read). Prefer [`save_v2`] for new files.
///
/// # Errors
/// [`OnexError::Io`] if writing fails.
pub fn save<W: Write>(base: &OnexBase, w: W) -> Result<(), OnexError> {
    v1::save(base, w)
}

/// Deserialise a base from a reader, accepting either format (the
/// magic bytes decide).
///
/// # Errors
/// [`OnexError::Io`] if reading fails; [`OnexError::Storage`] if the
/// bytes are not a valid base file of a readable version.
pub fn load<R: Read>(mut r: R) -> Result<OnexBase, OnexError> {
    let mut all = Vec::new();
    r.read_to_end(&mut all)?;
    load_bytes(all)
}

/// [`load`] over an owned buffer (what `LoadBase` hands a shard).
///
/// # Errors
/// [`OnexError::Storage`] if the bytes are not a valid base file.
pub fn load_bytes(all: Vec<u8>) -> Result<OnexBase, OnexError> {
    match all.get(..8) {
        Some(m) if m == v1::MAGIC => v1::decode(&all),
        Some(m) if m == onex_storage::MAGIC => BaseSegment::from_bytes(all)?.load_all(),
        _ => Err(OnexError::storage(
            StorageErrorKind::BadMagic,
            "not an ONEX base file (neither ONEXBASE nor ONEXSEG2)",
        )),
    }
}

/// Save to a file path (format v1 — see [`save`]).
///
/// # Errors
/// [`OnexError::Io`] if the file cannot be created or written.
pub fn save_file(base: &OnexBase, path: impl AsRef<Path>) -> Result<(), OnexError> {
    let f = std::fs::File::create(path)?;
    save(base, std::io::BufWriter::new(f))
}

/// Load from a file path, accepting either format.
///
/// # Errors
/// See [`load`].
pub fn load_file(path: impl AsRef<Path>) -> Result<OnexBase, OnexError> {
    load_bytes(std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseBuilder, BaseConfig};
    use onex_api::StorageError;
    use onex_tseries::gen::{random_walk_dataset, SyntheticConfig};

    pub(super) fn sample_base() -> OnexBase {
        let ds = random_walk_dataset(SyntheticConfig {
            series: 5,
            len: 30,
            seed: 13,
        });
        let (mut b, _) = BaseBuilder::new(BaseConfig::new(1.0, 5, 12))
            .unwrap()
            .build(&ds);
        b.sync_sketches(&ds);
        b
    }

    pub(super) fn to_bytes(b: &OnexBase) -> Vec<u8> {
        let mut out = Vec::new();
        save(b, &mut out).unwrap();
        out
    }

    pub(super) fn kind_of(err: OnexError) -> StorageErrorKind {
        match err {
            OnexError::Storage(StorageError { kind, .. }) => kind,
            other => panic!("expected a storage error, got {other}"),
        }
    }

    #[test]
    fn load_sniffs_both_formats() {
        let base = sample_base();
        let v1 = to_bytes(&base);
        let v2 = save_v2(&base);
        assert_eq!(&v1[..8], v1::MAGIC);
        assert_eq!(&v2[..8], &onex_storage::MAGIC);
        assert_eq!(load(v1.as_slice()).unwrap(), base);
        assert_eq!(load(v2.as_slice()).unwrap(), base);
    }

    #[test]
    fn rejects_foreign_magic_and_empty_input() {
        let err = load(&b"PNG\x0d\x0a\x1a\x0aXXXX"[..]).unwrap_err();
        assert_eq!(kind_of(err), StorageErrorKind::BadMagic);
        assert_eq!(
            kind_of(load(&[][..]).unwrap_err()),
            StorageErrorKind::BadMagic
        );
    }

    #[test]
    fn file_round_trip_both_formats() {
        let dir = std::env::temp_dir().join("onex_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = sample_base();

        let p1 = dir.join("base_v1.onex");
        save_file(&base, &p1).unwrap();
        assert_eq!(load_file(&p1).unwrap().stats(), base.stats());
        std::fs::remove_file(&p1).ok();

        let p2 = dir.join("base_v2.onex");
        save_v2_file(&base, &p2).unwrap();
        assert_eq!(load_file(&p2).unwrap().stats(), base.stats());
        std::fs::remove_file(&p2).ok();
    }
}
