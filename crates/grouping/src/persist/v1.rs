//! Format **v1**: the original variable-stride stream.
//!
//! ```text
//! magic  b"ONEXBASE"                        8 bytes
//! version u32                               (currently 1)
//! payload:
//!   config: st f64, min/max_len u32, stride u32, policy u8, normalized u8
//!   source_series u32
//!   n_lengths u32
//!   per length:
//!     len u32, n_groups u32
//!     per group:
//!       representative: len × f64
//!       radius f64
//!       n_members u32, members: (series u32, start u32) …
//! checksum u64 (FNV-1a over the payload bytes)
//! ```
//!
//! The checksum is verified **before** decoding begins, and every
//! count-driven decode step is bounds-checked against the remaining
//! payload before it sizes an allocation ([`Reader::counted`]) — a file
//! that declares four billion members cannot make the loader reserve
//! four billion slots, whether or not its checksum happens to match.

use std::collections::BTreeMap;
use std::io::Write;

use onex_api::{OnexError, StorageErrorKind};
use onex_storage::{fnv1a64, Reader};
use onex_tseries::SubseqRef;

use crate::{BaseConfig, OnexBase, RepresentativePolicy, SimilarityGroup};

pub(super) const MAGIC: &[u8; 8] = b"ONEXBASE";
const VERSION: u32 = 1;

fn corrupt(msg: impl Into<String>) -> OnexError {
    OnexError::storage(
        StorageErrorKind::Corrupt,
        format!("v1 base: {}", msg.into()),
    )
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Serialise a base as a v1 stream.
pub(super) fn save<W: Write>(base: &OnexBase, mut w: W) -> Result<(), OnexError> {
    let mut enc = Enc::new();
    let cfg = base.config();
    enc.f64(cfg.st);
    enc.u32(cfg.min_len as u32);
    enc.u32(cfg.max_len as u32);
    enc.u32(cfg.stride as u32);
    enc.u8(match cfg.policy {
        RepresentativePolicy::Centroid => 0,
        RepresentativePolicy::Seed => 1,
    });
    enc.u8(cfg.length_normalized as u8);
    enc.u32(base.source_series() as u32);

    let lengths: Vec<usize> = base.lengths().collect();
    enc.u32(lengths.len() as u32);
    for len in lengths {
        let groups = base.groups_for_len(len);
        enc.u32(len as u32);
        enc.u32(groups.len() as u32);
        for g in groups {
            debug_assert_eq!(g.representative().len(), len);
            for &v in g.representative() {
                enc.f64(v);
            }
            enc.f64(g.radius());
            enc.u32(g.members().len() as u32);
            for m in g.members() {
                enc.u32(m.series);
                enc.u32(m.start);
            }
        }
    }

    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&enc.buf)?;
    w.write_all(&fnv1a64(&enc.buf).to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Decode a complete v1 file image (magic already sniffed by the
/// caller, but re-checked here).
pub(super) fn decode(all: &[u8]) -> Result<OnexBase, OnexError> {
    if all.len() < MAGIC.len() + 4 + 8 {
        return Err(corrupt("file too short"));
    }
    if &all[..8] != MAGIC {
        return Err(OnexError::storage(
            StorageErrorKind::BadMagic,
            "not a v1 ONEX base file",
        ));
    }
    let version = u32::from_le_bytes(all[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(OnexError::storage(
            StorageErrorKind::UnsupportedVersion,
            format!("v1 reader cannot decode base version {version}"),
        ));
    }
    let payload = &all[12..all.len() - 8];
    let expected = u64::from_le_bytes(all[all.len() - 8..].try_into().expect("8 bytes"));
    let actual = fnv1a64(payload);
    if expected != actual {
        return Err(OnexError::storage(
            StorageErrorKind::ChecksumMismatch,
            format!("file says {expected:#018x}, content is {actual:#018x}"),
        ));
    }

    let mut r = Reader::new(payload, "v1 base");
    let st = r.f64()?;
    let min_len = r.u32()? as usize;
    let max_len = r.u32()? as usize;
    let stride = r.u32()? as usize;
    let policy = match r.u8()? {
        0 => RepresentativePolicy::Centroid,
        1 => RepresentativePolicy::Seed,
        other => {
            return Err(corrupt(format!(
                "unknown representative policy tag {other}"
            )))
        }
    };
    let length_normalized = match r.u8()? {
        0 => false,
        1 => true,
        other => {
            return Err(corrupt(format!(
                "bad boolean tag {other} for length_normalized"
            )))
        }
    };
    let config = BaseConfig {
        st,
        min_len,
        max_len,
        stride,
        policy,
        length_normalized,
        // The lookup strategy is an execution hint, not part of the base's
        // semantics — it is not persisted and defaults on load.
        index: crate::IndexPolicy::default(),
    };
    config
        .validate()
        .map_err(|e| corrupt(format!("invalid config: {e}")))?;
    let source_series = r.u32()? as usize;

    // Minimum bytes one length record / one group can occupy — the
    // units `counted` validates declared counts against.
    let n_lengths = r.counted(4 + 4)?;
    let mut groups = BTreeMap::new();
    for _ in 0..n_lengths {
        let len = r.u32()? as usize;
        if len < 1 {
            return Err(corrupt("zero group length"));
        }
        let rep_bytes = len
            .checked_mul(8)
            .ok_or_else(|| corrupt("length overflows"))?;
        // Smallest possible group: representative + radius + member
        // count + one member.
        let n_groups = r.counted(rep_bytes + 8 + 4 + 8)?;
        let mut gs = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let rep: Vec<f64> = r
                .take(rep_bytes)?
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            let radius = r.f64()?;
            let n_members = r.counted(8)?;
            if n_members == 0 {
                return Err(corrupt("empty group"));
            }
            let members: Vec<SubseqRef> = r
                .take(n_members * 8)?
                .chunks_exact(8)
                .map(|c| {
                    let series = u32::from_le_bytes(c[..4].try_into().expect("4 bytes"));
                    let start = u32::from_le_bytes(c[4..].try_into().expect("4 bytes"));
                    SubseqRef::new(series, start, len as u32)
                })
                .collect();
            gs.push(SimilarityGroup::from_parts(rep, members, radius));
        }
        if groups.insert(len, gs).is_some() {
            return Err(corrupt(format!("duplicate length {len}")));
        }
    }
    r.finish()?;
    Ok(OnexBase::from_parts(config, groups, source_series))
}

#[cfg(test)]
mod tests {
    use super::super::tests::{kind_of, sample_base, to_bytes};
    use super::*;
    use crate::persist::load;

    #[test]
    fn round_trip_preserves_structure() {
        let base = sample_base();
        let bytes = to_bytes(&base);
        let back = load(bytes.as_slice()).unwrap();
        assert_eq!(back.config(), base.config());
        assert_eq!(back.source_series(), base.source_series());
        assert_eq!(back.stats(), base.stats());
        for (id, g) in base.iter() {
            let g2 = back.group(id).unwrap();
            assert_eq!(g2.representative(), g.representative());
            assert_eq!(g2.members(), g.members());
            assert_eq!(g2.radius(), g.radius());
        }
        // v1 does not carry sketch slabs; they are re-derived later.
        assert!(back.sketches().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&sample_base());
        bytes[0] = b'X';
        assert_eq!(
            kind_of(load(bytes.as_slice()).unwrap_err()),
            StorageErrorKind::BadMagic
        );
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = to_bytes(&sample_base());
        bytes[8] = 99;
        assert_eq!(
            kind_of(load(bytes.as_slice()).unwrap_err()),
            StorageErrorKind::UnsupportedVersion
        );
    }

    #[test]
    fn detects_corruption_and_truncation() {
        let bytes = to_bytes(&sample_base());
        // Flip one payload byte.
        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xFF;
        assert_eq!(
            kind_of(load(corrupted.as_slice()).unwrap_err()),
            StorageErrorKind::ChecksumMismatch
        );
        // Truncate.
        let truncated = &bytes[..bytes.len() - 9];
        assert!(load(truncated).is_err());
        // Empty.
        assert!(load(&[][..]).is_err());
    }

    /// A hostile file can carry a *correct* checksum over absurd
    /// counts — FNV-1a is not a MAC. The decoder must reject the count
    /// against the bytes actually present instead of allocating.
    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        // Hand-build a payload: valid config + one length declaring
        // u32::MAX groups, then seal it with a *valid* checksum.
        let mut enc = Enc::new();
        enc.f64(1.0); // st
        enc.u32(5); // min_len
        enc.u32(12); // max_len
        enc.u32(1); // stride
        enc.u8(0); // policy
        enc.u8(0); // normalized
        enc.u32(3); // source_series
        enc.u32(1); // n_lengths
        enc.u32(5); // len
        enc.u32(u32::MAX); // n_groups — backed by zero bytes
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&VERSION.to_le_bytes());
        file.extend_from_slice(&enc.buf);
        file.extend_from_slice(&fnv1a64(&enc.buf).to_le_bytes());

        let err = load(file.as_slice()).unwrap_err();
        assert_eq!(kind_of(err), StorageErrorKind::Corrupt);
    }
}
