//! Format **v2**: the mmap-ready segment layout on [`onex_storage`].
//!
//! One [`onex_storage::Segment`] with six sections, every record
//! fixed-stride and little-endian so any column can be located by
//! arithmetic alone:
//!
//! | section    | stride | record                                                  |
//! |------------|--------|---------------------------------------------------------|
//! | `CONFIG`   | 40 B   | st f64, min/max_len u32, stride u32, policy u8, normalized u8, pad ×2, source_series u64, flags u64 |
//! | `LENGTHS`  | 64 B   | len, group_start, group_count, member_start, member_count, rep_start (all u64), sketch vmin f64, step f64 |
//! | `GROUPS`   | 24 B   | member_start u64, member_count u64, radius f64          |
//! | `REPS`     | 8 B    | representative samples, f64, concatenated in group order |
//! | `MEMBERS`  | 8 B    | series u32, start u32                                   |
//! | `SKETCHES` | 24 B   | one L0 sketch slot per member, parallel to `MEMBERS`    |
//!
//! `*_start` fields are record indices (not byte offsets) into the
//! target section; groups, members and representatives are laid out
//! contiguously in (length asc, group asc, admission) order, so one
//! length's entire column is a single slice of each section — that is
//! what [`BaseSegment::load_length`] resolves lazily, and why opening a
//! file decodes nothing.
//!
//! The `SKETCHES` section (and the per-length quantisation parameters
//! in `LENGTHS`, gated by flags bit 0) is present only when the saved
//! base carried a complete L0 sketch index; a v2 load then restores the
//! slabs *verbatim*, preserving the frozen
//! [`SketchParams`](onex_distance::SketchParams) so appended members
//! keep encoding under the same quantisation.

use std::collections::BTreeMap;
use std::path::Path;

use onex_api::{OnexError, StorageErrorKind};
use onex_distance::{SketchParams, SKETCH_STRIDE};
use onex_storage::{put_f64, put_u32, put_u64, put_u8, Segment, SegmentBuilder};
use onex_tseries::SubseqRef;

use crate::sketch::LengthSketches;
use crate::{BaseConfig, OnexBase, RepresentativePolicy, SimilarityGroup};

/// Section id: the fixed-size configuration record.
pub const SEC_CONFIG: u32 = 1;
/// Section id: the per-length table.
pub const SEC_LENGTHS: u32 = 2;
/// Section id: group records.
pub const SEC_GROUPS: u32 = 3;
/// Section id: representative sample column (f64).
pub const SEC_REPS: u32 = 4;
/// Section id: member references.
pub const SEC_MEMBERS: u32 = 5;
/// Section id: L0 sketch slots, parallel to `MEMBERS`.
pub const SEC_SKETCHES: u32 = 6;

const CONFIG_BYTES: usize = 40;
const LENGTH_STRIDE: usize = 64;
const GROUP_STRIDE: usize = 24;
const MEMBER_STRIDE: usize = 8;

/// Flags bit 0: the file carries a complete sketch section.
const FLAG_SKETCHES: u64 = 1;

/// Human-readable name of a v2 section id (`repro --inspect-base`).
pub fn section_name(id: u32) -> &'static str {
    match id {
        SEC_CONFIG => "CONFIG",
        SEC_LENGTHS => "LENGTHS",
        SEC_GROUPS => "GROUPS",
        SEC_REPS => "REPS",
        SEC_MEMBERS => "MEMBERS",
        SEC_SKETCHES => "SKETCHES",
        _ => "UNKNOWN",
    }
}

fn corrupt(msg: impl Into<String>) -> OnexError {
    OnexError::storage(
        StorageErrorKind::Corrupt,
        format!("v2 base: {}", msg.into()),
    )
}

/// Serialise a base as a v2 segment image.
///
/// The sketch section is written only when the base's [`crate::SketchIndex`]
/// completely covers every group (all-or-nothing at file level): a
/// partially synced index would load as a slab the searcher trusts to be
/// slot-parallel with the members.
pub fn save_v2(base: &OnexBase) -> Vec<u8> {
    let cfg = base.config();
    let sketches_complete = base.lengths().all(|len| {
        let gs = base.groups_for_len(len);
        base.sketches().for_len(len).is_some_and(|ls| {
            gs.iter().enumerate().all(|(gi, g)| {
                ls.group(gi)
                    .is_some_and(|s| s.len() == g.cardinality() * SKETCH_STRIDE)
            })
        })
    });

    let mut lengths_sec = Vec::new();
    let mut groups_sec = Vec::new();
    let mut reps_sec = Vec::new();
    let mut members_sec = Vec::new();
    let mut sketches_sec = Vec::new();
    let (mut group_cursor, mut member_cursor, mut rep_cursor) = (0u64, 0u64, 0u64);
    for len in base.lengths() {
        let gs = base.groups_for_len(len);
        let ls = base.sketches().for_len(len);
        let member_count: usize = gs.iter().map(|g| g.cardinality()).sum();
        put_u64(&mut lengths_sec, len as u64);
        put_u64(&mut lengths_sec, group_cursor);
        put_u64(&mut lengths_sec, gs.len() as u64);
        put_u64(&mut lengths_sec, member_cursor);
        put_u64(&mut lengths_sec, member_count as u64);
        put_u64(&mut lengths_sec, rep_cursor);
        let params = if sketches_complete {
            ls.map(|l| l.params())
        } else {
            None
        };
        put_f64(&mut lengths_sec, params.map_or(0.0, |p| p.vmin));
        put_f64(&mut lengths_sec, params.map_or(0.0, |p| p.step));
        for (gi, g) in gs.iter().enumerate() {
            put_u64(&mut groups_sec, member_cursor);
            put_u64(&mut groups_sec, g.cardinality() as u64);
            put_f64(&mut groups_sec, g.radius());
            for &v in g.representative() {
                put_f64(&mut reps_sec, v);
            }
            for m in g.members() {
                put_u32(&mut members_sec, m.series);
                put_u32(&mut members_sec, m.start);
            }
            if sketches_complete {
                sketches_sec.extend_from_slice(ls.expect("complete").group(gi).expect("slab"));
            }
            member_cursor += g.cardinality() as u64;
            rep_cursor += len as u64;
        }
        group_cursor += gs.len() as u64;
    }

    let mut config_sec = Vec::with_capacity(CONFIG_BYTES);
    put_f64(&mut config_sec, cfg.st);
    put_u32(&mut config_sec, cfg.min_len as u32);
    put_u32(&mut config_sec, cfg.max_len as u32);
    put_u32(&mut config_sec, cfg.stride as u32);
    put_u8(
        &mut config_sec,
        match cfg.policy {
            RepresentativePolicy::Centroid => 0,
            RepresentativePolicy::Seed => 1,
        },
    );
    put_u8(&mut config_sec, cfg.length_normalized as u8);
    put_u8(&mut config_sec, 0);
    put_u8(&mut config_sec, 0);
    put_u64(&mut config_sec, base.source_series() as u64);
    put_u64(
        &mut config_sec,
        if sketches_complete { FLAG_SKETCHES } else { 0 },
    );
    debug_assert_eq!(config_sec.len(), CONFIG_BYTES);

    let mut b = SegmentBuilder::new();
    b.section(SEC_CONFIG, config_sec);
    b.section(SEC_LENGTHS, lengths_sec);
    b.section(SEC_GROUPS, groups_sec);
    b.section(SEC_REPS, reps_sec);
    b.section(SEC_MEMBERS, members_sec);
    if sketches_complete {
        b.section(SEC_SKETCHES, sketches_sec);
    }
    b.finish()
}

/// Save a base to `path` in format v2.
///
/// # Errors
/// [`OnexError::Io`] if the file cannot be written.
pub fn save_v2_file(base: &OnexBase, path: impl AsRef<Path>) -> Result<(), OnexError> {
    std::fs::write(path, save_v2(base))?;
    Ok(())
}

/// One validated `LENGTHS` entry (record indices into the sections).
#[derive(Debug, Clone, Copy)]
struct LengthEntry {
    len: usize,
    group_start: usize,
    group_count: usize,
    member_start: usize,
    member_count: usize,
    rep_start: usize,
    vmin: f64,
    step: f64,
}

/// A validated, still-encoded v2 base file: configuration and length
/// table decoded eagerly (they are a few dozen bytes per length), group
/// columns left as borrowed sections until a query needs them.
///
/// This is the cold-start entry point: `Onex::open` wraps one of these
/// and calls [`BaseSegment::load_length`] per length the first query
/// plan touches, so time-to-first-answer scales with one column, not
/// the collection.
#[derive(Debug)]
pub struct BaseSegment {
    seg: Segment,
    config: BaseConfig,
    source_series: usize,
    lengths: Vec<LengthEntry>,
    has_sketches: bool,
}

impl BaseSegment {
    /// Open and validate a v2 base file without decoding any column.
    ///
    /// # Errors
    /// [`OnexError::Io`] if reading fails; [`OnexError::Storage`] if
    /// the bytes are not a valid v2 base segment.
    pub fn open(path: impl AsRef<Path>) -> Result<BaseSegment, OnexError> {
        BaseSegment::from_bytes(std::fs::read(path)?)
    }

    /// Validate an in-memory v2 file image (see [`BaseSegment::open`]).
    ///
    /// Container-level structure and checksums are verified by
    /// [`Segment::from_bytes`]; this layer then decodes the fixed-size
    /// `CONFIG` record and the `LENGTHS` table and cross-checks that the
    /// per-length column spans tile the `GROUPS`/`REPS`/`MEMBERS`
    /// sections exactly — so [`BaseSegment::load_length`] can slice
    /// columns by arithmetic without re-validating bounds.
    ///
    /// # Errors
    /// [`OnexError::Storage`] describing the first violated rule.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<BaseSegment, OnexError> {
        let seg = Segment::from_bytes(bytes)?;
        let sec = |id: u32| {
            seg.section(id)
                .ok_or_else(|| corrupt(format!("missing section {}", section_name(id))))
        };

        let config_sec = sec(SEC_CONFIG)?;
        if config_sec.len() != CONFIG_BYTES {
            return Err(corrupt(format!(
                "CONFIG is {} bytes, expected {CONFIG_BYTES}",
                config_sec.len()
            )));
        }
        let mut r = onex_storage::Reader::new(config_sec, "section CONFIG");
        let st = r.f64()?;
        let min_len = r.u32()? as usize;
        let max_len = r.u32()? as usize;
        let stride = r.u32()? as usize;
        let policy = match r.u8()? {
            0 => RepresentativePolicy::Centroid,
            1 => RepresentativePolicy::Seed,
            other => {
                return Err(corrupt(format!(
                    "unknown representative policy tag {other}"
                )))
            }
        };
        let length_normalized = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(corrupt(format!(
                    "bad boolean tag {other} for length_normalized"
                )))
            }
        };
        r.u8()?;
        r.u8()?;
        let source_series = usize::try_from(r.u64()?)
            .map_err(|_| corrupt("source_series does not fit this platform"))?;
        let flags = r.u64()?;
        r.finish()?;
        let config = BaseConfig {
            st,
            min_len,
            max_len,
            stride,
            policy,
            length_normalized,
            // Execution hint, not base semantics — defaults on load.
            index: crate::IndexPolicy::default(),
        };
        config
            .validate()
            .map_err(|e| corrupt(format!("invalid config: {e}")))?;
        let has_sketches = flags & FLAG_SKETCHES != 0;

        let (lengths_sec, groups_sec, reps_sec, members_sec) = (
            sec(SEC_LENGTHS)?,
            sec(SEC_GROUPS)?,
            sec(SEC_REPS)?,
            sec(SEC_MEMBERS)?,
        );
        for (name, section, stride) in [
            ("LENGTHS", lengths_sec, LENGTH_STRIDE),
            ("GROUPS", groups_sec, GROUP_STRIDE),
            ("REPS", reps_sec, 8),
            ("MEMBERS", members_sec, MEMBER_STRIDE),
        ] {
            if section.len() % stride != 0 {
                return Err(corrupt(format!(
                    "{name} is {} bytes, not a multiple of the {stride}-byte stride",
                    section.len()
                )));
            }
        }
        let groups_total = groups_sec.len() / GROUP_STRIDE;
        let reps_total = reps_sec.len() / 8;
        let members_total = members_sec.len() / MEMBER_STRIDE;
        if has_sketches {
            let sk = sec(SEC_SKETCHES)?;
            if sk.len() != members_total * SKETCH_STRIDE {
                return Err(corrupt(format!(
                    "SKETCHES is {} bytes for {members_total} members (stride {SKETCH_STRIDE})",
                    sk.len()
                )));
            }
        }

        // The length table must tile the group/rep/member sections
        // exactly — contiguous, in order, nothing left over — which is
        // what lets load_length slice columns without further checks.
        let n = lengths_sec.len() / LENGTH_STRIDE;
        let mut lengths = Vec::with_capacity(n);
        let mut r = onex_storage::Reader::new(lengths_sec, "section LENGTHS");
        let (mut groups_seen, mut members_seen, mut reps_seen) = (0usize, 0usize, 0usize);
        let mut prev_len = 0usize;
        for _ in 0..n {
            let e = LengthEntry {
                len: r.u64()? as usize,
                group_start: r.u64()? as usize,
                group_count: r.u64()? as usize,
                member_start: r.u64()? as usize,
                member_count: r.u64()? as usize,
                rep_start: r.u64()? as usize,
                vmin: r.f64()?,
                step: r.f64()?,
            };
            if e.len < 1 || (e.len <= prev_len && !lengths.is_empty()) {
                return Err(corrupt(format!(
                    "length table not strictly ascending at {}",
                    e.len
                )));
            }
            if e.group_start != groups_seen
                || e.member_start != members_seen
                || e.rep_start != reps_seen
            {
                return Err(corrupt(format!(
                    "length {} columns are not contiguous with their predecessors",
                    e.len
                )));
            }
            let rep_span = e
                .group_count
                .checked_mul(e.len)
                .ok_or_else(|| corrupt("representative span overflows"))?;
            groups_seen = groups_seen
                .checked_add(e.group_count)
                .filter(|&v| v <= groups_total)
                .ok_or_else(|| corrupt(format!("length {} overruns GROUPS", e.len)))?;
            members_seen = members_seen
                .checked_add(e.member_count)
                .filter(|&v| v <= members_total)
                .ok_or_else(|| corrupt(format!("length {} overruns MEMBERS", e.len)))?;
            reps_seen = reps_seen
                .checked_add(rep_span)
                .filter(|&v| v <= reps_total)
                .ok_or_else(|| corrupt(format!("length {} overruns REPS", e.len)))?;
            prev_len = e.len;
            lengths.push(e);
        }
        r.finish()?;
        if groups_seen != groups_total || members_seen != members_total || reps_seen != reps_total {
            return Err(corrupt(format!(
                "length table covers {groups_seen}/{groups_total} groups, \
                 {members_seen}/{members_total} members, {reps_seen}/{reps_total} rep samples"
            )));
        }

        Ok(BaseSegment {
            seg,
            config,
            source_series,
            lengths,
            has_sketches,
        })
    }

    /// The configuration the persisted base was built with.
    pub fn config(&self) -> &BaseConfig {
        &self.config
    }

    /// Number of series in the dataset the base was built over.
    pub fn source_series(&self) -> usize {
        self.source_series
    }

    /// Indexed lengths, ascending — available without decoding columns.
    pub fn lengths(&self) -> impl Iterator<Item = usize> + '_ {
        self.lengths.iter().map(|e| e.len)
    }

    /// Whether the file carries the L0 sketch section (loaded columns
    /// then prune immediately, no re-encode).
    pub fn has_sketches(&self) -> bool {
        self.has_sketches
    }

    /// Total groups across all lengths (from the table, no decode).
    pub fn total_groups(&self) -> usize {
        self.lengths.iter().map(|e| e.group_count).sum()
    }

    /// A base with this file's configuration and *no* columns resolved
    /// yet — the engine's cold-start starting point.
    pub fn empty_base(&self) -> OnexBase {
        OnexBase::from_parts(self.config.clone(), BTreeMap::new(), self.source_series)
    }

    /// Resolve one length column into `base`: decode its groups (and
    /// sketch slabs, when present) from the borrowed sections and
    /// install them. Returns `false` when the file has no such length.
    /// Idempotent — re-resolving replaces the column with identical
    /// data.
    ///
    /// # Errors
    /// [`OnexError::Storage`] if the column's group records are
    /// malformed (possible despite section checksums only for a file
    /// written by a buggy or hostile encoder).
    pub fn load_length(&self, base: &mut OnexBase, len: usize) -> Result<bool, OnexError> {
        let Some(e) = self.lengths.iter().find(|e| e.len == len) else {
            return Ok(false);
        };
        let groups_sec = self.seg.section(SEC_GROUPS).expect("validated");
        let reps_sec = self.seg.section(SEC_REPS).expect("validated");
        let members_sec = self.seg.section(SEC_MEMBERS).expect("validated");

        let mut groups = Vec::with_capacity(e.group_count);
        let mut slabs = self.has_sketches.then(|| Vec::with_capacity(e.group_count));
        let records = &groups_sec
            [e.group_start * GROUP_STRIDE..(e.group_start + e.group_count) * GROUP_STRIDE];
        let mut member_cursor = e.member_start;
        for (gi, rec) in records.chunks_exact(GROUP_STRIDE).enumerate() {
            let member_start = u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes")) as usize;
            let member_count = u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes")) as usize;
            let radius = f64::from_le_bytes(rec[16..24].try_into().expect("8 bytes"));
            // Groups must pack their length's member range exactly, in
            // order, each non-empty — same invariant the builder
            // produces and the table validation assumed.
            if member_start != member_cursor
                || member_count == 0
                || member_cursor + member_count > e.member_start + e.member_count
            {
                return Err(corrupt(format!(
                    "group {gi}@{len} member range [{member_start}, +{member_count}) \
                     does not pack its length column"
                )));
            }
            let rep: Vec<f64> = reps_sec
                [(e.rep_start + gi * e.len) * 8..(e.rep_start + (gi + 1) * e.len) * 8]
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            let members: Vec<SubseqRef> = members_sec
                [member_start * MEMBER_STRIDE..(member_start + member_count) * MEMBER_STRIDE]
                .chunks_exact(MEMBER_STRIDE)
                .map(|c| {
                    let series = u32::from_le_bytes(c[..4].try_into().expect("4 bytes"));
                    let start = u32::from_le_bytes(c[4..].try_into().expect("4 bytes"));
                    SubseqRef::new(series, start, len as u32)
                })
                .collect();
            if let Some(slabs) = slabs.as_mut() {
                let sk = self.seg.section(SEC_SKETCHES).expect("validated");
                slabs.push(
                    sk[member_start * SKETCH_STRIDE..(member_start + member_count) * SKETCH_STRIDE]
                        .to_vec(),
                );
            }
            member_cursor += member_count;
            groups.push(SimilarityGroup::from_parts(rep, members, radius));
        }
        if member_cursor != e.member_start + e.member_count {
            return Err(corrupt(format!(
                "length {len} groups cover {} of {} members",
                member_cursor - e.member_start,
                e.member_count
            )));
        }
        let sketches = slabs.map(|s| {
            LengthSketches::from_parts(
                SketchParams {
                    vmin: e.vmin,
                    step: e.step,
                },
                s,
            )
        });
        base.install_length(len, groups, sketches);
        Ok(true)
    }

    /// Decode every column eagerly — what the magic-sniffing
    /// [`super::load`] does for v2 files when laziness is not wanted.
    ///
    /// # Errors
    /// See [`BaseSegment::load_length`].
    pub fn load_all(&self) -> Result<OnexBase, OnexError> {
        let mut base = self.empty_base();
        for len in self.lengths().collect::<Vec<_>>() {
            self.load_length(&mut base, len)?;
        }
        Ok(base)
    }

    /// The whole validated file image (for `ShipBase` / re-saving).
    pub fn as_bytes(&self) -> &[u8] {
        self.seg.as_bytes()
    }

    /// The underlying section directory (for `repro --inspect-base`).
    pub fn directory(&self) -> &[onex_storage::SectionInfo] {
        self.seg.directory()
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{kind_of, sample_base};
    use super::*;

    #[test]
    fn round_trip_preserves_structure_and_sketches() {
        let base = sample_base();
        let bytes = save_v2(&base);
        let back = BaseSegment::from_bytes(bytes).unwrap().load_all().unwrap();
        assert_eq!(back, base);
        for (id, g) in base.iter() {
            let g2 = back.group(id).unwrap();
            assert_eq!(g2.representative(), g.representative());
            assert_eq!(g2.members(), g.members());
            assert_eq!(g2.radius(), g.radius());
        }
        // The L0 slabs and their frozen parameters came back verbatim —
        // no re-encode needed before the first query prunes.
        assert_eq!(back.sketches(), base.sketches());
    }

    #[test]
    fn resave_is_byte_identical() {
        let base = sample_base();
        let bytes = save_v2(&base);
        let back = BaseSegment::from_bytes(bytes.clone())
            .unwrap()
            .load_all()
            .unwrap();
        assert_eq!(save_v2(&back), bytes);
    }

    #[test]
    fn lazy_load_resolves_one_column_at_a_time() {
        let base = sample_base();
        let seg = BaseSegment::from_bytes(save_v2(&base)).unwrap();
        assert!(seg.has_sketches());
        assert_eq!(
            seg.lengths().collect::<Vec<_>>(),
            base.lengths().collect::<Vec<_>>()
        );
        assert_eq!(seg.total_groups(), base.stats().groups);

        let mut cold = seg.empty_base();
        assert_eq!(cold.lengths().count(), 0);
        let len = base.lengths().next().unwrap();
        assert!(seg.load_length(&mut cold, len).unwrap());
        assert_eq!(cold.lengths().collect::<Vec<_>>(), vec![len]);
        assert_eq!(cold.groups_for_len(len), base.groups_for_len(len));
        assert_eq!(
            cold.sketches().for_len(len).unwrap(),
            base.sketches().for_len(len).unwrap()
        );
        // A length the file does not index resolves to "not present".
        assert!(!seg.load_length(&mut cold, 9999).unwrap());
        // Re-resolving is idempotent.
        assert!(seg.load_length(&mut cold, len).unwrap());
        assert_eq!(cold.groups_for_len(len), base.groups_for_len(len));
    }

    #[test]
    fn base_without_sketches_round_trips_without_the_section() {
        let base = sample_base();
        // Strip the sketches by rebuilding from parts.
        let stripped = {
            let mut groups = BTreeMap::new();
            for len in base.lengths() {
                groups.insert(len, base.groups_for_len(len).to_vec());
            }
            OnexBase::from_parts(base.config().clone(), groups, base.source_series())
        };
        let seg = BaseSegment::from_bytes(save_v2(&stripped)).unwrap();
        assert!(!seg.has_sketches());
        let back = seg.load_all().unwrap();
        assert_eq!(back, stripped);
        assert!(back.sketches().is_empty());
    }

    #[test]
    fn bit_flips_and_truncation_are_rejected() {
        let bytes = save_v2(&sample_base());
        // Flip a byte in every region that carries meaning: header,
        // directory, and the first byte of every non-empty section
        // payload. (Flips in inter-section alignment padding are not
        // checksummed — and provably change nothing the decoder reads;
        // the property tests pin that.)
        let seg = BaseSegment::from_bytes(bytes.clone()).unwrap();
        let mut targets = vec![0, 9, 13, 30];
        targets.extend(
            seg.directory()
                .iter()
                .filter(|s| s.len > 0)
                .map(|s| s.offset as usize),
        );
        for at in targets {
            let mut bad = bytes.clone();
            bad[at] ^= 0x20;
            assert!(
                BaseSegment::from_bytes(bad).is_err(),
                "flip at {at} accepted"
            );
        }
        for cut in [0, 10, 100, bytes.len() - 1] {
            assert!(
                BaseSegment::from_bytes(bytes[..cut].to_vec()).is_err(),
                "truncation to {cut} accepted"
            );
        }
    }

    #[test]
    fn missing_sections_are_rejected() {
        // A structurally valid segment that is not a base.
        let mut b = SegmentBuilder::new();
        b.section(42, vec![1, 2, 3]);
        let err = BaseSegment::from_bytes(b.finish()).unwrap_err();
        assert_eq!(kind_of(err), StorageErrorKind::Corrupt);
    }
}
