use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use onex_api::OnexError;
use onex_tseries::Dataset;

use crate::repindex::{IndexWork, RepresentativeIndex};
use crate::{BaseConfig, OnexBase, RepresentativePolicy, SimilarityGroup, SubsequenceSpace};

/// Constructs the ONEX base from a dataset (paper §3.1, the
/// "pre-processing step" at the top of Fig 1).
///
/// All three construction paths — [`BaseBuilder::build`],
/// [`BaseBuilder::build_parallel`] and the incremental
/// [`BaseBuilder::extend`] — share one admission rule (the private
/// `assign_one`) driven through the nearest-representative index
/// selected by [`BaseConfig::index`], so they produce identical
/// assignments whatever the lookup strategy.
///
/// ```
/// use onex_grouping::{BaseBuilder, BaseConfig};
/// use onex_tseries::{Dataset, TimeSeries};
///
/// let data = Dataset::from_series(vec![
///     TimeSeries::new("flat", vec![0.0; 8]),
///     TimeSeries::new("near", vec![0.1; 8]),
///     TimeSeries::new("far", vec![9.0; 8]),
/// ]).unwrap();
/// let builder = BaseBuilder::new(BaseConfig::new(1.0, 4, 4)).unwrap();
/// let (base, report) = builder.build(&data);
/// // flat and near share groups, far stays apart.
/// assert_eq!(report.groups, 2);
/// assert!(base.audit(&data).violations == 0 || report.compaction() > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct BaseBuilder {
    config: BaseConfig,
    /// Test-only fault injection: panic while constructing this length,
    /// exercising the parallel builder's worker-failure propagation.
    #[cfg(test)]
    fail_len: Option<usize>,
}

/// What a construction run did — reported by experiment E7/E12 and the
/// data loading step of the demo ("loading a new dataset triggers the
/// preprocessing of this data at the server side").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildReport {
    /// Wall-clock construction time.
    pub elapsed: Duration,
    /// Number of distinct subsequence lengths indexed.
    pub lengths: usize,
    /// Total subsequences assigned to groups.
    pub subsequences: usize,
    /// Total groups created.
    pub groups: usize,
    /// Nearest-representative lookup effort (representatives examined /
    /// pruned / distance calls), mirroring the query-side
    /// `onex_api::BackendStats` so construction cost is comparable across
    /// index policies the way query cost is across backends.
    pub work: IndexWork,
}

impl BuildReport {
    /// Subsequences per group — the compaction the paper's speed-up rests
    /// on ("the use of the compact ONEX base instead of the entire
    /// dataset … guarantees speed-up").
    pub fn compaction(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.subsequences as f64 / self.groups as f64
        }
    }

    /// Construction throughput in subsequences per second (0 when the
    /// clock read as zero).
    pub fn subsequences_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.subsequences as f64 / secs
        } else {
            0.0
        }
    }
}

impl BaseBuilder {
    /// Create a builder after validating the configuration.
    ///
    /// # Errors
    /// [`OnexError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: BaseConfig) -> Result<Self, OnexError> {
        config.validate()?;
        Ok(BaseBuilder {
            config,
            #[cfg(test)]
            fail_len: None,
        })
    }

    /// The configuration this builder applies.
    pub fn config(&self) -> &BaseConfig {
        &self.config
    }

    /// Sequential construction.
    pub fn build(&self, dataset: &Dataset) -> (OnexBase, BuildReport) {
        let start = Instant::now();
        let space = SubsequenceSpace::new(dataset, &self.config);
        let mut per_length = BTreeMap::new();
        let mut work = IndexWork::default();
        for len in space.lengths() {
            let (groups, w) = self.build_length(dataset, &space, len);
            work += w;
            per_length.insert(len, groups);
        }
        self.finish(dataset, per_length, start, work)
    }

    /// Length-parallel construction over `threads` workers. Lengths are
    /// independent, so the result is identical to [`Self::build`]
    /// regardless of the thread count.
    ///
    /// # Errors
    /// [`OnexError::Internal`] when a construction worker panics: the
    /// failure is reported instead of poisoning the calling process, so a
    /// server can answer the load request with a 500 and keep serving.
    pub fn build_parallel(
        &self,
        dataset: &Dataset,
        threads: usize,
    ) -> Result<(OnexBase, BuildReport), OnexError> {
        let start = Instant::now();
        let space = SubsequenceSpace::new(dataset, &self.config);
        let lengths = space.lengths();
        let threads = threads.clamp(1, lengths.len().max(1));
        if threads <= 1 {
            let mut per_length = BTreeMap::new();
            let mut work = IndexWork::default();
            for len in lengths {
                let (groups, w) = self.build_length(dataset, &space, len);
                work += w;
                per_length.insert(len, groups);
            }
            return Ok(self.finish(dataset, per_length, start, work));
        }
        // Interleave lengths across workers so long lengths (slower rows)
        // spread out; each worker returns its (len, groups, work) rows.
        let mut per_length = BTreeMap::new();
        let mut work = IndexWork::default();
        let mut failures: Vec<String> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let my_lengths: Vec<usize> =
                    lengths.iter().copied().skip(t).step_by(threads).collect();
                let space = &space;
                handles.push(scope.spawn(move |_| {
                    my_lengths
                        .into_iter()
                        .map(|len| (len, self.build_length(dataset, space, len)))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(rows) => {
                        for (len, (groups, w)) in rows {
                            work += w;
                            per_length.insert(len, groups);
                        }
                    }
                    Err(panic) => failures.push(panic_message(panic.as_ref())),
                }
            }
        })
        .expect("every worker is joined explicitly");
        if !failures.is_empty() {
            return Err(OnexError::Internal(format!(
                "{} of {threads} construction workers failed; first failure: {}",
                failures.len(),
                failures[0]
            )));
        }
        Ok(self.finish(dataset, per_length, start, work))
    }

    /// Extend an existing base with the series appended to `dataset`
    /// since the base was built (incremental data loading: the demo adds
    /// collections "with a click of a button" without rebuilding what is
    /// already indexed).
    ///
    /// The new subsequences run through the same online admission rule as
    /// a batch build (the shared `assign_one`, continued from the
    /// existing groups), so all base invariants continue to hold; the
    /// result can differ from a from-scratch rebuild (online grouping is
    /// order-dependent), exactly as a demo session's base depends on its
    /// loading order.
    ///
    /// The base is borrowed, never consumed: extension works on a
    /// build-aside copy and the caller's base is untouched on **every**
    /// path, success or failure — an erroring extend is observationally a
    /// no-op (there is no half-indexed intermediate to leak).
    ///
    /// # Errors
    /// [`OnexError::DatasetMismatch`] when the base was built under a
    /// different configuration or the dataset has fewer series than the
    /// base has seen; [`OnexError::Internal`] when an internal indexing
    /// invariant fails mid-extension.
    pub fn extend(
        &self,
        base: &OnexBase,
        dataset: &Dataset,
    ) -> Result<(OnexBase, BuildReport), OnexError> {
        if base.config() != &self.config {
            return Err(OnexError::DatasetMismatch(
                "base was built under a different configuration".into(),
            ));
        }
        let start = Instant::now();
        // Build aside: all mutation below happens on this private copy.
        let (config, mut per_length, seen) = base.clone().into_parts();
        if dataset.len() < seen {
            return Err(OnexError::DatasetMismatch(format!(
                "dataset has {} series but the base has already indexed {}",
                dataset.len(),
                seen
            )));
        }
        let mut work = IndexWork::default();
        // Per length, new subsequences arrive series-major then
        // start-ascending — the same order `build_length` consumes — and
        // group lists of different lengths are independent, so iterating
        // length-outer here (instead of the append order) assigns every
        // window exactly as the batch path would. The space owns the
        // window enumeration, so batch and incremental paths cannot
        // drift apart.
        let space = SubsequenceSpace::new(dataset, &self.config);
        let mut longest_new = 0usize;
        for sid in seen..dataset.len() {
            let series = dataset.series(sid as u32).ok_or_else(|| {
                OnexError::Internal(format!("series {sid} vanished while extending the base"))
            })?;
            longest_new = longest_new.max(series.len());
        }
        for len in self.config.min_len..=self.config.max_len.min(longest_new) {
            #[cfg(test)]
            if self.fail_len == Some(len) {
                return Err(OnexError::Internal(format!(
                    "injected extension failure at length {len}"
                )));
            }
            let new_windows: usize = (seen..dataset.len())
                .map(|sid| space.count_for_series_len(sid, len))
                .sum();
            if new_windows == 0 {
                continue;
            }
            let admission = self.config.admission_radius(len);
            let admission_sq = admission * admission;
            let groups = per_length.entry(len).or_default();
            // `Auto` decides on the lookups this extension will perform,
            // not the base size: a small increment over a large base is
            // served cheaper by the linear scan than by bulk-building a
            // tree it will barely query.
            let mut index = self.config.index.create(new_windows);
            index.seed(groups, &mut work);
            for sid in seen..dataset.len() {
                for r in space.refs_for_series_len(sid, len) {
                    let xs = dataset.resolve(r).map_err(|_| {
                        OnexError::Internal(format!(
                            "subsequence reference {r} fell out of bounds mid-extension"
                        ))
                    })?;
                    self.assign_one(groups, index.as_mut(), r, xs, admission_sq, &mut work);
                }
            }
        }
        // Carry the prior sketches over (params stay frozen) and append
        // slots for the newly admitted members only.
        let mut new_base = OnexBase::from_parts(config, per_length, dataset.len())
            .with_sketches(base.sketches().clone());
        new_base.sync_sketches(dataset);
        let stats = new_base.stats();
        let report = BuildReport {
            elapsed: start.elapsed(),
            lengths: stats.per_length.len(),
            subsequences: stats.members,
            groups: stats.groups,
            work,
        };
        Ok((new_base, report))
    }

    /// Online assignment for one length: each subsequence joins the
    /// nearest group whose representative is within the admission radius,
    /// else seeds a new group. The lookup goes through the configured
    /// [`crate::RepresentativeIndex`].
    fn build_length(
        &self,
        dataset: &Dataset,
        space: &SubsequenceSpace,
        len: usize,
    ) -> (Vec<SimilarityGroup>, IndexWork) {
        #[cfg(test)]
        if self.fail_len == Some(len) {
            panic!("injected construction failure at length {len}");
        }
        let admission = self.config.admission_radius(len);
        let admission_sq = admission * admission;
        let mut groups: Vec<SimilarityGroup> = Vec::new();
        let mut index = self.config.index.create(space.count_for_len(len));
        let mut work = IndexWork::default();
        for r in space.refs_for_len(len) {
            let xs = dataset.resolve(r).expect("space references are in bounds");
            self.assign_one(&mut groups, index.as_mut(), r, xs, admission_sq, &mut work);
        }
        (groups, work)
    }

    /// The admission rule applied to one subsequence — the single place
    /// every construction path (batch, parallel, incremental) runs
    /// through: join the nearest group within `ST/2`, else seed a new one,
    /// keeping the index in sync with seeded groups and drifting
    /// centroids.
    fn assign_one(
        &self,
        groups: &mut Vec<SimilarityGroup>,
        index: &mut dyn RepresentativeIndex,
        r: onex_tseries::SubseqRef,
        xs: &[f64],
        admission_sq: f64,
        work: &mut IndexWork,
    ) {
        let centroid = self.config.policy == RepresentativePolicy::Centroid;
        match index.nearest_within(xs, admission_sq, groups, work) {
            Some((gi, d_sq)) => {
                groups[gi].admit(r, xs, d_sq.sqrt(), centroid);
                if centroid {
                    index.update(gi, groups[gi].representative(), work);
                }
            }
            None => {
                groups.push(SimilarityGroup::seed(r, xs));
                index.insert(groups.len() - 1, xs, work);
            }
        }
    }

    fn finish(
        &self,
        dataset: &Dataset,
        per_length: BTreeMap<usize, Vec<SimilarityGroup>>,
        start: Instant,
        work: IndexWork,
    ) -> (OnexBase, BuildReport) {
        let mut base = OnexBase::from_parts(self.config.clone(), per_length, dataset.len());
        base.sync_sketches(dataset);
        let stats = base.stats();
        let report = BuildReport {
            elapsed: start.elapsed(),
            lengths: stats.per_length.len(),
            subsequences: stats.members,
            groups: stats.groups,
            work,
        };
        (base, report)
    }
}

/// Best-effort human-readable message from a worker panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexPolicy;
    use onex_distance::ed;
    use onex_tseries::TimeSeries;

    fn tiny() -> Dataset {
        Dataset::from_series(vec![
            TimeSeries::new("flat", vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            TimeSeries::new("near", vec![0.1, 0.1, 0.1, 0.1, 0.1, 0.1]),
            TimeSeries::new("far", vec![9.0, 9.0, 9.0, 9.0, 9.0, 9.0]),
        ])
        .unwrap()
    }

    #[test]
    fn similar_series_share_groups_dissimilar_do_not() {
        let cfg = BaseConfig::new(1.0, 4, 4); // admission radius 0.5·√4 = 1
        let (base, report) = BaseBuilder::new(cfg).unwrap().build(&tiny());
        // 3 windows per series of length 4 → 9 subsequences. flat/near are
        // within 0.1·√4 = 0.2 in raw ED of each other, far is ~18 away.
        assert_eq!(report.subsequences, 9);
        assert_eq!(report.groups, 2, "flat+near merge, far isolates");
        assert!(report.compaction() > 4.0);
        assert!(report.work.examined > 0 && report.work.distance_calls > 0);
        let groups = base.groups_for_len(4);
        let cardinalities: Vec<usize> = groups.iter().map(|g| g.cardinality()).collect();
        assert!(cardinalities.contains(&6) && cardinalities.contains(&3));
    }

    #[test]
    fn tiny_threshold_isolates_everything() {
        let cfg = BaseConfig::new(1e-9, 4, 4);
        let (_, report) = BaseBuilder::new(cfg).unwrap().build(&tiny());
        // Identical windows (within one constant series) still merge at
        // distance 0; distinct series values do not.
        assert_eq!(report.groups, 3);
    }

    #[test]
    fn huge_threshold_merges_everything() {
        let cfg = BaseConfig::new(1e6, 4, 4);
        let (_, report) = BaseBuilder::new(cfg).unwrap().build(&tiny());
        assert_eq!(report.groups, 1);
        assert_eq!(report.compaction(), 9.0);
    }

    #[test]
    fn parallel_build_is_identical() {
        let ds = onex_tseries::gen::random_walk_dataset(onex_tseries::gen::SyntheticConfig {
            series: 8,
            len: 40,
            seed: 21,
        });
        let cfg = BaseConfig::new(0.8, 6, 20);
        let builder = BaseBuilder::new(cfg).unwrap();
        let (seq, seq_report) = builder.build(&ds);
        for threads in [1, 2, 3, 7, 32] {
            let (par, par_report) = builder.build_parallel(&ds, threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
            assert_eq!(seq_report.work, par_report.work, "threads={threads}");
        }
    }

    #[test]
    fn parallel_worker_failure_is_a_typed_error_not_a_process_abort() {
        let ds = onex_tseries::gen::random_walk_dataset(onex_tseries::gen::SyntheticConfig {
            series: 4,
            len: 30,
            seed: 3,
        });
        let mut builder = BaseBuilder::new(BaseConfig::new(0.8, 6, 12)).unwrap();
        builder.fail_len = Some(9);
        let err = builder
            .build_parallel(&ds, 3)
            .expect_err("poisoned length must surface as an error");
        match err {
            OnexError::Internal(msg) => {
                assert!(msg.contains("injected construction failure"), "{msg}");
                assert!(msg.contains("workers failed"), "{msg}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        // The builder remains usable after a failed run.
        builder.fail_len = None;
        let (base, _) = builder.build_parallel(&ds, 3).unwrap();
        assert!(base.stats().groups > 0);
    }

    #[test]
    fn seed_policy_invariant_holds_exactly() {
        let ds = onex_tseries::gen::random_walk_dataset(onex_tseries::gen::SyntheticConfig {
            series: 6,
            len: 30,
            seed: 4,
        });
        let cfg = BaseConfig {
            policy: RepresentativePolicy::Seed,
            ..BaseConfig::new(1.0, 5, 12)
        };
        let (base, _) = BaseBuilder::new(cfg).unwrap().build(&ds);
        for len in base.lengths() {
            let admission = base.config().admission_radius(len);
            for g in base.groups_for_len(len) {
                for &m in g.members() {
                    let xs = ds.resolve(m).unwrap();
                    let d = ed(xs, g.representative());
                    assert!(
                        d <= admission + 1e-9,
                        "member {m} at {d} > admission {admission}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_subsequence_lands_in_exactly_one_group() {
        let ds = tiny();
        let cfg = BaseConfig::new(0.5, 3, 5);
        let (base, report) = BaseBuilder::new(cfg.clone()).unwrap().build(&ds);
        let space = SubsequenceSpace::new(&ds, &cfg);
        let mut seen = std::collections::HashSet::new();
        for len in base.lengths() {
            for g in base.groups_for_len(len) {
                for &m in g.members() {
                    assert!(seen.insert(m), "duplicate member {m}");
                }
            }
        }
        assert_eq!(seen.len(), space.total());
        assert_eq!(report.subsequences, space.total());
    }

    #[test]
    fn builder_rejects_invalid_config() {
        assert!(BaseBuilder::new(BaseConfig::new(-1.0, 4, 8)).is_err());
    }

    #[test]
    fn indexed_build_is_identical_to_linear_reference() {
        let ds = onex_tseries::gen::random_walk_dataset(onex_tseries::gen::SyntheticConfig {
            series: 10,
            len: 80,
            seed: 77,
        });
        for policy in [RepresentativePolicy::Centroid, RepresentativePolicy::Seed] {
            let cfg = BaseConfig {
                policy,
                ..BaseConfig::new(0.6, 8, 14)
            };
            let (reference, linear_report) = BaseBuilder::new(BaseConfig {
                index: IndexPolicy::Linear,
                ..cfg.clone()
            })
            .unwrap()
            .build(&ds);
            for index in [IndexPolicy::VpTree, IndexPolicy::Auto] {
                let (base, report) = BaseBuilder::new(BaseConfig {
                    index,
                    ..cfg.clone()
                })
                .unwrap()
                .build(&ds);
                assert_eq!(base, reference, "{policy:?}/{index:?}");
                assert_eq!(report.groups, linear_report.groups);
                assert_eq!(report.subsequences, linear_report.subsequences);
            }
            // 10×~67 windows per length ≥ 512 → Auto picks the tree,
            // which must do the same job in fewer comparisons.
            let (_, tree_report) = BaseBuilder::new(BaseConfig {
                index: IndexPolicy::VpTree,
                ..cfg.clone()
            })
            .unwrap()
            .build(&ds);
            assert!(
                tree_report.work.examined < linear_report.work.examined,
                "{policy:?}: tree examined {} vs linear {}",
                tree_report.work.examined,
                linear_report.work.examined
            );
            assert!(tree_report.work.pruned > 0, "{policy:?}");
        }
    }

    #[test]
    fn extend_indexes_only_the_new_series() {
        let mut ds = tiny();
        let cfg = BaseConfig::new(1.0, 4, 4);
        let builder = BaseBuilder::new(cfg.clone()).unwrap();
        let (base, before) = builder.build(&ds);
        ds.push(TimeSeries::new("near2", vec![0.05; 6])).unwrap();
        let (extended, after) = builder.extend(&base, &ds).unwrap();
        // 3 new windows of length 4, all near the flat/near group.
        assert_eq!(after.subsequences, before.subsequences + 3);
        assert_eq!(
            after.groups, before.groups,
            "new windows join existing groups"
        );
        assert_eq!(extended.source_series(), 4);
        // The space partition still covers everything exactly once.
        let space = SubsequenceSpace::new(&ds, &cfg);
        let members: usize = extended
            .groups_for_len(4)
            .iter()
            .map(|g| g.cardinality())
            .sum();
        assert_eq!(members, space.total());
    }

    #[test]
    fn extend_creates_new_lengths_and_groups_when_needed() {
        let mut ds = tiny();
        let cfg = BaseConfig::new(1.0, 4, 10);
        let builder = BaseBuilder::new(cfg).unwrap();
        let (base, _) = builder.build(&ds);
        assert!(
            base.groups_for_len(8).is_empty(),
            "no series long enough yet"
        );
        // A longer, very different series: new lengths and new groups.
        ds.push(TimeSeries::new(
            "long",
            (0..10).map(|i| i as f64 * 50.0).collect(),
        ))
        .unwrap();
        let (extended, _) = builder.extend(&base, &ds).unwrap();
        assert!(!extended.groups_for_len(8).is_empty());
        assert!(!extended.groups_for_len(10).is_empty());
        let audit = extended.audit(&ds);
        assert_eq!(audit.unresolvable, 0);
    }

    #[test]
    fn extend_preserves_seed_invariant() {
        let mut ds = onex_tseries::gen::random_walk_dataset(onex_tseries::gen::SyntheticConfig {
            series: 4,
            len: 30,
            seed: 61,
        });
        let cfg = BaseConfig {
            policy: RepresentativePolicy::Seed,
            ..BaseConfig::new(1.0, 5, 12)
        };
        let builder = BaseBuilder::new(cfg).unwrap();
        let (base, _) = builder.build(&ds);
        for extra in 0..3 {
            ds.push(TimeSeries::new(
                format!("extra-{extra}"),
                onex_tseries::gen::random_walk(30, 1.0, 100 + extra),
            ))
            .unwrap();
        }
        let (extended, _) = builder.extend(&base, &ds).unwrap();
        let audit = extended.audit(&ds);
        assert_eq!(audit.violations, 0, "{audit:?}");
        assert_eq!(extended.source_series(), 7);
    }

    #[test]
    fn extend_rejects_mismatches() {
        let ds = tiny();
        let builder_a = BaseBuilder::new(BaseConfig::new(1.0, 4, 4)).unwrap();
        let builder_b = BaseBuilder::new(BaseConfig::new(2.0, 4, 4)).unwrap();
        let (base, _) = builder_a.build(&ds);
        assert!(builder_b.extend(&base, &ds).is_err(), "config mismatch");
        let smaller = Dataset::new();
        assert!(builder_a.extend(&base, &smaller).is_err(), "shrunk dataset");
    }

    #[test]
    fn extend_with_no_new_series_is_identity() {
        let ds = tiny();
        let builder = BaseBuilder::new(BaseConfig::new(1.0, 4, 4)).unwrap();
        let (base, _) = builder.build(&ds);
        let (extended, report) = builder.extend(&base, &ds).unwrap();
        assert_eq!(extended, base);
        assert_eq!(report.work, IndexWork::default(), "no lookups performed");
    }

    #[test]
    fn a_failed_mid_extend_leaves_the_base_untouched() {
        let mut ds = onex_tseries::gen::random_walk_dataset(onex_tseries::gen::SyntheticConfig {
            series: 4,
            len: 30,
            seed: 9,
        });
        let cfg = BaseConfig::new(0.8, 6, 12);
        let mut builder = BaseBuilder::new(cfg).unwrap();
        let (base, _) = builder.build(&ds);
        let pristine = base.clone();
        ds.push(TimeSeries::new(
            "late",
            onex_tseries::gen::random_walk(30, 1.0, 200),
        ))
        .unwrap();
        // Fail after several lengths have already been re-indexed into
        // the working copy: the caller's base must not see any of it.
        builder.fail_len = Some(9);
        let err = builder.extend(&base, &ds).expect_err("injected failure");
        assert!(matches!(err, OnexError::Internal(_)), "{err:?}");
        assert_eq!(base, pristine, "failed extend mutated the caller's base");
        // The same builder completes the extension once the fault clears,
        // exactly as if the failed attempt never happened.
        builder.fail_len = None;
        let (extended, _) = builder.extend(&base, &ds).unwrap();
        let clean = BaseBuilder::new(BaseConfig::new(0.8, 6, 12)).unwrap();
        let (reference, _) = clean.extend(&pristine, &ds).unwrap();
        assert_eq!(extended, reference);
    }

    #[test]
    fn extend_accepts_bases_built_under_a_different_index_policy() {
        let mut ds = tiny();
        let linear = BaseBuilder::new(BaseConfig {
            index: IndexPolicy::Linear,
            ..BaseConfig::new(1.0, 4, 4)
        })
        .unwrap();
        let vptree = BaseBuilder::new(BaseConfig {
            index: IndexPolicy::VpTree,
            ..BaseConfig::new(1.0, 4, 4)
        })
        .unwrap();
        let (base, _) = linear.build(&ds);
        ds.push(TimeSeries::new("near2", vec![0.05; 6])).unwrap();
        let (a, _) = linear.extend(&base, &ds).unwrap();
        let (b, _) = vptree.extend(&base, &ds).unwrap();
        assert_eq!(a, b, "index policy never changes what gets built");
    }
}
