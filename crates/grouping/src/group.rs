use onex_tseries::stats::Welford;
use onex_tseries::SubseqRef;

/// Identifier of a group inside an [`crate::OnexBase`]: the subsequence
/// length plus the group's index within that length's group list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId {
    /// Subsequence length of every member.
    pub len: u32,
    /// Index within the per-length group vector.
    pub index: u32,
}

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}@{}", self.index, self.len)
    }
}

/// One ONEX similarity group: same-length subsequences that passed the
/// `ST/2` Euclidean admission test against the representative.
#[derive(Debug, Clone)]
pub struct SimilarityGroup {
    representative: Vec<f64>,
    members: Vec<SubseqRef>,
    /// Largest admission distance observed — a certified radius under the
    /// `Seed` policy, an estimate under `Centroid`.
    max_insert_dist: f64,
    /// Spread of admission distances (for overview colouring and
    /// threshold recommendation diagnostics).
    spread: Welford,
}

/// Equality covers the group's *semantic* content — representative,
/// members, radius — and deliberately excludes the diagnostic `spread`
/// statistics, which persistence drops ([`crate::persist`] documents
/// the reconstruction as lossy for that field). A group that
/// round-tripped through disk equals the one that was saved.
impl PartialEq for SimilarityGroup {
    fn eq(&self, other: &Self) -> bool {
        self.representative == other.representative
            && self.members == other.members
            && self.max_insert_dist == other.max_insert_dist
    }
}

impl SimilarityGroup {
    /// Seed a new group from its first member.
    pub fn seed(first: SubseqRef, values: &[f64]) -> Self {
        let mut spread = Welford::new();
        spread.push(0.0);
        SimilarityGroup {
            representative: values.to_vec(),
            members: vec![first],
            max_insert_dist: 0.0,
            spread,
        }
    }

    /// Admit a member that passed the admission test at distance `dist`.
    /// When `centroid` is true the representative is updated to remain the
    /// running mean of all members.
    pub fn admit(&mut self, member: SubseqRef, values: &[f64], dist: f64, centroid: bool) {
        debug_assert_eq!(values.len(), self.representative.len());
        self.members.push(member);
        self.max_insert_dist = self.max_insert_dist.max(dist);
        self.spread.push(dist);
        if centroid {
            let k = self.members.len() as f64;
            for (r, &v) in self.representative.iter_mut().zip(values) {
                *r += (v - *r) / k;
            }
        }
    }

    /// The group's representative sequence (centroid or frozen seed).
    #[inline]
    pub fn representative(&self) -> &[f64] {
        &self.representative
    }

    /// Member references in admission order (the seed is first).
    #[inline]
    pub fn members(&self) -> &[SubseqRef] {
        &self.members
    }

    /// Number of members (≥ 1 — groups are never empty).
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.members.len()
    }

    /// Subsequence length of this group.
    #[inline]
    pub fn len(&self) -> usize {
        self.representative.len()
    }

    /// Groups are never empty; provided for clippy-idiomatic pairing with
    /// [`Self::len`], always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Largest admission distance observed (see field docs for caveats).
    #[inline]
    pub fn radius(&self) -> f64 {
        self.max_insert_dist
    }

    /// Mean admission distance — how tight the group is.
    pub fn mean_insert_dist(&self) -> f64 {
        self.spread.mean()
    }

    /// Reconstruct a group from persisted parts (see [`crate::persist`]).
    pub(crate) fn from_parts(
        representative: Vec<f64>,
        members: Vec<SubseqRef>,
        max_insert_dist: f64,
    ) -> Self {
        let mut spread = Welford::new();
        // The full distance stream is not persisted; seed the spread with
        // the radius so mean/std are defined (documented lossy field).
        spread.push(max_insert_dist);
        SimilarityGroup {
            representative,
            members,
            max_insert_dist,
            spread,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(start: u32) -> SubseqRef {
        SubseqRef::new(0, start, 3)
    }

    #[test]
    fn seed_starts_with_one_member() {
        let g = SimilarityGroup::seed(r(0), &[1.0, 2.0, 3.0]);
        assert_eq!(g.cardinality(), 1);
        assert_eq!(g.len(), 3);
        assert_eq!(g.representative(), &[1.0, 2.0, 3.0]);
        assert_eq!(g.radius(), 0.0);
        assert!(!g.is_empty());
    }

    #[test]
    fn centroid_policy_tracks_running_mean() {
        let mut g = SimilarityGroup::seed(r(0), &[0.0, 0.0]);
        g.admit(r(1), &[2.0, 4.0], 1.0, true);
        assert_eq!(g.representative(), &[1.0, 2.0]);
        g.admit(r(2), &[4.0, 2.0], 1.5, true);
        assert_eq!(g.representative(), &[2.0, 2.0]);
        assert_eq!(g.cardinality(), 3);
        assert_eq!(g.radius(), 1.5);
    }

    #[test]
    fn seed_policy_freezes_representative() {
        let mut g = SimilarityGroup::seed(r(0), &[0.0, 0.0]);
        g.admit(r(1), &[2.0, 4.0], 1.0, false);
        assert_eq!(g.representative(), &[0.0, 0.0]);
    }

    #[test]
    fn spread_statistics() {
        let mut g = SimilarityGroup::seed(r(0), &[0.0]);
        g.admit(r(1), &[1.0], 2.0, false);
        g.admit(r(2), &[1.0], 4.0, false);
        // Distances seen: 0 (seed), 2, 4.
        assert!((g.mean_insert_dist() - 2.0).abs() < 1e-12);
        assert_eq!(g.radius(), 4.0);
    }

    #[test]
    fn group_id_display() {
        let id = GroupId { len: 12, index: 3 };
        assert_eq!(id.to_string(), "g3@12");
    }
}
