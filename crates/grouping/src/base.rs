use std::collections::BTreeMap;

use onex_distance::ed;
use onex_tseries::Dataset;

use crate::sketch::SketchIndex;
use crate::{BaseConfig, GroupId, SimilarityGroup};

/// The finished ONEX base: similarity groups per subsequence length.
///
/// This is the compact structure the paper explores with DTW instead of
/// the raw data (§3.1–3.2). It is immutable after construction; the query
/// engine borrows it, and [`crate::persist`] round-trips it to disk.
///
/// The base also carries the L0 [`SketchIndex`] — *derived* data rebuilt
/// from the dataset via [`OnexBase::sync_sketches`] and excluded from
/// equality. Persistence format v2 stores the slabs verbatim so a loaded
/// base prunes immediately; format v1 drops them and the engine re-syncs.
#[derive(Debug, Clone)]
pub struct OnexBase {
    config: BaseConfig,
    groups: BTreeMap<usize, Vec<SimilarityGroup>>,
    source_series: usize,
    sketches: SketchIndex,
}

/// Equality is over the constructed index only; the derived sketch cache
/// never participates (a freshly loaded base equals its synced twin).
impl PartialEq for OnexBase {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.groups == other.groups
            && self.source_series == other.source_series
    }
}

impl OnexBase {
    pub(crate) fn from_parts(
        config: BaseConfig,
        groups: BTreeMap<usize, Vec<SimilarityGroup>>,
        source_series: usize,
    ) -> Self {
        OnexBase {
            config,
            groups,
            source_series,
            sketches: SketchIndex::default(),
        }
    }

    /// Re-attach a previously built sketch index (incremental extension
    /// carries the old sketches over and appends the new tail).
    pub(crate) fn with_sketches(mut self, sketches: SketchIndex) -> Self {
        self.sketches = sketches;
        self
    }

    /// Decompose for incremental extension (see `BaseBuilder::extend`).
    /// Sketches are dropped here; `extend` re-attaches them on success.
    pub(crate) fn into_parts(self) -> (BaseConfig, BTreeMap<usize, Vec<SimilarityGroup>>, usize) {
        (self.config, self.groups, self.source_series)
    }

    /// The raw per-length group map (sketch-sync tests).
    #[cfg(test)]
    pub(crate) fn raw_groups(&self) -> &BTreeMap<usize, Vec<SimilarityGroup>> {
        &self.groups
    }

    /// Install one length column — groups and, when the file carried
    /// them, the matching sketch slabs — into this base. The lazy
    /// cold-start path ([`crate::persist::BaseSegment::load_length`])
    /// resolves columns one at a time through this hook; replacing an
    /// already-installed length is idempotent by construction (the
    /// segment is immutable, so a re-decode yields identical parts).
    pub(crate) fn install_length(
        &mut self,
        len: usize,
        groups: Vec<SimilarityGroup>,
        sketches: Option<crate::LengthSketches>,
    ) {
        self.groups.insert(len, groups);
        if let Some(ls) = sketches {
            self.sketches.insert(len, ls);
        }
    }

    /// The L0 member sketches (empty until [`Self::sync_sketches`] runs).
    pub fn sketches(&self) -> &SketchIndex {
        &self.sketches
    }

    /// Bring the L0 sketch index up to date with the groups. Incremental
    /// and idempotent; builders call this on every construction path, and
    /// engines call it when re-attaching a persisted base to its dataset.
    pub fn sync_sketches(&mut self, dataset: &Dataset) {
        self.sketches.sync(dataset, &self.groups);
    }

    /// The configuration the base was built with.
    pub fn config(&self) -> &BaseConfig {
        &self.config
    }

    /// Number of series in the dataset the base was built over (sanity
    /// check when re-attaching a persisted base to a dataset).
    pub fn source_series(&self) -> usize {
        self.source_series
    }

    /// Indexed lengths, ascending.
    pub fn lengths(&self) -> impl Iterator<Item = usize> + '_ {
        self.groups.keys().copied()
    }

    /// Groups of one length (empty slice when the length is not indexed).
    pub fn groups_for_len(&self, len: usize) -> &[SimilarityGroup] {
        self.groups.get(&len).map_or(&[], |v| v.as_slice())
    }

    /// Group lookup by id.
    pub fn group(&self, id: GroupId) -> Option<&SimilarityGroup> {
        self.groups
            .get(&(id.len as usize))
            .and_then(|v| v.get(id.index as usize))
    }

    /// Iterate `(GroupId, group)` over the whole base.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, &SimilarityGroup)> {
        self.groups.iter().flat_map(|(&len, gs)| {
            gs.iter().enumerate().map(move |(i, g)| {
                (
                    GroupId {
                        len: len as u32,
                        index: i as u32,
                    },
                    g,
                )
            })
        })
    }

    /// The indexed lengths closest to `target`, nearest first, ties
    /// favouring the shorter length. The engine uses this to widen a query
    /// to neighbouring lengths.
    pub fn nearest_lengths(&self, target: usize, k: usize) -> Vec<usize> {
        let mut lens: Vec<usize> = self.groups.keys().copied().collect();
        lens.sort_by_key(|&l| (l.abs_diff(target), l));
        lens.truncate(k);
        lens
    }

    /// Aggregate statistics (experiment E7's table rows).
    pub fn stats(&self) -> BaseStats {
        let per_length: Vec<LengthStats> = self
            .groups
            .iter()
            .map(|(&len, gs)| LengthStats {
                len,
                groups: gs.len(),
                subsequences: gs.iter().map(|g| g.cardinality()).sum(),
                max_cardinality: gs.iter().map(|g| g.cardinality()).max().unwrap_or(0),
            })
            .collect();
        let groups = per_length.iter().map(|l| l.groups).sum();
        let members = per_length.iter().map(|l| l.subsequences).sum();
        BaseStats {
            groups,
            members,
            compaction: if groups == 0 {
                0.0
            } else {
                members as f64 / groups as f64
            },
            per_length,
        }
    }

    /// Audit the construction invariant against the source dataset: every
    /// member must lie within the admission radius of its group's
    /// representative. Exact under the `Seed` policy; under `Centroid` the
    /// representative drifted after admission, so violations measure the
    /// drift (paper practice accepts it; experiment E9 reports it).
    pub fn audit(&self, dataset: &Dataset) -> AuditReport {
        let mut report = AuditReport::default();
        for (&len, gs) in &self.groups {
            let admission = self.config.admission_radius(len);
            for g in gs {
                for &m in g.members() {
                    let Ok(xs) = dataset.resolve(m) else {
                        report.unresolvable += 1;
                        continue;
                    };
                    let d = ed(xs, g.representative());
                    report.members_checked += 1;
                    if d > admission + 1e-9 {
                        report.violations += 1;
                        report.worst_excess = report.worst_excess.max(d / admission);
                    }
                }
            }
        }
        report
    }
}

impl Default for OnexBase {
    /// An empty base over zero series (placeholder value for `mem::take`
    /// during incremental extension; not useful for queries).
    fn default() -> Self {
        OnexBase {
            config: BaseConfig::new(1.0, 2, 2),
            groups: BTreeMap::new(),
            source_series: 0,
            sketches: SketchIndex::default(),
        }
    }
}

/// Aggregate base statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseStats {
    /// Total groups across lengths.
    pub groups: usize,
    /// Total members (= subsequences indexed).
    pub members: usize,
    /// Members per group; the paper's data-reduction factor.
    pub compaction: f64,
    /// Per-length breakdown, ascending length.
    pub per_length: Vec<LengthStats>,
}

/// Statistics of one indexed length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthStats {
    /// Subsequence length.
    pub len: usize,
    /// Groups at this length.
    pub groups: usize,
    /// Subsequences at this length.
    pub subsequences: usize,
    /// Largest group cardinality (drives overview colour intensity).
    pub max_cardinality: usize,
}

/// Result of [`OnexBase::audit`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AuditReport {
    /// Members whose invariant was checked.
    pub members_checked: usize,
    /// Members farther than the admission radius from their representative.
    pub violations: usize,
    /// Largest `distance / admission_radius` among violations (1.0 = none).
    pub worst_excess: f64,
    /// Members whose reference no longer resolves in the dataset (always 0
    /// unless the base is paired with the wrong dataset).
    pub unresolvable: usize,
}

impl AuditReport {
    /// Fraction of members violating the invariant.
    pub fn violation_rate(&self) -> f64 {
        if self.members_checked == 0 {
            0.0
        } else {
            self.violations as f64 / self.members_checked as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseBuilder, RepresentativePolicy};
    use onex_tseries::gen::{random_walk_dataset, SyntheticConfig};

    fn base(policy: RepresentativePolicy) -> (OnexBase, Dataset) {
        let ds = random_walk_dataset(SyntheticConfig {
            series: 6,
            len: 36,
            seed: 9,
        });
        let cfg = BaseConfig {
            policy,
            ..BaseConfig::new(1.2, 6, 18)
        };
        let (b, _) = BaseBuilder::new(cfg).unwrap().build(&ds);
        (b, ds)
    }

    #[test]
    fn stats_are_consistent() {
        let (b, ds) = base(RepresentativePolicy::Centroid);
        let stats = b.stats();
        assert_eq!(
            stats.members,
            crate::SubsequenceSpace::new(&ds, b.config()).total()
        );
        assert!(stats.groups > 0 && stats.groups <= stats.members);
        assert!(stats.compaction >= 1.0);
        let sum: usize = stats.per_length.iter().map(|l| l.subsequences).sum();
        assert_eq!(sum, stats.members);
        for l in &stats.per_length {
            assert!(l.max_cardinality >= 1);
            assert!(l.groups <= l.subsequences);
        }
    }

    #[test]
    fn seed_policy_audits_clean() {
        let (b, ds) = base(RepresentativePolicy::Seed);
        let audit = b.audit(&ds);
        assert_eq!(audit.violations, 0, "{audit:?}");
        assert!(audit.members_checked > 0);
        assert_eq!(audit.unresolvable, 0);
        assert_eq!(audit.violation_rate(), 0.0);
    }

    #[test]
    fn centroid_policy_drift_is_bounded() {
        let (b, ds) = base(RepresentativePolicy::Centroid);
        let audit = b.audit(&ds);
        // Drift can produce violations, but the excess stays modest —
        // the centroid moves within the admission ball.
        assert!(
            audit.violation_rate() < 0.5,
            "drift rate {}",
            audit.violation_rate()
        );
        if audit.violations > 0 {
            assert!(audit.worst_excess < 3.0, "excess {}", audit.worst_excess);
        }
    }

    #[test]
    fn nearest_lengths_orders_by_distance() {
        let (b, _) = base(RepresentativePolicy::Centroid);
        let lens = b.nearest_lengths(10, 3);
        assert_eq!(lens[0], 10);
        assert_eq!(lens[1], 9, "tie between 9 and 11 favours shorter");
        assert_eq!(lens[2], 11);
        // Asking for more lengths than exist returns them all.
        let all = b.nearest_lengths(10, 1000);
        assert_eq!(all.len(), b.lengths().count());
    }

    #[test]
    fn group_lookup_round_trips() {
        let (b, _) = base(RepresentativePolicy::Centroid);
        for (id, g) in b.iter() {
            assert_eq!(b.group(id).unwrap(), g);
            assert_eq!(g.len(), id.len as usize);
        }
        assert!(b
            .group(GroupId {
                len: 9999,
                index: 0
            })
            .is_none());
        let first_len = b.lengths().next().unwrap();
        assert!(b
            .group(GroupId {
                len: first_len as u32,
                index: 1_000_000,
            })
            .is_none());
    }

    #[test]
    fn audit_flags_wrong_dataset() {
        let (b, _) = base(RepresentativePolicy::Seed);
        let wrong = Dataset::new();
        let audit = b.audit(&wrong);
        assert!(audit.unresolvable > 0);
        assert_eq!(audit.members_checked, 0);
    }

    #[test]
    fn empty_base_stats() {
        let b = OnexBase::from_parts(BaseConfig::new(1.0, 2, 4), BTreeMap::new(), 0);
        let s = b.stats();
        assert_eq!(s.groups, 0);
        assert_eq!(s.compaction, 0.0);
        assert!(b.groups_for_len(3).is_empty());
    }
}
