//! Versioned binary persistence for the ONEX base.
//!
//! The demo loads a dataset once ("with a click of a button") and explores
//! it across many sessions, so the expensive construction result must be
//! reusable. The format is deliberately simple: little-endian fixed-width
//! fields, a magic/version header, and an FNV-1a checksum over the payload
//! so truncation and corruption are detected rather than decoded into
//! garbage.
//!
//! ```text
//! magic  b"ONEXBASE"                        8 bytes
//! version u32                               (currently 1)
//! payload:
//!   config: st f64, min/max_len u32, stride u32, policy u8, normalized u8
//!   source_series u32
//!   n_lengths u32
//!   per length:
//!     len u32, n_groups u32
//!     per group:
//!       representative: len × f64
//!       radius f64
//!       n_members u32, members: (series u32, start u32) …
//! checksum u64 (FNV-1a over the payload bytes)
//! ```
//!
//! The group spread statistics (mean insert distance) are intentionally
//! not persisted — they are diagnostics, and [`SimilarityGroup`] documents
//! the reconstruction as lossy for that field.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use onex_tseries::SubseqRef;

use crate::{BaseConfig, OnexBase, RepresentativePolicy, SimilarityGroup};

const MAGIC: &[u8; 8] = b"ONEXBASE";
const VERSION: u32 = 1;

/// Errors from saving/loading a base.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not an ONEX base file.
    BadMagic,
    /// The file uses a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The checksum did not match — truncated or corrupted file.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// Structurally invalid content (bad enum tag, absurd count, ...).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not an ONEX base file (bad magic)"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported base version {v}"),
            PersistError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: file says {expected:#018x}, content is {actual:#018x}"
            ),
            PersistError::Corrupt(msg) => write!(f, "corrupt base file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// FNV-1a, 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| PersistError::Corrupt("unexpected end of payload".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Serialise a base to a writer.
pub fn save<W: Write>(base: &OnexBase, mut w: W) -> Result<(), PersistError> {
    let mut enc = Enc::new();
    let cfg = base.config();
    enc.f64(cfg.st);
    enc.u32(cfg.min_len as u32);
    enc.u32(cfg.max_len as u32);
    enc.u32(cfg.stride as u32);
    enc.u8(match cfg.policy {
        RepresentativePolicy::Centroid => 0,
        RepresentativePolicy::Seed => 1,
    });
    enc.u8(cfg.length_normalized as u8);
    enc.u32(base.source_series() as u32);

    let lengths: Vec<usize> = base.lengths().collect();
    enc.u32(lengths.len() as u32);
    for len in lengths {
        let groups = base.groups_for_len(len);
        enc.u32(len as u32);
        enc.u32(groups.len() as u32);
        for g in groups {
            debug_assert_eq!(g.representative().len(), len);
            for &v in g.representative() {
                enc.f64(v);
            }
            enc.f64(g.radius());
            enc.u32(g.members().len() as u32);
            for m in g.members() {
                enc.u32(m.series);
                enc.u32(m.start);
            }
        }
    }

    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&enc.buf)?;
    w.write_all(&fnv1a(&enc.buf).to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Deserialise a base from a reader.
pub fn load<R: Read>(mut r: R) -> Result<OnexBase, PersistError> {
    let mut all = Vec::new();
    r.read_to_end(&mut all)?;
    if all.len() < MAGIC.len() + 4 + 8 {
        return Err(PersistError::Corrupt("file too short".into()));
    }
    if &all[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(all[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let payload = &all[12..all.len() - 8];
    let expected = u64::from_le_bytes(all[all.len() - 8..].try_into().expect("8 bytes"));
    let actual = fnv1a(payload);
    if expected != actual {
        return Err(PersistError::ChecksumMismatch { expected, actual });
    }

    let mut dec = Dec::new(payload);
    let st = dec.f64()?;
    let min_len = dec.u32()? as usize;
    let max_len = dec.u32()? as usize;
    let stride = dec.u32()? as usize;
    let policy = match dec.u8()? {
        0 => RepresentativePolicy::Centroid,
        1 => RepresentativePolicy::Seed,
        other => {
            return Err(PersistError::Corrupt(format!(
                "unknown representative policy tag {other}"
            )))
        }
    };
    let length_normalized = match dec.u8()? {
        0 => false,
        1 => true,
        other => {
            return Err(PersistError::Corrupt(format!(
                "bad boolean tag {other} for length_normalized"
            )))
        }
    };
    let config = BaseConfig {
        st,
        min_len,
        max_len,
        stride,
        policy,
        length_normalized,
        // The lookup strategy is an execution hint, not part of the base's
        // semantics — it is not persisted and defaults on load.
        index: crate::IndexPolicy::default(),
    };
    config
        .validate()
        .map_err(|e| PersistError::Corrupt(format!("invalid config: {e}")))?;
    let source_series = dec.u32()? as usize;

    let n_lengths = dec.u32()? as usize;
    let mut groups = BTreeMap::new();
    for _ in 0..n_lengths {
        let len = dec.u32()? as usize;
        if len < 1 {
            return Err(PersistError::Corrupt("zero group length".into()));
        }
        let n_groups = dec.u32()? as usize;
        let mut gs = Vec::with_capacity(n_groups.min(1 << 20));
        for _ in 0..n_groups {
            let mut rep = Vec::with_capacity(len);
            for _ in 0..len {
                rep.push(dec.f64()?);
            }
            let radius = dec.f64()?;
            let n_members = dec.u32()? as usize;
            if n_members == 0 {
                return Err(PersistError::Corrupt("empty group".into()));
            }
            let mut members = Vec::with_capacity(n_members.min(1 << 20));
            for _ in 0..n_members {
                let series = dec.u32()?;
                let start = dec.u32()?;
                members.push(SubseqRef::new(series, start, len as u32));
            }
            gs.push(SimilarityGroup::from_parts(rep, members, radius));
        }
        if groups.insert(len, gs).is_some() {
            return Err(PersistError::Corrupt(format!("duplicate length {len}")));
        }
    }
    if !dec.done() {
        return Err(PersistError::Corrupt("trailing bytes in payload".into()));
    }
    Ok(OnexBase::from_parts(config, groups, source_series))
}

/// Save to a file path.
pub fn save_file(base: &OnexBase, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let f = std::fs::File::create(path)?;
    save(base, std::io::BufWriter::new(f))
}

/// Load from a file path.
pub fn load_file(path: impl AsRef<Path>) -> Result<OnexBase, PersistError> {
    let f = std::fs::File::open(path)?;
    load(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaseBuilder;
    use onex_tseries::gen::{random_walk_dataset, SyntheticConfig};

    fn sample_base() -> OnexBase {
        let ds = random_walk_dataset(SyntheticConfig {
            series: 5,
            len: 30,
            seed: 13,
        });
        let (b, _) = BaseBuilder::new(BaseConfig::new(1.0, 5, 12))
            .unwrap()
            .build(&ds);
        b
    }

    fn to_bytes(b: &OnexBase) -> Vec<u8> {
        let mut out = Vec::new();
        save(b, &mut out).unwrap();
        out
    }

    #[test]
    fn round_trip_preserves_structure() {
        let base = sample_base();
        let bytes = to_bytes(&base);
        let back = load(bytes.as_slice()).unwrap();
        assert_eq!(back.config(), base.config());
        assert_eq!(back.source_series(), base.source_series());
        assert_eq!(back.stats(), base.stats());
        for (id, g) in base.iter() {
            let g2 = back.group(id).unwrap();
            assert_eq!(g2.representative(), g.representative());
            assert_eq!(g2.members(), g.members());
            assert_eq!(g2.radius(), g.radius());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&sample_base());
        bytes[0] = b'X';
        assert!(matches!(
            load(bytes.as_slice()),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = to_bytes(&sample_base());
        bytes[8] = 99;
        assert!(matches!(
            load(bytes.as_slice()),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn detects_corruption_and_truncation() {
        let bytes = to_bytes(&sample_base());
        // Flip one payload byte.
        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xFF;
        assert!(matches!(
            load(corrupted.as_slice()),
            Err(PersistError::ChecksumMismatch { .. })
        ));
        // Truncate.
        let truncated = &bytes[..bytes.len() - 9];
        assert!(load(truncated).is_err());
        // Empty.
        assert!(load(&[][..]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("onex_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.onex");
        let base = sample_base();
        save_file(&base, &path).unwrap();
        let back = load_file(&path).unwrap();
        assert_eq!(back.stats(), base.stats());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let e = PersistError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(PersistError::BadMagic.to_string().contains("magic"));
    }
}
