use onex_tseries::{Dataset, SubseqRef};

use crate::BaseConfig;

/// The subsequence space of a dataset for a given configuration: every
/// `(series, start, len)` window with `len` in the configured range and
/// `start` a multiple of the stride.
///
/// The paper's challenge 1 is exactly the size of this space ("Given the
/// huge number of such subsequences, performing similarity comparisons
/// among them is impractical"); the base exists to compact it.
#[derive(Debug, Clone)]
pub struct SubsequenceSpace {
    min_len: usize,
    max_len: usize,
    stride: usize,
    /// Series lengths snapshot (the space is valid for the dataset it was
    /// derived from).
    series_lens: Vec<usize>,
}

impl SubsequenceSpace {
    /// Derive the space of `dataset` under `config`.
    pub fn new(dataset: &Dataset, config: &BaseConfig) -> Self {
        SubsequenceSpace {
            min_len: config.min_len,
            max_len: config.max_len,
            stride: config.stride,
            series_lens: dataset.iter().map(|(_, s)| s.len()).collect(),
        }
    }

    /// Lengths that have at least one subsequence, ascending.
    pub fn lengths(&self) -> Vec<usize> {
        let longest = self.series_lens.iter().copied().max().unwrap_or(0);
        (self.min_len..=self.max_len.min(longest))
            .filter(|&l| self.count_for_len(l) > 0)
            .collect()
    }

    /// Number of subsequences of exactly `len`.
    pub fn count_for_len(&self, len: usize) -> usize {
        (0..self.series_lens.len())
            .map(|sid| self.count_for_series_len(sid, len))
            .sum()
    }

    /// Number of windows of `len` in series `sid` (0 when the length is
    /// out of range or the series is too short). With
    /// [`Self::refs_for_series_len`], the single owner of the
    /// window-enumeration formula every construction path shares.
    pub fn count_for_series_len(&self, sid: usize, len: usize) -> usize {
        if len < self.min_len || len > self.max_len {
            return 0;
        }
        match self.series_lens.get(sid) {
            Some(&n) if n >= len => (n - len) / self.stride + 1,
            _ => 0,
        }
    }

    /// The windows of `len` in series `sid`, start-ascending.
    pub fn refs_for_series_len(
        &self,
        sid: usize,
        len: usize,
    ) -> impl Iterator<Item = SubseqRef> + '_ {
        let stride = self.stride;
        (0..self.count_for_series_len(sid, len))
            .map(move |k| SubseqRef::new(sid as u32, (k * stride) as u32, len as u32))
    }

    /// Total number of subsequences across all lengths — the cardinality
    /// the compaction ratio (experiment E7) is measured against.
    pub fn total(&self) -> usize {
        self.lengths().iter().map(|&l| self.count_for_len(l)).sum()
    }

    /// Iterate the references of one length, series-major then
    /// start-ascending. This order is part of the construction contract:
    /// sequential, parallel and incremental builds all consume it, which
    /// is what makes them bit-identical.
    pub fn refs_for_len(&self, len: usize) -> impl Iterator<Item = SubseqRef> + '_ {
        (0..self.series_lens.len()).flat_map(move |sid| self.refs_for_series_len(sid, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onex_tseries::TimeSeries;

    fn dataset() -> Dataset {
        Dataset::from_series(vec![
            TimeSeries::new("a", vec![0.0; 6]),
            TimeSeries::new("b", vec![0.0; 4]),
            TimeSeries::new("c", vec![0.0; 2]),
        ])
        .unwrap()
    }

    #[test]
    fn counts_match_enumeration() {
        let cfg = BaseConfig::new(1.0, 2, 5);
        let space = SubsequenceSpace::new(&dataset(), &cfg);
        for len in 2..=6 {
            let listed: Vec<_> = space.refs_for_len(len).collect();
            assert_eq!(listed.len(), space.count_for_len(len), "len={len}");
        }
        // len 2: a has 5, b has 3, c has 1 → 9.
        assert_eq!(space.count_for_len(2), 9);
        // len 5: only a, 2 windows.
        assert_eq!(space.count_for_len(5), 2);
        // len 6 is outside the configured range.
        assert_eq!(space.count_for_len(6), 0);
        assert_eq!(space.total(), 9 + 6 + 4 + 2);
        assert_eq!(space.lengths(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn stride_thins_the_space() {
        let cfg = BaseConfig {
            stride: 2,
            ..BaseConfig::new(1.0, 2, 3)
        };
        let space = SubsequenceSpace::new(&dataset(), &cfg);
        // len 2, stride 2: a → starts 0,2,4 (3), b → 0,2 (2), c → 0 (1).
        assert_eq!(space.count_for_len(2), 6);
        let refs: Vec<_> = space.refs_for_len(2).collect();
        assert!(refs.iter().all(|r| r.start % 2 == 0));
    }

    #[test]
    fn enumeration_order_is_series_major() {
        let cfg = BaseConfig::new(1.0, 3, 3);
        let space = SubsequenceSpace::new(&dataset(), &cfg);
        let refs: Vec<_> = space.refs_for_len(3).collect();
        let expected: Vec<SubseqRef> = vec![
            SubseqRef::new(0, 0, 3),
            SubseqRef::new(0, 1, 3),
            SubseqRef::new(0, 2, 3),
            SubseqRef::new(0, 3, 3),
            SubseqRef::new(1, 0, 3),
            SubseqRef::new(1, 1, 3),
        ];
        assert_eq!(refs, expected);
    }

    #[test]
    fn empty_dataset_is_empty_space() {
        let cfg = BaseConfig::new(1.0, 2, 8);
        let space = SubsequenceSpace::new(&Dataset::new(), &cfg);
        assert_eq!(space.total(), 0);
        assert!(space.lengths().is_empty());
    }

    #[test]
    fn max_len_clamps_to_longest_series() {
        let cfg = BaseConfig::new(1.0, 2, 100);
        let space = SubsequenceSpace::new(&dataset(), &cfg);
        assert_eq!(space.lengths().last(), Some(&6));
    }
}
