//! Property tests for the ONEX base construction invariants.

use onex_distance::ed;
use onex_grouping::{BaseBuilder, BaseConfig, IndexPolicy, RepresentativePolicy, SubsequenceSpace};
use onex_tseries::gen::{random_walk_dataset, SyntheticConfig};
use onex_tseries::{Dataset, TimeSeries};
use proptest::prelude::*;

fn small_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 6..20), 1..6).prop_map(|series| {
        Dataset::from_series(
            series
                .into_iter()
                .enumerate()
                .map(|(i, v)| TimeSeries::new(format!("s{i}"), v))
                .collect(),
        )
        .expect("unique names")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every subsequence of the space is a member of exactly one group.
    #[test]
    fn partition_property(ds in small_dataset(), st in 0.1f64..5.0) {
        let cfg = BaseConfig::new(st, 3, 8);
        let (base, _) = BaseBuilder::new(cfg.clone()).unwrap().build(&ds);
        let space = SubsequenceSpace::new(&ds, &cfg);
        let mut seen = std::collections::HashSet::new();
        for len in base.lengths() {
            for g in base.groups_for_len(len) {
                prop_assert!(g.cardinality() >= 1);
                for &m in g.members() {
                    prop_assert_eq!(m.len as usize, len);
                    prop_assert!(seen.insert(m), "subsequence in two groups");
                }
            }
        }
        prop_assert_eq!(seen.len(), space.total());
    }

    /// Under the Seed policy the ST/2 invariant is exact, which by the
    /// Euclidean triangle inequality makes any two members of one group
    /// at most ST apart.
    #[test]
    fn seed_policy_pairwise_guarantee(ds in small_dataset(), st in 0.2f64..4.0) {
        let cfg = BaseConfig {
            policy: RepresentativePolicy::Seed,
            ..BaseConfig::new(st, 3, 6)
        };
        let (base, _) = BaseBuilder::new(cfg).unwrap().build(&ds);
        prop_assert_eq!(base.audit(&ds).violations, 0);
        for len in base.lengths() {
            let pairwise = base.config().pairwise_threshold(len);
            for g in base.groups_for_len(len) {
                // All-pairs check on a sample (first vs all) is implied by
                // the invariant; verify the full guarantee on small groups.
                if g.cardinality() <= 6 {
                    let vals: Vec<&[f64]> = g
                        .members()
                        .iter()
                        .map(|&m| ds.resolve(m).unwrap())
                        .collect();
                    for i in 0..vals.len() {
                        for j in i + 1..vals.len() {
                            prop_assert!(
                                ed(vals[i], vals[j]) <= pairwise + 1e-9,
                                "pairwise ST violated"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Parallel construction is bit-identical to sequential.
    #[test]
    fn parallel_equals_sequential(ds in small_dataset(), st in 0.2f64..4.0, threads in 2usize..6) {
        let cfg = BaseConfig::new(st, 3, 8);
        let builder = BaseBuilder::new(cfg).unwrap();
        let (a, _) = builder.build(&ds);
        let (b, _) = builder.build_parallel(&ds, threads).unwrap();
        prop_assert_eq!(a, b);
    }

    /// A larger threshold never produces more groups (coarser quantisation).
    #[test]
    fn group_count_monotone_in_st(ds in small_dataset()) {
        let mut last = usize::MAX;
        for st in [0.1, 0.5, 2.0, 8.0] {
            let cfg = BaseConfig::new(st, 4, 6);
            let (_, report) = BaseBuilder::new(cfg).unwrap().build(&ds);
            prop_assert!(report.groups <= last, "st={st}: {} > {last}", report.groups);
            last = report.groups;
        }
    }

    /// Persistence round-trips every base exactly.
    #[test]
    fn persist_round_trip(ds in small_dataset(), st in 0.2f64..4.0) {
        let cfg = BaseConfig::new(st, 3, 7);
        let (base, _) = BaseBuilder::new(cfg).unwrap().build(&ds);
        let mut bytes = Vec::new();
        onex_grouping::persist::save(&base, &mut bytes).unwrap();
        let back = onex_grouping::persist::load(bytes.as_slice()).unwrap();
        prop_assert_eq!(back.stats(), base.stats());
        prop_assert_eq!(back.config(), base.config());
        for (id, g) in base.iter() {
            let g2 = back.group(id).unwrap();
            prop_assert_eq!(g2.representative(), g.representative());
            prop_assert_eq!(g2.members(), g.members());
        }
    }

    /// Format v2 round-trips are **byte-identical**: decode(encode(base))
    /// re-encodes to the same file image, the reloaded base equals the
    /// saved one, and the frozen sketch quantisation parameters survive —
    /// so appended members keep encoding under the same quantisation
    /// instead of rebuilding the L0 tier.
    #[test]
    fn v2_round_trip_is_byte_identical(ds in small_dataset(), st in 0.2f64..4.0) {
        let cfg = BaseConfig::new(st, 3, 7);
        let (mut base, _) = BaseBuilder::new(cfg).unwrap().build(&ds);
        base.sync_sketches(&ds);
        let bytes = onex_grouping::persist::save_v2(&base);
        let seg = onex_grouping::persist::BaseSegment::from_bytes(bytes.clone()).unwrap();
        let back = seg.load_all().unwrap();
        prop_assert_eq!(&back, &base);
        prop_assert_eq!(back.sketches(), base.sketches());
        for len in base.lengths() {
            let frozen = base.sketches().for_len(len).unwrap().params();
            prop_assert_eq!(back.sketches().for_len(len).unwrap().params(), frozen);
        }
        prop_assert_eq!(onex_grouping::persist::save_v2(&back), bytes);
    }

    /// Damage anywhere in a persisted file — either format, any single
    /// byte flipped or any truncation — is either *detected* (load
    /// fails) or *provably harmless* (the reloaded base is identical;
    /// v2 alignment padding is the only undetected region and it
    /// carries no data). Loading never panics and never allocates its
    /// way into garbage.
    #[test]
    fn corrupted_files_never_load_as_a_different_base(
        ds in small_dataset(),
        st in 0.3f64..3.0,
        v2 in any::<bool>(),
        flip_seed in any::<usize>(),
        bit in 0usize..8,
        cut_seed in any::<usize>(),
    ) {
        let cfg = BaseConfig::new(st, 3, 7);
        let (mut base, _) = BaseBuilder::new(cfg).unwrap().build(&ds);
        base.sync_sketches(&ds);
        let bytes = if v2 {
            onex_grouping::persist::save_v2(&base)
        } else {
            let mut out = Vec::new();
            onex_grouping::persist::save(&base, &mut out).unwrap();
            out
        };

        let mut flipped = bytes.clone();
        let at = flip_seed % flipped.len();
        flipped[at] ^= 1 << bit;
        if let Ok(back) = onex_grouping::persist::load(flipped.as_slice()) {
            prop_assert_eq!(&back, &base, "undetected flip at {} changed the base", at);
        }

        let truncated = &bytes[..cut_seed % bytes.len()];
        prop_assert!(
            onex_grouping::persist::load(truncated).is_err(),
            "truncation to {} bytes accepted", truncated.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental extension over a split dataset builds the same base as
    /// one batch build over the whole dataset — the demo's click-to-load
    /// path must not change what gets indexed.
    #[test]
    fn extend_equals_batch_build(ds in small_dataset(), st in 0.3f64..4.0) {
        let cfg = BaseConfig {
            policy: RepresentativePolicy::Seed,
            ..BaseConfig::new(st, 4, 8)
        };
        let builder = BaseBuilder::new(cfg).unwrap();
        let (batch, _) = builder.build(&ds);

        // Rebuild: first series only, then extend with the rest.
        let first = Dataset::from_series(vec![
            ds.series(0).unwrap().clone()
        ]).unwrap();
        let (partial, _) = builder.build(&first);
        let (extended, _) = builder.extend(&partial, &ds).unwrap();

        let (bs, es) = (batch.stats(), extended.stats());
        prop_assert_eq!(bs.members, es.members);
        prop_assert_eq!(bs.groups, es.groups);
        for (id, g) in batch.iter() {
            let g2 = extended.group(id).expect("same group ids");
            prop_assert_eq!(g.members(), g2.members(), "group {:?}", id);
            prop_assert_eq!(g.representative(), g2.representative());
        }
    }

    /// Extension refuses configuration mismatches and shrunk datasets
    /// instead of silently corrupting the base.
    #[test]
    fn extend_rejects_mismatches(ds in small_dataset(), st in 0.3f64..3.0) {
        let cfg = BaseConfig::new(st, 4, 8);
        let builder = BaseBuilder::new(cfg).unwrap();
        let (base, _) = builder.build(&ds);
        let other = BaseBuilder::new(BaseConfig::new(st + 1.0, 4, 8)).unwrap();
        prop_assert!(other.extend(&base, &ds).is_err());
        if ds.len() > 1 {
            let shrunk = Dataset::from_series(vec![ds.series(0).unwrap().clone()]).unwrap();
            prop_assert!(builder.extend(&base, &shrunk).is_err());
        }
    }

    /// A failed extend is observationally a no-op: the caller's base is
    /// bit-identical to its pre-call state after every rejected
    /// extension, and a subsequent successful extend from that base gives
    /// exactly what a never-failed extend would have — failure leaves no
    /// residue (extend builds aside and only swaps on success).
    #[test]
    fn failed_extend_is_observationally_a_no_op(
        ds in small_dataset(),
        st in 0.3f64..3.0,
        extra in prop::collection::vec(-10.0f64..10.0, 6..20),
    ) {
        let cfg = BaseConfig::new(st, 4, 8);
        let builder = BaseBuilder::new(cfg).unwrap();
        let (base, _) = builder.build(&ds);
        let pristine = base.clone();

        // Failure mode 1: configuration mismatch.
        let other = BaseBuilder::new(BaseConfig::new(st + 1.0, 4, 8)).unwrap();
        prop_assert!(other.extend(&base, &ds).is_err());
        prop_assert_eq!(&base, &pristine);

        // Failure mode 2: shrunk dataset.
        let shrunk = Dataset::new();
        prop_assert!(builder.extend(&base, &shrunk).is_err());
        prop_assert_eq!(&base, &pristine);

        // The surviving base extends exactly as an untouched one would.
        let mut grown = ds.clone();
        grown.push(TimeSeries::new("appended", extra)).unwrap();
        let (after_failures, _) = builder.extend(&base, &grown).unwrap();
        let (clean, _) = builder.extend(&pristine, &grown).unwrap();
        prop_assert_eq!(after_failures, clean);
    }
}

/// Random-walk collections: the hard-to-group regime where the base
/// barely compacts, groups ≈ subsequences, and the nearest-representative
/// lookup dominates construction — exactly where an index bug would bite.
fn walk_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..6, 12usize..40, 0u64..10_000)
        .prop_map(|(series, len, seed)| random_walk_dataset(SyntheticConfig { series, len, seed }))
}

fn policy_of(seed_policy: bool) -> RepresentativePolicy {
    if seed_policy {
        RepresentativePolicy::Seed
    } else {
        RepresentativePolicy::Centroid
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Construction through the VP-tree (and Auto) index is byte-identical
    /// to the linear-scan reference, under both representative policies.
    #[test]
    fn indexed_construction_equals_linear_scan(
        ds in walk_dataset(),
        st in 0.2f64..3.0,
        seed_policy in any::<bool>(),
    ) {
        let cfg = BaseConfig {
            policy: policy_of(seed_policy),
            ..BaseConfig::new(st, 4, 9)
        };
        let (reference, _) = BaseBuilder::new(BaseConfig {
            index: IndexPolicy::Linear,
            ..cfg.clone()
        }).unwrap().build(&ds);
        for index in [IndexPolicy::VpTree, IndexPolicy::Auto] {
            let (indexed, _) = BaseBuilder::new(BaseConfig {
                index,
                ..cfg.clone()
            }).unwrap().build(&ds);
            prop_assert_eq!(&indexed, &reference, "index policy {}", index);
        }
    }

    /// Incremental extension through the index matches the linear
    /// reference too: extending a base built with either policy, with
    /// either lookup, lands every new subsequence in the same group.
    #[test]
    fn indexed_extend_equals_linear_scan(
        ds in walk_dataset(),
        st in 0.3f64..3.0,
        seed_policy in any::<bool>(),
    ) {
        prop_assume!(ds.len() >= 2);
        let cfg = BaseConfig {
            policy: policy_of(seed_policy),
            ..BaseConfig::new(st, 4, 9)
        };
        let first = Dataset::from_series(vec![ds.series(0).unwrap().clone()]).unwrap();
        let (partial, _) = BaseBuilder::new(cfg.clone()).unwrap().build(&first);
        let (reference, _) = BaseBuilder::new(BaseConfig {
            index: IndexPolicy::Linear,
            ..cfg.clone()
        }).unwrap().extend(&partial, &ds).unwrap();
        for index in [IndexPolicy::VpTree, IndexPolicy::Auto] {
            let (extended, _) = BaseBuilder::new(BaseConfig {
                index,
                ..cfg.clone()
            }).unwrap().extend(&partial, &ds).unwrap();
            prop_assert_eq!(&extended, &reference, "index policy {}", index);
        }
    }
}
