//! Property tests pinning SPRING to its exactness guarantees: the
//! streaming monitor must agree with a brute-force subsequence-DTW scan
//! on arbitrary inputs, and its reports must be disjoint and faithful.

use onex_distance::{dtw, Band};
use onex_spring::{spring_best_match, spring_search, SpringMonitor};
use proptest::prelude::*;

/// Brute-force optimal subsequence DTW over all (start, end) windows.
fn brute_best(stream: &[f64], query: &[f64]) -> (usize, usize, f64) {
    let mut best = (0, 0, f64::INFINITY);
    for s in 0..stream.len() {
        for e in s..stream.len() {
            let d = dtw(&stream[s..=e], query, Band::Full);
            if d < best.2 {
                best = (s, e, d);
            }
        }
    }
    best
}

fn small_values(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The streaming best match equals the brute-force optimum (distance
    /// always; location whenever the optimum is unique enough to compare).
    #[test]
    fn best_match_distance_matches_brute_force(
        stream in small_values(1..18),
        query in small_values(1..6),
    ) {
        let got = spring_best_match(&stream, &query).unwrap();
        let (_, _, bd) = brute_best(&stream, &query);
        prop_assert!((got.dist - bd).abs() < 1e-9,
            "spring {} brute {}", got.dist, bd);
        // The reported range must actually achieve the reported distance.
        let real = dtw(&stream[got.start..=got.end], &query, Band::Full);
        prop_assert!((real - got.dist).abs() < 1e-9);
    }

    /// Every reported match is within threshold and reports are pairwise
    /// disjoint. Distances are valid warping-path costs of the reported
    /// range — so never *below* the true DTW — and the first report
    /// (computed before any cell invalidation) is exactly the true DTW.
    #[test]
    fn thresholded_reports_are_faithful_and_disjoint(
        stream in small_values(1..24),
        query in small_values(1..5),
        eps in 0.1f64..4.0,
    ) {
        let hits = spring_search(&stream, &query, eps).unwrap();
        for (i, h) in hits.iter().enumerate() {
            prop_assert!(h.dist <= eps + 1e-12);
            let real = dtw(&stream[h.start..=h.end], &query, Band::Full);
            // Reported cost is achieved by an admissible path, hence an
            // upper bound of the true DTW; after an earlier report the
            // surviving paths exclude the reported region (the paper's
            // cell-invalidation), so it may sit strictly above.
            prop_assert!(real <= h.dist + 1e-9,
                "reported {} below true DTW {}", h.dist, real);
            if i == 0 {
                prop_assert!((real - h.dist).abs() < 1e-9,
                    "first report {} should be exact, true {}", h.dist, real);
            }
        }
        for i in 1..hits.len() {
            prop_assert!(hits[i - 1].end < hits[i].start,
                "overlap: {:?} then {:?}", hits[i - 1], hits[i]);
        }
    }

    /// If the brute-force optimum is within the threshold, SPRING reports
    /// at least one match at (or below, for an overlapping better) that
    /// distance.
    #[test]
    fn no_false_dismissal_of_the_optimum(
        stream in small_values(2..16),
        query in small_values(1..5),
    ) {
        let (_, _, bd) = brute_best(&stream, &query);
        // Pick a threshold safely above the optimum.
        let eps = bd + 0.5;
        let hits = spring_search(&stream, &query, eps).unwrap();
        prop_assert!(!hits.is_empty());
        let best_reported = hits.iter().map(|h| h.dist).fold(f64::INFINITY, f64::min);
        prop_assert!(best_reported <= bd + 1e-9,
            "best reported {} vs optimum {}", best_reported, bd);
    }

    /// Incremental pushes and batch search agree exactly.
    #[test]
    fn streaming_equals_batch(
        stream in small_values(0..20),
        query in small_values(1..5),
        eps in 0.1f64..3.0,
    ) {
        let batch = spring_search(&stream, &query, eps).unwrap();
        let mut mon = SpringMonitor::new(&query, eps).unwrap();
        let mut inc = Vec::new();
        for &x in &stream {
            inc.extend(mon.push(x));
        }
        inc.extend(mon.finish());
        prop_assert_eq!(batch, inc);
    }
}
