//! # onex-spring — the SPRING streaming-DTW baseline
//!
//! A clean-room Rust implementation of SPRING from Sakurai, Faloutsos and
//! Yamamuro, *Stream monitoring under the time warping distance*
//! (ICDE 2007) — reference \[7\] of the ONEX demo paper and the exact-answer
//! state of the art it cites ("some provide an exact or a highly accurate
//! solution \[7\] at the expense of responsiveness").
//!
//! SPRING solves **subsequence** DTW matching over an unbounded stream:
//! given a fixed query pattern `Y` of length `m` and a stream
//! `x₁, x₂, …`, report every subsequence `x[ts..=te]` whose DTW distance
//! to `Y` is within a threshold `ε`, using O(m) time and space per
//! arriving point and reporting each *locally optimal, disjoint* match as
//! soon as it can be proven optimal.
//!
//! The two ideas from the paper:
//!
//! 1. **Star-padding / STWM.** The subsequence time-warping matrix sets
//!    row 0 to zero everywhere, so a warping path may *start* at any
//!    stream position for free. Each cell carries its path's starting
//!    position `S(t, i)` alongside its cost `D(t, i)`, so when the last
//!    row reports a match we know where it began without back-tracking.
//! 2. **Disjoint optimal reporting.** A candidate match (the best
//!    threshold-passing end cell seen so far) is reported only once every
//!    live cell either costs more than the candidate or starts *after*
//!    the candidate ends — at that point no future subsequence
//!    overlapping the candidate can beat it, so it is safe to emit and
//!    the overlapping cells are invalidated.
//!
//! Distances follow the workspace convention: the L2 family with the
//! square root applied at reporting time, so thresholds are directly
//! comparable with [`onex_distance::dtw()`] and with ONEX similarity
//! thresholds. Internally everything is kept in the squared domain.
//!
//! ## Role in the reproduction
//!
//! Experiment E10 contrasts three ways of monitoring a stream for a
//! pattern: SPRING (this crate, exact unconstrained DTW, O(m)/point),
//! re-running the UCR Suite over a sliding window, and re-querying an
//! incrementally extended ONEX base. SPRING is exact but answers only the
//! single-pattern monitoring question; ONEX answers ad-hoc exploratory
//! queries — the contrast the demo paper's state-of-the-art section draws.
//!
//! ```
//! use onex_spring::SpringMonitor;
//!
//! // Query pattern: a ramp. Stream: noise, then the ramp, then noise.
//! let query = [0.0, 1.0, 2.0, 3.0];
//! let mut mon = SpringMonitor::new(&query, 0.5).unwrap();
//! let stream = [9.0, 9.0, 0.0, 1.0, 2.0, 3.0, 9.0, 9.0];
//! let mut matches = Vec::new();
//! for (_t, &x) in stream.iter().enumerate() {
//!     matches.extend(mon.push(x));
//! }
//! matches.extend(mon.finish());
//! assert_eq!(matches.len(), 1);
//! assert_eq!((matches[0].start, matches[0].end), (2, 5));
//! assert!(matches[0].dist <= 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod monitor;
mod multi;

pub use monitor::{spring_best_match, spring_search, SpringMatch, SpringMonitor, SpringStats};
pub use multi::{MultiMonitor, TaggedMatch};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_shape() {
        let query = [0.0, 1.0, 2.0, 3.0];
        let stream = [9.0, 9.0, 0.0, 1.0, 2.0, 3.0, 9.0, 9.0];
        let hits = spring_search(&stream, &query, 0.5).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].start, hits[0].end), (2, 5));
    }
}
