//! Monitoring several patterns over one stream.
//!
//! The SPRING paper's motivating deployment watches a whole *catalogue*
//! of patterns over one sensor feed; since each pattern's STWM is
//! independent, a multi-monitor is a bank of [`SpringMonitor`]s sharing
//! the stream pass — O(Σ mₖ) per point, one cache-friendly sweep.

use crate::monitor::{SpringMatch, SpringMonitor, SpringStats};

/// A match tagged with the pattern that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedMatch {
    /// Index of the pattern within the monitor bank.
    pub pattern: usize,
    /// The underlying match.
    pub m: SpringMatch,
}

/// Bank of SPRING monitors over a single stream.
///
/// ```
/// use onex_spring::MultiMonitor;
///
/// let mut bank = MultiMonitor::new();
/// bank.add_pattern(&[0.0, 1.0, 2.0], 0.5).unwrap();
/// bank.add_pattern(&[5.0, 5.0], 0.5).unwrap();
/// let stream = [9.0, 0.0, 1.0, 2.0, 9.0, 5.0, 5.0, 9.0];
/// let mut hits = Vec::new();
/// for &x in &stream {
///     hits.extend(bank.push(x));
/// }
/// hits.extend(bank.finish());
/// assert!(hits.iter().any(|h| h.pattern == 0));
/// assert!(hits.iter().any(|h| h.pattern == 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultiMonitor {
    monitors: Vec<SpringMonitor>,
}

impl MultiMonitor {
    /// An empty bank.
    pub fn new() -> Self {
        MultiMonitor::default()
    }

    /// Add one pattern with its own threshold; returns its index.
    ///
    /// `None` under the same conditions as [`SpringMonitor::new`]. The
    /// bank is unchanged in that case.
    pub fn add_pattern(&mut self, pattern: &[f64], epsilon: f64) -> Option<usize> {
        let mon = SpringMonitor::new(pattern, epsilon)?;
        self.monitors.push(mon);
        Some(self.monitors.len() - 1)
    }

    /// Number of monitored patterns.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Consume one stream point in every monitor; returns all matches
    /// confirmed by this point (at most one per pattern).
    pub fn push(&mut self, x: f64) -> Vec<TaggedMatch> {
        let mut out = Vec::new();
        for (k, mon) in self.monitors.iter_mut().enumerate() {
            if let Some(m) = mon.push(x) {
                out.push(TaggedMatch { pattern: k, m });
            }
        }
        out
    }

    /// Flush every pending candidate at end of stream.
    pub fn finish(&mut self) -> Vec<TaggedMatch> {
        let mut out = Vec::new();
        for (k, mon) in self.monitors.iter_mut().enumerate() {
            if let Some(m) = mon.finish() {
                out.push(TaggedMatch { pattern: k, m });
            }
        }
        out
    }

    /// Per-pattern work counters.
    pub fn stats(&self) -> Vec<SpringStats> {
        self.monitors.iter().map(|m| m.stats()).collect()
    }

    /// Reset every monitor, keeping the patterns.
    pub fn reset(&mut self) {
        for m in &mut self.monitors {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::spring_search;

    #[test]
    fn bank_agrees_with_individual_monitors() {
        let stream: Vec<f64> = (0..80).map(|i| (i as f64 * 0.4).sin() * 3.0).collect();
        let patterns: Vec<Vec<f64>> = vec![
            stream[10..16].to_vec(),
            stream[30..42].to_vec(),
            vec![100.0, 100.0], // never matches
        ];
        let mut bank = MultiMonitor::new();
        for p in &patterns {
            bank.add_pattern(p, 0.8).unwrap();
        }
        let mut got: Vec<Vec<SpringMatch>> = vec![Vec::new(); patterns.len()];
        for &x in &stream {
            for t in bank.push(x) {
                got[t.pattern].push(t.m);
            }
        }
        for t in bank.finish() {
            got[t.pattern].push(t.m);
        }
        for (k, p) in patterns.iter().enumerate() {
            let solo = spring_search(&stream, p, 0.8).unwrap();
            assert_eq!(got[k], solo, "pattern {k} disagrees with solo run");
        }
        assert!(got[2].is_empty());
    }

    #[test]
    fn rejects_invalid_patterns_without_corrupting_bank() {
        let mut bank = MultiMonitor::new();
        assert_eq!(bank.add_pattern(&[1.0], 0.5), Some(0));
        assert_eq!(bank.add_pattern(&[], 0.5), None);
        assert_eq!(bank.add_pattern(&[2.0], f64::NAN), None);
        assert_eq!(bank.add_pattern(&[3.0], 0.5), Some(1));
        assert_eq!(bank.len(), 2);
    }

    #[test]
    fn stats_track_each_pattern() {
        let mut bank = MultiMonitor::new();
        bank.add_pattern(&[0.0, 1.0], 0.1).unwrap();
        bank.add_pattern(&[0.0, 1.0, 2.0], 0.1).unwrap();
        for i in 0..10 {
            let _ = bank.push(i as f64);
        }
        let stats = bank.stats();
        assert_eq!(stats[0].cells, 10 * 2);
        assert_eq!(stats[1].cells, 10 * 3);
    }
}
