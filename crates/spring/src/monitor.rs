//! The SPRING subsequence time-warping matrix and its streaming monitor.

/// One reported stream subsequence matching the query under DTW.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpringMatch {
    /// Index of the first stream point of the match (0-based).
    pub start: usize,
    /// Index of the last stream point of the match (0-based, inclusive).
    pub end: usize,
    /// DTW distance between the subsequence and the query (root scale).
    pub dist: f64,
}

impl SpringMatch {
    /// Number of stream points covered by the match.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Always false: a match covers at least one point.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether this match shares any stream position with `other`.
    pub fn overlaps(&self, other: &SpringMatch) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// Work counters for a monitoring run, in units of matrix cells.
///
/// SPRING's selling point is that the per-point cost is exactly one STWM
/// column (`m` cells) regardless of stream length — these counters let the
/// benchmark harness verify that and compare against the quadratic
/// re-scan baselines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpringStats {
    /// Stream points consumed.
    pub points: usize,
    /// STWM cells updated (always `points * m`).
    pub cells: usize,
    /// Matches reported.
    pub matches: usize,
}

/// Streaming monitor reporting disjoint optimal DTW subsequence matches.
///
/// Feed points with [`push`](SpringMonitor::push); each call performs O(m)
/// work and returns at most one newly confirmed match. Call
/// [`finish`](SpringMonitor::finish) when the stream ends to flush a
/// still-pending candidate.
///
/// ## Reported distances
///
/// Each reported distance is the cost of a concrete admissible warping
/// path over the reported range, so it never undercuts the true DTW of
/// that range. For the *first* report it is exactly the true DTW. After a
/// report, cells whose paths overlap it are invalidated (the paper's
/// disjointness rule), so later reports minimise over paths disjoint from
/// everything already reported — their distance can sit above the
/// fresh-start DTW of the same range. The global minimum across all
/// reports is still the exact optimum (see [`spring_best_match`]): any
/// overlapping better subsequence would have blocked the report.
#[derive(Debug, Clone)]
pub struct SpringMonitor {
    query: Vec<f64>,
    /// Squared threshold; `f64::INFINITY` means "report only best matches
    /// chosen by [`spring_best_match`]-style callers".
    eps_sq: f64,
    /// Cost row `D(t, ·)` of the previous column (index 0 is the star row).
    d_prev: Vec<f64>,
    /// Start row `S(t, ·)` of the previous column.
    s_prev: Vec<usize>,
    /// Scratch rows for the current column.
    d_cur: Vec<f64>,
    s_cur: Vec<usize>,
    /// Best pending candidate: squared distance, start, end.
    dmin_sq: f64,
    cand_start: usize,
    cand_end: usize,
    /// Next stream position (number of points consumed so far).
    t: usize,
    stats: SpringStats,
}

impl SpringMonitor {
    /// Create a monitor for `query` with similarity threshold `epsilon`
    /// (root scale, like [`onex_distance::dtw()`]).
    ///
    /// Returns `None` if the query is empty, any query value is not
    /// finite, or `epsilon` is negative or NaN.
    pub fn new(query: &[f64], epsilon: f64) -> Option<Self> {
        if query.is_empty() || !query.iter().all(|v| v.is_finite()) {
            return None;
        }
        if epsilon.is_nan() || epsilon < 0.0 {
            return None;
        }
        let m = query.len();
        let eps_sq = if epsilon.is_infinite() {
            f64::INFINITY
        } else {
            epsilon * epsilon
        };
        let mut d_prev = vec![f64::INFINITY; m + 1];
        // The star cell of the virtual column before the stream lets the
        // very first point begin a path via the diagonal move.
        d_prev[0] = 0.0;
        Some(SpringMonitor {
            query: query.to_vec(),
            eps_sq,
            d_prev,
            s_prev: vec![0; m + 1],
            d_cur: vec![f64::INFINITY; m + 1],
            s_cur: vec![0; m + 1],
            dmin_sq: f64::INFINITY,
            cand_start: 0,
            cand_end: 0,
            t: 0,
            stats: SpringStats::default(),
        })
    }

    /// Query length `m`.
    pub fn query_len(&self) -> usize {
        self.query.len()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> SpringStats {
        self.stats
    }

    /// Whether a candidate match is pending (seen but not yet provably
    /// optimal and disjoint).
    pub fn has_pending(&self) -> bool {
        self.dmin_sq.is_finite() && self.dmin_sq <= self.eps_sq
    }

    /// Consume one stream point; returns a match confirmed by this point.
    ///
    /// Non-finite points poison the column they touch (cells become NaN
    /// and never report), matching the workspace's f64 semantics.
    pub fn push(&mut self, x: f64) -> Option<SpringMatch> {
        let m = self.query.len();
        let t = self.t;
        self.t += 1;
        self.stats.points += 1;
        self.stats.cells += m;

        // Star-padding: a path may start at the current position for free.
        // A path leaving a star cell first consumes the *current* point,
        // whether it leaves the same-column star vertically or the
        // previous column's star diagonally — so both carry start `t`.
        self.d_cur[0] = 0.0;
        self.s_cur[0] = t;
        self.s_prev[0] = t;
        for i in 1..=m {
            let d = x - self.query[i - 1];
            let cost = d * d;
            // Predecessors: left (t-1, i), diag (t-1, i-1), down (t, i-1).
            let left = self.d_prev[i];
            let diag = self.d_prev[i - 1];
            let down = self.d_cur[i - 1];
            let (best, src) = if diag <= left && diag <= down {
                (diag, self.s_prev[i - 1])
            } else if left <= down {
                (left, self.s_prev[i])
            } else {
                (down, self.s_cur[i - 1])
            };
            self.d_cur[i] = cost + best;
            self.s_cur[i] = src;
        }

        let mut reported = None;
        // Disjoint-optimality test: the pending candidate is safe to
        // report once every live cell either already costs at least the
        // candidate or belongs to a path starting after the candidate's
        // end. (Sakurai et al., Algorithm 1.)
        if self.has_pending() {
            let cand_end = self.cand_end;
            let dmin = self.dmin_sq;
            let safe = (0..=m).all(|i| self.d_cur[i] >= dmin || self.s_cur[i] > cand_end);
            if safe {
                reported = Some(SpringMatch {
                    start: self.cand_start,
                    end: cand_end,
                    dist: dmin.sqrt(),
                });
                self.stats.matches += 1;
                self.dmin_sq = f64::INFINITY;
                // Invalidate every path overlapping the reported match so
                // no future report re-covers it.
                for i in 1..=m {
                    if self.s_cur[i] <= cand_end {
                        self.d_cur[i] = f64::INFINITY;
                    }
                }
            }
        }

        // The end cell of the current column is a full alignment of the
        // query; adopt it as candidate if it beats the pending one.
        let end_cost = self.d_cur[m];
        if end_cost <= self.eps_sq && end_cost < self.dmin_sq {
            self.dmin_sq = end_cost;
            self.cand_start = self.s_cur[m];
            self.cand_end = t;
        }

        std::mem::swap(&mut self.d_prev, &mut self.d_cur);
        std::mem::swap(&mut self.s_prev, &mut self.s_cur);
        reported
    }

    /// Flush the pending candidate at end of stream, if any.
    pub fn finish(&mut self) -> Option<SpringMatch> {
        if self.has_pending() {
            let hit = SpringMatch {
                start: self.cand_start,
                end: self.cand_end,
                dist: self.dmin_sq.sqrt(),
            };
            self.dmin_sq = f64::INFINITY;
            self.stats.matches += 1;
            Some(hit)
        } else {
            None
        }
    }

    /// Reset the monitor to its initial state, keeping the query.
    pub fn reset(&mut self) {
        for v in &mut self.d_prev {
            *v = f64::INFINITY;
        }
        self.d_prev[0] = 0.0;
        self.dmin_sq = f64::INFINITY;
        self.t = 0;
        self.stats = SpringStats::default();
    }
}

/// Batch convenience: run [`SpringMonitor`] over a whole stream.
///
/// Returns all disjoint optimal matches with DTW distance ≤ `epsilon`, in
/// order of confirmation. `None` under the same conditions as
/// [`SpringMonitor::new`].
pub fn spring_search(stream: &[f64], query: &[f64], epsilon: f64) -> Option<Vec<SpringMatch>> {
    let mut mon = SpringMonitor::new(query, epsilon)?;
    let mut out = Vec::new();
    for &x in stream {
        out.extend(mon.push(x));
    }
    out.extend(mon.finish());
    Some(out)
}

/// The single best subsequence match in `stream` under unconstrained
/// subsequence DTW — SPRING with `ε = ∞` keeping the global minimum.
///
/// This is the streaming counterpart of a whole-matrix subsequence DTW
/// and the exact ground truth the E10 experiment measures baselines
/// against. `None` if the query is invalid or the stream is empty.
pub fn spring_best_match(stream: &[f64], query: &[f64]) -> Option<SpringMatch> {
    let mut mon = SpringMonitor::new(query, f64::INFINITY)?;
    if stream.is_empty() {
        return None;
    }
    let mut best: Option<SpringMatch> = None;
    let consider = |m: SpringMatch, best: &mut Option<SpringMatch>| {
        if best.is_none_or(|b| m.dist < b.dist) {
            *best = Some(m);
        }
    };
    for &x in stream {
        if let Some(m) = mon.push(x) {
            consider(m, &mut best);
        }
    }
    if let Some(m) = mon.finish() {
        consider(m, &mut best);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use onex_distance::{dtw, Band};

    /// Brute-force optimal subsequence DTW: minimum over all windows.
    fn brute_best(stream: &[f64], query: &[f64]) -> (usize, usize, f64) {
        let mut best = (0, 0, f64::INFINITY);
        for s in 0..stream.len() {
            for e in s..stream.len() {
                let d = dtw(&stream[s..=e], query, Band::Full);
                if d < best.2 {
                    best = (s, e, d);
                }
            }
        }
        best
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(SpringMonitor::new(&[], 1.0).is_none());
        assert!(SpringMonitor::new(&[1.0, f64::NAN], 1.0).is_none());
        assert!(SpringMonitor::new(&[1.0], -1.0).is_none());
        assert!(SpringMonitor::new(&[1.0], f64::NAN).is_none());
        assert!(SpringMonitor::new(&[1.0], 0.0).is_some());
        assert!(SpringMonitor::new(&[1.0], f64::INFINITY).is_some());
    }

    #[test]
    fn exact_embedded_pattern_found_at_zero_distance() {
        let query = [1.0, 3.0, 2.0, 4.0];
        let mut stream = vec![10.0; 5];
        stream.extend_from_slice(&query);
        stream.extend(vec![-10.0; 5]);
        let hits = spring_search(&stream, &query, 1e-9).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].start, hits[0].end), (5, 8));
        assert!(hits[0].dist <= 1e-9);
    }

    #[test]
    fn warped_pattern_matches_within_threshold() {
        // Time-warped instance: doubled points. DTW cost should be 0.
        let query = [0.0, 1.0, 2.0, 1.0, 0.0];
        let warped = [0.0, 0.0, 1.0, 2.0, 2.0, 1.0, 0.0];
        let mut stream = vec![5.0; 3];
        stream.extend_from_slice(&warped);
        stream.extend(vec![5.0; 3]);
        let hits = spring_search(&stream, &query, 1e-9).unwrap();
        assert_eq!(hits.len(), 1);
        // The doubled endpoints make several zero-cost ranges optimal
        // (e.g. with or without the second leading 0); any of them is a
        // correct answer as long as it sits inside the planted region and
        // really costs zero.
        assert!(hits[0].dist <= 1e-9);
        assert!(3 <= hits[0].start && hits[0].end == 9, "{:?}", hits[0]);
    }

    #[test]
    fn best_match_agrees_with_brute_force() {
        let query = [0.0, 2.0, 1.0];
        let stream = [3.0, 0.1, 2.2, 0.9, 3.0, 0.0, 1.9, 1.1, 4.0];
        let got = spring_best_match(&stream, &query).unwrap();
        let (bs, be, bd) = brute_best(&stream, &query);
        assert!(
            (got.dist - bd).abs() < 1e-9,
            "spring {} vs brute {}",
            got.dist,
            bd
        );
        assert_eq!((got.start, got.end), (bs, be));
    }

    #[test]
    fn matches_are_disjoint_and_within_threshold() {
        let query = [0.0, 1.0, 0.0];
        // Two planted occurrences separated by high plateaus.
        let stream = [
            9.0, 9.0, 0.0, 1.0, 0.0, 9.0, 9.0, 9.0, 0.1, 1.1, 0.1, 9.0, 9.0,
        ];
        let hits = spring_search(&stream, &query, 0.5).unwrap();
        assert_eq!(hits.len(), 2);
        for w in hits.windows(2) {
            assert!(!w[0].overlaps(&w[1]), "{:?} overlaps {:?}", w[0], w[1]);
        }
        for h in &hits {
            assert!(h.dist <= 0.5);
            let d = dtw(&stream[h.start..=h.end], &query, Band::Full);
            assert!((d - h.dist).abs() < 1e-9, "reported {} real {}", h.dist, d);
        }
    }

    #[test]
    fn reported_distance_is_exact_dtw_of_reported_range() {
        let query = [1.0, 2.0, 3.0, 2.0];
        let stream: Vec<f64> = (0..40).map(|i| ((i as f64) * 0.7).sin() * 3.0).collect();
        let hits = spring_search(&stream, &query, 2.0).unwrap();
        assert!(!hits.is_empty());
        for h in &hits {
            let d = dtw(&stream[h.start..=h.end], &query, Band::Full);
            assert!((d - h.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn no_matches_above_threshold() {
        let query = [0.0, 0.0, 0.0];
        let stream = [100.0, 100.0, 100.0, 100.0];
        let hits = spring_search(&stream, &query, 1.0).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn per_point_work_is_constant_in_stream_length() {
        let query = [0.0, 1.0, 2.0];
        let mut mon = SpringMonitor::new(&query, 1.0).unwrap();
        for i in 0..100 {
            let _ = mon.push((i as f64).sin());
        }
        let s = mon.stats();
        assert_eq!(s.points, 100);
        assert_eq!(s.cells, 100 * query.len());
    }

    #[test]
    fn finish_flushes_pending_candidate() {
        let query = [1.0, 2.0];
        // Match right at the end of the stream: can only be reported by finish().
        let stream = [9.0, 9.0, 1.0, 2.0];
        let mut mon = SpringMonitor::new(&query, 0.1).unwrap();
        let mut hits = Vec::new();
        for &x in &stream {
            hits.extend(mon.push(x));
        }
        assert!(hits.is_empty());
        assert!(mon.has_pending());
        let last = mon.finish().unwrap();
        assert_eq!((last.start, last.end), (2, 3));
        assert!(mon.finish().is_none());
    }

    #[test]
    fn reset_reuses_monitor() {
        let query = [0.0, 1.0];
        let mut mon = SpringMonitor::new(&query, 0.25).unwrap();
        let stream = [0.0, 1.0, 5.0];
        let mut first = Vec::new();
        for &x in &stream {
            first.extend(mon.push(x));
        }
        first.extend(mon.finish());
        mon.reset();
        let mut second = Vec::new();
        for &x in &stream {
            second.extend(mon.push(x));
        }
        second.extend(mon.finish());
        assert_eq!(first, second);
        assert_eq!(mon.stats().points, stream.len());
    }

    #[test]
    fn monitor_on_drifting_stream_tracks_multiple_occurrences() {
        // Plant k occurrences of a bump in a long noisy-ish stream and
        // check every plant is covered by exactly one reported match.
        let bump = [0.0, 2.0, 4.0, 2.0, 0.0];
        let mut stream = Vec::new();
        let mut plants = Vec::new();
        for rep in 0..4 {
            for i in 0..7 {
                stream.push(10.0 + ((rep * 7 + i) as f64 * 1.3).sin() * 0.2);
            }
            plants.push(stream.len());
            stream.extend_from_slice(&bump);
        }
        stream.extend(vec![10.0; 5]);
        let hits = spring_search(&stream, &bump, 1.0).unwrap();
        assert_eq!(hits.len(), plants.len(), "hits: {hits:?}");
        for (&p, h) in plants.iter().zip(&hits) {
            assert!(
                h.start <= p && p + bump.len() - 1 <= h.end + bump.len(),
                "plant at {p} not covered by {h:?}"
            );
        }
    }
}
