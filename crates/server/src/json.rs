//! A minimal JSON *writer* (no parser — the API only emits JSON).
//!
//! Values are built with [`Json`] and serialised with correct string
//! escaping and float formatting; non-finite floats serialise as `null`,
//! matching what JavaScript clients expect.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Any finite number (non-finite serialises as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: string value.
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Convenience: numeric value.
    pub fn n(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Convenience: object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serialise to a compact string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Integral values print without a fraction for
                    // readability; everything round-trips as f64.
                    if *v == v.trunc() && v.abs() < 1e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::s(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Json::s("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::s("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::s("naïve ✓").render(), "\"naïve ✓\"");
    }

    #[test]
    fn composites() {
        let v = Json::obj(vec![
            ("name", Json::s("MA")),
            ("values", Json::Arr(vec![Json::n(1.0), Json::n(2.5)])),
            ("ok", Json::Bool(false)),
        ]);
        assert_eq!(
            v.render(),
            "{\"name\":\"MA\",\"values\":[1,2.5],\"ok\":false}"
        );
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }
}
