//! A minimal JSON writer plus a small strict parser.
//!
//! Values are built with [`Json`] and serialised with correct string
//! escaping and float formatting; non-finite floats serialise as `null`,
//! matching what JavaScript clients expect. [`Json::parse`] is the
//! inverse — used by the end-to-end tests to assert the API really emits
//! parseable JSON, and small enough to keep the server dependency-free.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Any finite number (non-finite serialises as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: string value.
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Convenience: numeric value.
    pub fn n(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Convenience: object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serialise to a compact string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Integral values print without a fraction for
                    // readability; everything round-trips as f64.
                    if *v == v.trunc() && v.abs() < 1e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Why a JSON document failed to parse (byte-offset context included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a JSON document (strict: one value, nothing trailing).
    ///
    /// # Errors
    /// A human-readable description with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(text, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError(format!("trailing content at byte {pos}")));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError(format!("expected {:?} at byte {pos}", c as char)))
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError("unexpected end of input".into())),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(text, bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(JsonError(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            text[start..*pos]
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|_| JsonError(format!("invalid number at byte {start}")))
        }
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = text
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError("invalid \\u escape".into()))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let ch = text[*pos..].chars().next().expect("in bounds");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::s(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Json::s("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::s("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::s("naïve ✓").render(), "\"naïve ✓\"");
    }

    #[test]
    fn composites() {
        let v = Json::obj(vec![
            ("name", Json::s("MA")),
            ("values", Json::Arr(vec![Json::n(1.0), Json::n(2.5)])),
            ("ok", Json::Bool(false)),
        ]);
        assert_eq!(
            v.render(),
            "{\"name\":\"MA\",\"values\":[1,2.5],\"ok\":false}"
        );
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let v = Json::obj(vec![
            ("name", Json::s("MA \"quoted\" ✓")),
            ("values", Json::Arr(vec![Json::n(1.0), Json::n(-2.5e3)])),
            ("ok", Json::Bool(false)),
            ("none", Json::Null),
        ]);
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
