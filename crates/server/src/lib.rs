//! # onex-server — the demo's client–server architecture
//!
//! The paper demonstrates ONEX through a web interface backed by a server
//! that preprocesses collections and answers exploration queries "with
//! near real-time responsiveness" (§4). This crate is that server: a
//! deliberately small HTTP/1.1 implementation over `std::net` (no
//! external dependencies) exposing the engine's operations as JSON
//! endpoints and the visual-analytics views as SVG documents a browser
//! renders directly.
//!
//! | route | payload |
//! |---|---|
//! | `GET /` | HTML index linking every view |
//! | `GET /api/summary` | dataset + base statistics |
//! | `GET /api/series` | series names |
//! | `GET /api/match?series=&start=&len=&k=` | k best matches (JSON) |
//! | `GET /api/seasonal?series=` | recurring patterns (JSON) |
//! | `GET /api/threshold?len=` | recommended thresholds (JSON) |
//! | `GET /view/overview.svg?len=` | Fig 2 overview pane |
//! | `GET /view/preview.svg?series=&start=&len=` | Fig 2 query preview |
//! | `GET /view/match.svg?series=&start=&len=` | Fig 2 results pane |
//! | `GET /view/radial.svg?series=&start=&len=` | Fig 3a radial chart |
//! | `GET /view/scatter.svg?series=&start=&len=` | Fig 3b connected scatter |
//! | `GET /view/seasonal.svg?series=` | Fig 4 seasonal view |
//!
//! The request handler is a pure function ([`App::handle`]) so the whole
//! surface is unit-testable without sockets; [`App::serve`] adds the
//! blocking accept loop — the hardened worker-pool loop shared with the
//! binary shard server (`onex_net::serve_streams`): a fixed pool over a
//! bounded connection queue (a connection flood cannot exhaust OS
//! threads), exponential backoff, and an eventual typed failure on
//! persistent accept errors ([`ServeOptions`] tunes both).
//!
//! Connections are reused when the client opts in with
//! `Connection: keep-alive` (strictly opt-in; anything else stays
//! one-shot), with a short idle timeout so parked sockets cannot starve
//! the fixed pool.
//!
//! `?backend=cluster` on `/api/match` routes the query through an
//! [`onex_net::ClusterEngine`] over the shard servers configured with
//! [`App::with_cluster`] — unreachable shards surface as 502 Bad
//! Gateway, and responses carry the fleet's pool and gossip counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
pub mod http;
pub mod json;

pub use app::{App, ServeOptions};
