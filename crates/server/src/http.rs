//! A minimal HTTP/1.1 subset: GET requests in, status + headers + body
//! out. Enough for a localhost demo server; not a general web server.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// A parsed request: method, decoded path, and query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method (only `GET` is served; others get 405).
    pub method: String,
    /// Percent-decoded path, e.g. `/api/match`.
    pub path: String,
    /// Percent-decoded query parameters in order-independent form.
    pub query: Query,
    /// Whether the client asked to reuse the connection
    /// (`Connection: keep-alive`). Keep-alive is strictly opt-in: absent
    /// or any other value (including `close`) means one-shot.
    pub keep_alive: bool,
}

impl Request {
    /// Parse `"GET /path?a=1 HTTP/1.1"` plus headers from a reader.
    pub fn parse<R: Read>(stream: R) -> Result<Request, HttpError> {
        let mut reader = BufReader::new(stream);
        Request::read_from(&mut reader)?.ok_or(HttpError::BadRequest("empty request"))
    }

    /// Read the next request off a persistent connection. `Ok(None)` is a
    /// clean end-of-stream **between** requests (the peer hung up, which
    /// is how keep-alive connections normally end); garbage or truncation
    /// mid-request is still an error.
    pub fn read_from<R: Read>(reader: &mut BufReader<R>) -> Result<Option<Request>, HttpError> {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|_| HttpError::BadRequest("unreadable request line"))?;
        if n == 0 {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .ok_or(HttpError::BadRequest("missing method"))?
            .to_owned();
        let target = parts.next().ok_or(HttpError::BadRequest("missing path"))?;
        let _version = parts
            .next()
            .ok_or(HttpError::BadRequest("missing version"))?;
        // Drain headers up to the blank line; the only one the demo API
        // acts on is `Connection`.
        let mut keep_alive = false;
        loop {
            let mut h = String::new();
            let n = reader
                .read_line(&mut h)
                .map_err(|_| HttpError::BadRequest("unreadable header"))?;
            if n == 0 || h == "\r\n" || h == "\n" {
                break;
            }
            if let Some((name, value)) = h.split_once(':') {
                if name.trim().eq_ignore_ascii_case("connection") {
                    keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
                }
            }
        }
        let (path, query) = parse_target(target)?;
        Ok(Some(Request {
            method,
            path,
            query,
            keep_alive,
        }))
    }

    /// Build a request directly (tests and the pure handler).
    pub fn get(target: &str) -> Result<Request, HttpError> {
        let (path, query) = parse_target(target)?;
        Ok(Request {
            method: "GET".into(),
            path,
            query,
            keep_alive: false,
        })
    }

    /// Query parameter as string.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// Query parameter parsed to a type: `Ok(None)` when absent,
    /// `Err` when present but malformed — so handlers answer 400 with the
    /// offending value instead of silently falling back to a default.
    pub fn param_as<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, HttpError> {
        match self.param(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| HttpError(format!("parameter {name:?} has invalid value {v:?}"))),
        }
    }
}

/// Query parameters, percent-decoded, in order-independent form.
pub type Query = BTreeMap<String, String>;

fn parse_target(target: &str) -> Result<(String, Query), HttpError> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    let mut query = Query::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.insert(percent_decode(k)?, percent_decode(v)?);
        }
    }
    Ok((path, query))
}

/// Decode `%XX` escapes and `+` (as space, the form convention).
pub fn percent_decode(s: &str) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or(HttpError::BadRequest("truncated percent escape"))?;
                let hv = std::str::from_utf8(hex)
                    .ok()
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or(HttpError::BadRequest("invalid percent escape"))?;
                out.push(hv);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("non-utf8 after decoding"))
}

/// Protocol-level failure, mapped to 400 by the server loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError(pub String);

impl HttpError {
    #[allow(non_snake_case)]
    fn BadRequest(msg: impl Into<String>) -> Self {
        HttpError(msg.into())
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad request: {}", self.0)
    }
}

impl std::error::Error for HttpError {}

/// An HTTP response ready for serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Numeric status code.
    pub status: u16,
    /// MIME type of the body.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a JSON body.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// 200 with an SVG body.
    pub fn svg(body: String) -> Response {
        Response {
            status: 200,
            content_type: "image/svg+xml",
            body: body.into_bytes(),
        }
    }

    /// 200 with an HTML body.
    pub fn html(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: message.as_bytes().to_vec(),
        }
    }

    /// Serialise to the wire, closing the connection afterwards.
    pub fn write_to<W: Write>(&self, w: W) -> std::io::Result<()> {
        self.write_keep_alive_to(w, false)
    }

    /// Serialise to the wire, advertising `Connection: keep-alive` when
    /// the serving loop intends to read another request afterwards.
    pub fn write_keep_alive_to<W: Write>(&self, mut w: W, keep_alive: bool) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            422 => "Unprocessable Content",
            502 => "Bad Gateway",
            _ => "Internal Server Error",
        };
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            connection
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_line_and_query() {
        let raw = b"GET /api/match?series=MA-GrowthRate&start=4&len=8 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = Request::parse(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/api/match");
        assert_eq!(req.param("series"), Some("MA-GrowthRate"));
        assert_eq!(req.param_as::<usize>("start").unwrap(), Some(4));
        assert_eq!(req.param_as::<usize>("missing").unwrap(), None::<usize>);
    }

    #[test]
    fn malformed_numeric_params_are_errors_not_defaults() {
        let req = Request::get("/api/match?k=banana&len=8").unwrap();
        let err = req.param_as::<usize>("k").unwrap_err();
        assert!(err.to_string().contains("banana"), "{err}");
        assert!(err.to_string().contains("\"k\""), "{err}");
        assert_eq!(req.param_as::<usize>("len").unwrap(), Some(8));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").unwrap(), "a b c");
        assert_eq!(percent_decode("100%25").unwrap(), "100%");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%2").is_err());
    }

    #[test]
    fn get_helper_equals_parse() {
        let a = Request::get("/x?k=v").unwrap();
        let b = Request::parse(&b"GET /x?k=v HTTP/1.1\r\n\r\n"[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::parse(&b"\r\n"[..]).is_err());
        assert!(Request::parse(&b"GET\r\n"[..]).is_err());
        assert!(Request::parse(&b"GET /x\r\n"[..]).is_err());
    }

    #[test]
    fn keep_alive_is_strictly_opt_in() {
        let on = Request::parse(&b"GET /x HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n"[..]).unwrap();
        assert!(on.keep_alive);
        let off = Request::parse(&b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n"[..]).unwrap();
        assert!(!off.keep_alive);
        let absent = Request::parse(&b"GET /x HTTP/1.1\r\nHost: a\r\n\r\n"[..]).unwrap();
        assert!(!absent.keep_alive);
    }

    #[test]
    fn read_from_streams_pipelined_requests_then_none() {
        let wire = b"GET /a HTTP/1.1\r\nConnection: keep-alive\r\n\r\nGET /b?x=1 HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&wire[..]);
        let a = Request::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(a.path, "/a");
        assert!(a.keep_alive);
        let b = Request::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(b.path, "/b");
        assert_eq!(b.param("x"), Some("1"));
        assert!(!b.keep_alive);
        assert_eq!(Request::read_from(&mut reader).unwrap(), None);
    }

    #[test]
    fn keep_alive_responses_advertise_it() {
        let mut out = Vec::new();
        Response::json("{}".into())
            .write_keep_alive_to(&mut out, true)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Connection: keep-alive\r\n"), "{s}");
        let mut gw = Vec::new();
        Response::error(502, "shard down")
            .write_to(&mut gw)
            .unwrap();
        let s = String::from_utf8(gw).unwrap();
        assert!(s.starts_with("HTTP/1.1 502 Bad Gateway\r\n"), "{s}");
        assert!(s.contains("Connection: close\r\n"), "{s}");
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json("{\"ok\":true}".into())
            .write_to(&mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Type: application/json\r\n"));
        assert!(s.contains("Content-Length: 11\r\n"));
        assert!(s.ends_with("{\"ok\":true}"));
        let mut err = Vec::new();
        Response::error(404, "nope").write_to(&mut err).unwrap();
        assert!(String::from_utf8(err)
            .unwrap()
            .starts_with("HTTP/1.1 404 Not Found"));
    }
}
