//! A minimal HTTP/1.1 subset: GET requests in, status + headers + body
//! out. Enough for a localhost demo server; not a general web server.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// A parsed request: method, decoded path, and query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method (only `GET` is served; others get 405).
    pub method: String,
    /// Percent-decoded path, e.g. `/api/match`.
    pub path: String,
    /// Percent-decoded query parameters in order-independent form.
    pub query: Query,
}

impl Request {
    /// Parse `"GET /path?a=1 HTTP/1.1"` plus headers from a reader.
    /// Headers are consumed and discarded (the demo API needs none).
    pub fn parse<R: Read>(stream: R) -> Result<Request, HttpError> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|_| HttpError::BadRequest("unreadable request line"))?;
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .ok_or(HttpError::BadRequest("missing method"))?
            .to_owned();
        let target = parts.next().ok_or(HttpError::BadRequest("missing path"))?;
        let _version = parts
            .next()
            .ok_or(HttpError::BadRequest("missing version"))?;
        // Drain headers up to the blank line.
        loop {
            let mut h = String::new();
            let n = reader
                .read_line(&mut h)
                .map_err(|_| HttpError::BadRequest("unreadable header"))?;
            if n == 0 || h == "\r\n" || h == "\n" {
                break;
            }
        }
        let (path, query) = parse_target(target)?;
        Ok(Request {
            method,
            path,
            query,
        })
    }

    /// Build a request directly (tests and the pure handler).
    pub fn get(target: &str) -> Result<Request, HttpError> {
        let (path, query) = parse_target(target)?;
        Ok(Request {
            method: "GET".into(),
            path,
            query,
        })
    }

    /// Query parameter as string.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// Query parameter parsed to a type: `Ok(None)` when absent,
    /// `Err` when present but malformed — so handlers answer 400 with the
    /// offending value instead of silently falling back to a default.
    pub fn param_as<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, HttpError> {
        match self.param(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| HttpError(format!("parameter {name:?} has invalid value {v:?}"))),
        }
    }
}

/// Query parameters, percent-decoded, in order-independent form.
pub type Query = BTreeMap<String, String>;

fn parse_target(target: &str) -> Result<(String, Query), HttpError> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    let mut query = Query::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.insert(percent_decode(k)?, percent_decode(v)?);
        }
    }
    Ok((path, query))
}

/// Decode `%XX` escapes and `+` (as space, the form convention).
pub fn percent_decode(s: &str) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or(HttpError::BadRequest("truncated percent escape"))?;
                let hv = std::str::from_utf8(hex)
                    .ok()
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or(HttpError::BadRequest("invalid percent escape"))?;
                out.push(hv);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("non-utf8 after decoding"))
}

/// Protocol-level failure, mapped to 400 by the server loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError(pub String);

impl HttpError {
    #[allow(non_snake_case)]
    fn BadRequest(msg: impl Into<String>) -> Self {
        HttpError(msg.into())
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad request: {}", self.0)
    }
}

impl std::error::Error for HttpError {}

/// An HTTP response ready for serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Numeric status code.
    pub status: u16,
    /// MIME type of the body.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a JSON body.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// 200 with an SVG body.
    pub fn svg(body: String) -> Response {
        Response {
            status: 200,
            content_type: "image/svg+xml",
            body: body.into_bytes(),
        }
    }

    /// 200 with an HTML body.
    pub fn html(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: message.as_bytes().to_vec(),
        }
    }

    /// Serialise to the wire.
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            422 => "Unprocessable Content",
            _ => "Internal Server Error",
        };
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_line_and_query() {
        let raw = b"GET /api/match?series=MA-GrowthRate&start=4&len=8 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = Request::parse(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/api/match");
        assert_eq!(req.param("series"), Some("MA-GrowthRate"));
        assert_eq!(req.param_as::<usize>("start").unwrap(), Some(4));
        assert_eq!(req.param_as::<usize>("missing").unwrap(), None::<usize>);
    }

    #[test]
    fn malformed_numeric_params_are_errors_not_defaults() {
        let req = Request::get("/api/match?k=banana&len=8").unwrap();
        let err = req.param_as::<usize>("k").unwrap_err();
        assert!(err.to_string().contains("banana"), "{err}");
        assert!(err.to_string().contains("\"k\""), "{err}");
        assert_eq!(req.param_as::<usize>("len").unwrap(), Some(8));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").unwrap(), "a b c");
        assert_eq!(percent_decode("100%25").unwrap(), "100%");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%2").is_err());
    }

    #[test]
    fn get_helper_equals_parse() {
        let a = Request::get("/x?k=v").unwrap();
        let b = Request::parse(&b"GET /x?k=v HTTP/1.1\r\n\r\n"[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::parse(&b"\r\n"[..]).is_err());
        assert!(Request::parse(&b"GET\r\n"[..]).is_err());
        assert!(Request::parse(&b"GET /x\r\n"[..]).is_err());
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json("{\"ok\":true}".into())
            .write_to(&mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Type: application/json\r\n"));
        assert!(s.contains("Content-Length: 11\r\n"));
        assert!(s.ends_with("{\"ok\":true}"));
        let mut err = Vec::new();
        Response::error(404, "nope").write_to(&mut err).unwrap();
        assert!(String::from_utf8(err)
            .unwrap()
            .starts_with("HTTP/1.1 404 Not Found"));
    }
}
