use std::net::TcpListener;
use std::sync::Arc;

use onex_core::{LengthSelection, Onex, QueryOptions, SeasonalOptions};
use onex_viz::{
    ConnectedScatter, MultiLineChart, OverviewPane, QueryPreview, RadialChart, SeasonalView,
};

use crate::http::{Request, Response};
use crate::json::Json;

/// The ONEX demo application: routes requests to the engine.
#[derive(Clone)]
pub struct App {
    engine: Arc<Onex>,
}

impl App {
    /// Wrap an engine.
    pub fn new(engine: Arc<Onex>) -> App {
        App { engine }
    }

    /// Dispatch one request — pure (no I/O), hence directly testable.
    pub fn handle(&self, req: &Request) -> Response {
        if req.method != "GET" {
            return Response::error(405, "only GET is served");
        }
        match req.path.as_str() {
            "/" => self.index(),
            "/api/summary" => self.summary(),
            "/api/series" => self.series_list(),
            "/api/match" => self.match_api(req),
            "/api/seasonal" => self.seasonal_api(req),
            "/api/threshold" => self.threshold_api(req),
            "/api/monitor" => self.monitor_api(req),
            "/view/overview.svg" => self.overview_svg(req),
            "/view/preview.svg" => self.preview_svg(req),
            "/view/match.svg" => self.match_svg(req),
            "/view/radial.svg" => self.pair_svg(req, PairView::Radial),
            "/view/scatter.svg" => self.pair_svg(req, PairView::Scatter),
            "/view/seasonal.svg" => self.seasonal_svg(req),
            _ => Response::error(404, "no such route; see / for the index"),
        }
    }

    /// Serve forever on an already-bound listener (one thread per
    /// connection; the engine is `&self`-threaded).
    pub fn serve(self, listener: TcpListener) -> std::io::Result<()> {
        for stream in listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let app = self.clone();
            std::thread::spawn(move || {
                let peer = stream.try_clone();
                let response = match Request::parse(&stream) {
                    Ok(req) => app.handle(&req),
                    Err(e) => Response::error(400, &e.to_string()),
                };
                if let Ok(out) = peer {
                    let _ = response.write_to(out);
                }
            });
        }
        Ok(())
    }

    // ---- helpers -------------------------------------------------------

    fn query_window(&self, req: &Request) -> Result<(String, usize, usize, Vec<f64>), Response> {
        let series = req
            .param("series")
            .ok_or_else(|| Response::error(400, "missing ?series="))?
            .to_owned();
        let s = self
            .engine
            .dataset()
            .by_name(&series)
            .ok_or_else(|| Response::error(404, "unknown series"))?;
        let start: usize = req.param_as("start").unwrap_or(0);
        let len: usize = req.param_as("len").unwrap_or_else(|| s.len().min(8));
        let window = s
            .subsequence(start, len)
            .ok_or_else(|| Response::error(400, "window out of bounds"))?;
        Ok((series, start, len, window.to_vec()))
    }

    fn best_matches(
        &self,
        req: &Request,
        query: &[f64],
        series: &str,
        k: usize,
    ) -> Vec<onex_core::Match> {
        let mut opts = QueryOptions::default().lengths(LengthSelection::Nearest(3));
        if req.param("include_self") != Some("true") {
            opts = opts.excluding_series(self.engine.dataset().id_of(series));
        }
        let (matches, _) = self.engine.k_best(query, k.max(1), &opts);
        matches
    }

    // ---- routes --------------------------------------------------------

    fn index(&self) -> Response {
        let example = self
            .engine
            .dataset()
            .series(0)
            .map(|s| s.name().to_owned())
            .unwrap_or_default();
        let body = format!(
            "<!doctype html><html><head><title>ONEX</title></head><body>\
             <h1>ONEX — Online Exploration of Time Series</h1>\
             <p>{} loaded. Try:</p><ul>\
             <li><a href=\"/api/summary\">/api/summary</a></li>\
             <li><a href=\"/api/series\">/api/series</a></li>\
             <li><a href=\"/api/match?series={e}&amp;start=0&amp;len=8\">/api/match?series={e}</a></li>\
             <li><a href=\"/api/monitor?series={e}&amp;start=0&amp;len=8&amp;target={e}&amp;eps=1\">/api/monitor?series={e}&amp;target=…</a></li>\
             <li><a href=\"/view/overview.svg\">/view/overview.svg</a></li>\
             <li><a href=\"/view/match.svg?series={e}&amp;start=0&amp;len=8\">/view/match.svg?series={e}</a></li>\
             <li><a href=\"/view/seasonal.svg?series={e}\">/view/seasonal.svg?series={e}</a></li>\
             </ul></body></html>",
            self.engine.dataset().summary(),
            e = example
        );
        Response::html(body)
    }

    fn summary(&self) -> Response {
        let stats = self.engine.base().stats();
        let per_length: Vec<Json> = stats
            .per_length
            .iter()
            .map(|l| {
                Json::obj(vec![
                    ("len", l.len.into()),
                    ("groups", l.groups.into()),
                    ("subsequences", l.subsequences.into()),
                    ("max_cardinality", l.max_cardinality.into()),
                ])
            })
            .collect();
        let body = Json::obj(vec![
            ("series", self.engine.dataset().len().into()),
            ("samples", self.engine.dataset().total_samples().into()),
            ("groups", stats.groups.into()),
            ("members", stats.members.into()),
            ("compaction", stats.compaction.into()),
            ("per_length", Json::Arr(per_length)),
        ]);
        Response::json(body.render())
    }

    fn series_list(&self) -> Response {
        let names: Vec<Json> = self
            .engine
            .dataset()
            .iter()
            .map(|(_, s)| {
                Json::obj(vec![
                    ("name", Json::s(s.name())),
                    ("len", s.len().into()),
                    ("axis_start", s.axis().start.into()),
                    ("axis_step", s.axis().step.into()),
                ])
            })
            .collect();
        Response::json(Json::Arr(names).render())
    }

    fn match_api(&self, req: &Request) -> Response {
        let (series, _, _, query) = match self.query_window(req) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let k = req.param_as("k").unwrap_or(5);
        let matches = self.best_matches(req, &query, &series, k);
        let items: Vec<Json> = matches
            .iter()
            .map(|m| {
                Json::obj(vec![
                    ("series", Json::s(&m.series_name)),
                    ("start", (m.subseq.start as usize).into()),
                    ("len", (m.subseq.len as usize).into()),
                    ("dtw", m.distance.into()),
                    ("normalized", m.normalized.into()),
                    ("group", Json::s(m.group.to_string())),
                ])
            })
            .collect();
        Response::json(Json::Arr(items).render())
    }

    fn seasonal_api(&self, req: &Request) -> Response {
        let Some(series) = req.param("series") else {
            return Response::error(400, "missing ?series=");
        };
        let opts = SeasonalOptions {
            min_occurrences: req.param_as("min_occurrences").unwrap_or(2),
            max_patterns: req.param_as("max_patterns").unwrap_or(8),
            ..SeasonalOptions::default()
        };
        match self.engine.seasonal(series, &opts) {
            Ok(patterns) => {
                let items: Vec<Json> = patterns
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("len", p.len.into()),
                            ("count", p.count().into()),
                            ("tightness", p.tightness.into()),
                            (
                                "occurrences",
                                Json::Arr(
                                    p.occurrences
                                        .iter()
                                        .map(|o| (o.start as usize).into())
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                Response::json(Json::Arr(items).render())
            }
            Err(_) => Response::error(404, "unknown series"),
        }
    }

    fn threshold_api(&self, req: &Request) -> Response {
        let len = req.param_as("len").unwrap_or(8);
        match self.engine.recommend_threshold(len, 8000, 7) {
            Some(rec) => {
                let ladder: Vec<Json> = rec
                    .ladder
                    .iter()
                    .map(|&(q, t)| Json::obj(vec![("quantile", q.into()), ("st", t.into())]))
                    .collect();
                Response::json(
                    Json::obj(vec![
                        ("len", len.into()),
                        ("suggested", rec.suggested.into()),
                        ("pairs_sampled", rec.pairs_sampled.into()),
                        ("ladder", Json::Arr(ladder)),
                    ])
                    .render(),
                )
            }
            None => Response::error(400, "not enough data at that length"),
        }
    }

    /// SPRING stream monitoring (paper reference [7]) over a stored
    /// series: all disjoint subsequences of `target` within `eps` of the
    /// query window, exactly as a live monitor would have reported them.
    fn monitor_api(&self, req: &Request) -> Response {
        let (_, _, _, pattern) = match self.query_window(req) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let Some(target) = req.param("target") else {
            return Response::error(400, "missing ?target= (series to monitor)");
        };
        let Some(t) = self.engine.dataset().by_name(target) else {
            return Response::error(404, "unknown target series");
        };
        let eps: f64 = req.param_as("eps").unwrap_or(1.0);
        let Some(hits) = onex_spring::spring_search(t.values(), &pattern, eps) else {
            return Response::error(400, "invalid pattern or threshold");
        };
        let items: Vec<Json> = hits
            .iter()
            .map(|h| {
                Json::obj(vec![
                    ("start", h.start.into()),
                    ("end", h.end.into()),
                    ("dtw", h.dist.into()),
                ])
            })
            .collect();
        Response::json(
            Json::obj(vec![
                ("target", Json::s(target)),
                ("eps", eps.into()),
                ("matches", Json::Arr(items)),
            ])
            .render(),
        )
    }

    fn overview_svg(&self, req: &Request) -> Response {
        let len = req
            .param_as("len")
            .or_else(|| self.engine.base().lengths().next())
            .unwrap_or(8);
        let pane = OverviewPane::from_base(self.engine.base(), len, 24);
        Response::svg(pane.render())
    }

    fn preview_svg(&self, req: &Request) -> Response {
        let (series, start, len, _) = match self.query_window(req) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let s = self.engine.dataset().by_name(&series).expect("validated");
        Response::svg(QueryPreview::for_series(560, s).brush(start, len).render())
    }

    fn match_svg(&self, req: &Request) -> Response {
        let (series, _, _, query) = match self.query_window(req) {
            Ok(v) => v,
            Err(r) => return r,
        };
        match self.best_matches(req, &query, &series, 1).first() {
            Some(best) => Response::svg(
                MultiLineChart::for_match(&query, best, self.engine.dataset()).render(),
            ),
            None => Response::error(404, "no match found"),
        }
    }

    fn pair_svg(&self, req: &Request, view: PairView) -> Response {
        let (series, _, _, query) = match self.query_window(req) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let Some(best) = self
            .best_matches(req, &query, &series, 1)
            .into_iter()
            .next()
        else {
            return Response::error(404, "no match found");
        };
        let matched = self
            .engine
            .dataset()
            .resolve(best.subseq)
            .expect("match resolves")
            .to_vec();
        let title = format!("{} vs {}", series, best.series_name);
        let svg = match view {
            PairView::Radial => RadialChart::new(420, title)
                .add_series(&series, &query)
                .add_series(&best.series_name, &matched)
                .render(),
            PairView::Scatter => ConnectedScatter::new(420, title, &query, &matched)
                .with_path(&best.path)
                .render(),
        };
        Response::svg(svg)
    }

    fn seasonal_svg(&self, req: &Request) -> Response {
        let Some(series) = req.param("series") else {
            return Response::error(400, "missing ?series=");
        };
        let Some(s) = self.engine.dataset().by_name(series) else {
            return Response::error(404, "unknown series");
        };
        let patterns = self
            .engine
            .seasonal(series, &SeasonalOptions::default())
            .expect("series validated");
        let mut view = SeasonalView::new(900, format!("{series} — seasonal view"), s.values());
        for p in patterns.iter().take(3) {
            view = view.add_engine_pattern(p);
        }
        Response::svg(view.render())
    }
}

enum PairView {
    Radial,
    Scatter,
}

#[cfg(test)]
mod tests {
    use super::*;
    use onex_grouping::BaseConfig;
    use onex_tseries::gen::{matters_collection, Indicator, MattersConfig};

    fn app() -> App {
        let ds = matters_collection(&MattersConfig {
            indicators: vec![Indicator::GrowthRate],
            ..MattersConfig::default()
        });
        let (engine, _) = Onex::build(ds, BaseConfig::new(1.0, 6, 10)).unwrap();
        App::new(Arc::new(engine))
    }

    fn get(app: &App, target: &str) -> Response {
        app.handle(&Request::get(target).unwrap())
    }

    #[test]
    fn index_links_the_api() {
        let r = get(&app(), "/");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("/api/summary"));
        assert!(body.contains("ONEX"));
    }

    #[test]
    fn summary_reports_base_stats() {
        let r = get(&app(), "/api/summary");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"series\":50"), "{body}");
        assert!(body.contains("\"per_length\":["));
    }

    #[test]
    fn series_listing() {
        let r = get(&app(), "/api/series");
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"MA-GrowthRate\""));
        assert!(body.contains("\"axis_start\":2001"));
    }

    #[test]
    fn match_api_excludes_self_by_default() {
        let a = app();
        let r = get(&a, "/api/match?series=MA-GrowthRate&start=4&len=8&k=3");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(!body.contains("\"MA-GrowthRate\""), "{body}");
        assert_eq!(body.matches("\"dtw\":").count(), 3);
        // include_self=true lets the own window win.
        let r2 = get(
            &a,
            "/api/match?series=MA-GrowthRate&start=4&len=8&k=1&include_self=true",
        );
        let body2 = String::from_utf8(r2.body).unwrap();
        assert!(body2.contains("\"MA-GrowthRate\""));
        assert!(body2.contains("\"dtw\":0"));
    }

    #[test]
    fn monitor_api_reports_disjoint_matches() {
        let a = app();
        // Monitor a series for its own opening window: the verbatim
        // occurrence must be reported at distance ~0.
        let r = get(
            &a,
            "/api/monitor?series=MA-GrowthRate&start=0&len=6&target=MA-GrowthRate&eps=0.001",
        );
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"target\":\"MA-GrowthRate\""), "{body}");
        assert!(body.contains("\"start\":0"), "{body}");
        // Missing/unknown target are 4xx, not panics.
        assert_eq!(
            get(&a, "/api/monitor?series=MA-GrowthRate&start=0&len=6").status,
            400
        );
        assert_eq!(
            get(
                &a,
                "/api/monitor?series=MA-GrowthRate&start=0&len=6&target=Nope"
            )
            .status,
            404
        );
    }

    #[test]
    fn bad_requests_get_4xx() {
        let a = app();
        assert_eq!(get(&a, "/api/match").status, 400);
        assert_eq!(get(&a, "/api/match?series=Nowhere").status, 404);
        assert_eq!(
            get(&a, "/api/match?series=MA-GrowthRate&start=99&len=8").status,
            400
        );
        assert_eq!(get(&a, "/nope").status, 404);
        let mut post = Request::get("/").unwrap();
        post.method = "POST".into();
        assert_eq!(a.handle(&post).status, 405);
    }

    #[test]
    fn svg_views_render() {
        let a = app();
        for target in [
            "/view/overview.svg",
            "/view/overview.svg?len=8",
            "/view/preview.svg?series=MA-GrowthRate&start=6&len=8",
            "/view/match.svg?series=MA-GrowthRate&start=6&len=8",
            "/view/radial.svg?series=MA-GrowthRate&start=6&len=8",
            "/view/scatter.svg?series=MA-GrowthRate&start=6&len=8",
            "/view/seasonal.svg?series=MA-GrowthRate",
        ] {
            let r = get(&a, target);
            assert_eq!(r.status, 200, "{target}");
            assert_eq!(r.content_type, "image/svg+xml");
            let body = String::from_utf8(r.body).unwrap();
            assert!(body.starts_with("<svg"), "{target}");
        }
    }

    #[test]
    fn threshold_api() {
        let r = get(&app(), "/api/threshold?len=8");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"suggested\":"));
        assert!(body.contains("\"ladder\":["));
    }

    #[test]
    fn seasonal_api() {
        let a = app();
        let r = get(&a, "/api/seasonal?series=MA-GrowthRate");
        assert_eq!(r.status, 200);
        assert_eq!(get(&a, "/api/seasonal?series=zz").status, 404);
        assert_eq!(get(&a, "/api/seasonal").status, 400);
    }
}
