use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use onex_api::{DegradePolicy, Epoch, OnexError, SimilaritySearch, StreamingSearch};
use onex_core::backends::{
    CachedSearch, EbsmBackend, FrmBackend, OnexBackend, ShardedEngine, SpringBackend,
    UcrSuiteBackend,
};
use onex_core::{BuildReport, LengthSelection, Onex, QueryOptions, SeasonalOptions};
use onex_grouping::BaseConfig;
use onex_net::{ClusterConfig, ClusterEngine};
use onex_tseries::{Dataset, TimeSeries};
use onex_viz::{
    ConnectedScatter, MultiLineChart, OverviewPane, QueryPreview, RadialChart, SeasonalView,
};

use crate::http::{Request, Response};
use crate::json::Json;

/// One lazily-built baseline index, stamped with the engine epoch it was
/// built against. [`Slot::at`] returns the cached value while the engine
/// is still on that epoch and rebuilds it the first time it is asked for
/// a newer one — so after a live `/api/append` no `?backend=` route can
/// keep answering from the dataset the engine has outgrown (the staleness
/// bug the process-lifetime `OnceLock`s had). Building happens inside the
/// slot lock: concurrent first requests serialise instead of racing
/// duplicate index builds.
struct Slot<T>(Mutex<Option<(Epoch, Arc<T>)>>);

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Slot(Mutex::new(None))
    }
}

impl<T> Slot<T> {
    fn at(&self, epoch: Epoch, build: impl FnOnce() -> T) -> Arc<T> {
        let mut slot = self.0.lock().unwrap_or_else(|p| p.into_inner());
        match slot.as_ref() {
            Some((e, v)) if *e == epoch => Arc::clone(v),
            _ => {
                let built = Arc::new(build());
                *slot = Some((epoch, Arc::clone(&built)));
                built
            }
        }
    }
}

/// The baseline engines the `?backend=` parameter selects between.
/// Each index is built lazily on first use against the engine's
/// then-current epoch, so deployments that never ask for a baseline pay
/// nothing beyond the ONEX base itself — and deployments that ingest
/// live data get each baseline rebuilt on its next use after an append.
/// The caching decorator needs no epoch slot: [`CachedSearch`] tracks
/// the backend epoch itself and drops stale entries on the first lookup
/// after a bump, while its hit/miss counters survive for the process.
#[derive(Default)]
struct Baselines {
    ucr: Slot<UcrSuiteBackend>,
    frm: Slot<FrmBackend<4>>,
    ebsm: Slot<EbsmBackend>,
    spring: Slot<SpringBackend>,
    sharded: Slot<ShardedEngine>,
    cached: OnceLock<CachedSearch<OnexBackend>>,
}

/// How [`App::serve`] runs. The accept loop itself — a fixed worker pool
/// over a bounded connection queue with exponential accept backoff —
/// lives in `onex_net` now (the binary shard server runs the identical
/// loop); these options are its knobs under the server's historical name.
pub use onex_net::AcceptOptions as ServeOptions;

/// The shard servers a `?backend=cluster` request fans out over, plus
/// the lazily-established [`ClusterEngine`] talking to them. Connecting
/// is deferred to the first cluster request and retried on the next one
/// if it fails — the HTTP server must come up (and serve every local
/// backend) even while its shard fleet is still booting.
struct ClusterSlot {
    addrs: Vec<String>,
    engine: Mutex<Option<Arc<ClusterEngine>>>,
}

/// The ONEX demo application: routes requests to the engine and, through
/// the [`SimilaritySearch`] trait, to the baseline engines the paper
/// compares against.
#[derive(Clone)]
pub struct App {
    engine: Arc<Onex>,
    baselines: Arc<Baselines>,
    cluster: Option<Arc<ClusterSlot>>,
    /// Construction report of the dataset-load step, when this app loaded
    /// the dataset itself ([`App::build`]); reported by `/api/summary`.
    build: Option<BuildReport>,
}

impl App {
    /// Wrap an already-built engine. Baseline indexes are built on first
    /// use. No construction report is available on this path — prefer
    /// [`App::build`] when the server is the one loading the data.
    pub fn new(engine: Arc<Onex>) -> App {
        App {
            engine,
            baselines: Arc::new(Baselines::default()),
            cluster: None,
            build: None,
        }
    }

    /// Configure the shard servers `?backend=cluster` fans out over
    /// (round-robin partition, see `onex_net::ClusterEngine`). The
    /// connection is established lazily on the first cluster request and
    /// re-attempted on later requests if it fails, so a booting shard
    /// fleet never blocks HTTP startup.
    pub fn with_cluster<S: Into<String>>(mut self, addrs: Vec<S>) -> App {
        self.cluster = Some(Arc::new(ClusterSlot {
            addrs: addrs.into_iter().map(Into::into).collect(),
            engine: Mutex::new(None),
        }));
        self
    }

    /// Attach the construction report of an engine built elsewhere (the
    /// server binary builds its own when no base file covers startup) so
    /// `/api/summary` keeps reporting the preprocessing cost.
    pub fn with_build_report(mut self, report: BuildReport) -> App {
        self.build = Some(report);
        self
    }

    /// The demo's dataset-load path: preprocess `dataset` into the ONEX
    /// base (through the indexed builder [`BaseConfig::index`] selects —
    /// `Auto` by default) and remember the [`BuildReport`], including its
    /// work counters, for `/api/summary`.
    ///
    /// # Errors
    /// [`OnexError::InvalidConfig`] for an invalid configuration.
    pub fn build(dataset: Dataset, config: BaseConfig) -> Result<App, OnexError> {
        let (engine, report) = Onex::build(dataset, config)?;
        Ok(App {
            engine: Arc::new(engine),
            baselines: Arc::new(Baselines::default()),
            cluster: None,
            build: Some(report),
        })
    }

    /// The construction report of the load step, when this app built the
    /// engine itself.
    pub fn build_report(&self) -> Option<&BuildReport> {
        self.build.as_ref()
    }

    fn ucr(&self) -> Arc<UcrSuiteBackend> {
        let snap = self.engine.snapshot();
        self.baselines.ucr.at(snap.epoch(), || {
            UcrSuiteBackend::from_dataset(snap.dataset())
        })
    }

    fn frm(&self) -> Arc<FrmBackend<4>> {
        let snap = self.engine.snapshot();
        self.baselines.frm.at(snap.epoch(), || {
            // FRM needs window ≥ 2 × retained coefficients (D = 4 → 4).
            let window = snap.base().config().min_len.max(4);
            FrmBackend::from_dataset(snap.dataset(), window)
        })
    }

    fn ebsm(&self) -> Arc<EbsmBackend> {
        let snap = self.engine.snapshot();
        self.baselines.ebsm.at(snap.epoch(), || {
            EbsmBackend::from_dataset(
                snap.dataset(),
                onex_embedding::EbsmConfig {
                    ref_len: snap.base().config().min_len.max(4),
                    ..onex_embedding::EbsmConfig::default()
                },
            )
            .expect("server EBSM config is valid")
        })
    }

    fn spring(&self) -> Arc<SpringBackend> {
        let snap = self.engine.snapshot();
        self.baselines
            .spring
            .at(snap.epoch(), || SpringBackend::from_dataset(snap.dataset()))
    }

    /// The scale-out engine: the same dataset re-partitioned across four
    /// shards, each with its own ONEX base built in parallel on first
    /// use at the engine's current epoch. Answers are identical to the
    /// single engine's (the conformance suite and bench E13 assert so);
    /// wall-clock drops with the shard count.
    fn sharded(&self) -> Arc<ShardedEngine> {
        let snap = self.engine.snapshot();
        self.baselines.sharded.at(snap.epoch(), || {
            let (engine, _) = ShardedEngine::build(snap.dataset(), snap.base().config().clone(), 4)
                .expect("server dataset is non-empty and its config valid");
            engine.with_options(QueryOptions::default().lengths(LengthSelection::Nearest(3)))
        })
    }

    /// The caching decorator over the same onex configuration
    /// `/api/match` serves. It wraps the live engine directly, and
    /// [`CachedSearch`] invalidates itself on every engine epoch bump —
    /// so it needs no rebuild slot, keeps its hit/miss counters for the
    /// process lifetime, and still never serves a pre-append answer
    /// after an append commits.
    fn cached(&self) -> &CachedSearch<OnexBackend> {
        self.baselines.cached.get_or_init(|| {
            CachedSearch::new(self.onex_match_backend(), 256).expect("capacity is positive")
        })
    }

    /// The cross-process scale-out engine: a [`ClusterEngine`] over the
    /// configured shard-server addresses, with the same `Nearest(3)`
    /// length policy every other `/api/match` backend serves. Errors are
    /// typed: unconfigured is an [`OnexError::InvalidConfig`] (400,
    /// client picked an absent backend) while an unreachable or
    /// protocol-mismatched shard is an [`OnexError::Network`] (502, the
    /// gateway's upstream is at fault) — and a failed connect leaves the
    /// slot empty so the next request retries.
    fn cluster(&self) -> Result<Arc<ClusterEngine>, OnexError> {
        let Some(slot) = &self.cluster else {
            return Err(OnexError::invalid_config(
                "no cluster configured; start the server with shard addresses \
                 (onex_server --cluster a:port,b:port) to enable ?backend=cluster",
            ));
        };
        let mut guard = slot.engine.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(engine) = guard.as_ref() {
            return Ok(Arc::clone(engine));
        }
        // The HTTP gateway prefers availability: a dead shard slot
        // degrades the answer (with coverage reported in the JSON)
        // instead of failing the request. Strict callers can see the
        // gap in the `coverage` object and retry.
        let engine = Arc::new(
            ClusterEngine::connect_with(
                &slot.addrs,
                ClusterConfig {
                    degrade: DegradePolicy::Partial,
                    ..ClusterConfig::default()
                },
            )?
            .with_options(QueryOptions::default().lengths(LengthSelection::Nearest(3))),
        );
        *guard = Some(Arc::clone(&engine));
        Ok(engine)
    }

    /// The already-connected cluster engine, if any — a peek that never
    /// dials, for observability routes that must stay cheap.
    fn cluster_peek(&self) -> Option<Arc<ClusterEngine>> {
        let slot = self.cluster.as_ref()?;
        slot.engine
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The cluster's replica topology and per-replica breaker state as a
    /// JSON object — shared by `/api/health` and `/api/summary`.
    fn cluster_health_json(engine: &ClusterEngine) -> Json {
        let slots: Vec<Json> = engine
            .health()
            .into_iter()
            .map(|slot| {
                let replicas: Vec<Json> = slot
                    .replicas
                    .into_iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("addr", Json::s(r.addr)),
                            ("state", Json::s(r.breaker.state.label())),
                            (
                                "consecutive_failures",
                                (r.breaker.consecutive_failures as usize).into(),
                            ),
                            ("ewma_ms", r.breaker.ewma_ms.into()),
                            ("opens", (r.breaker.opens as usize).into()),
                            ("probes", (r.breaker.probes as usize).into()),
                            ("successes", (r.breaker.successes as usize).into()),
                            ("failures", (r.breaker.failures as usize).into()),
                            ("skips", (r.breaker.skips as usize).into()),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("slot", slot.slot.into()),
                    ("replicas", Json::Arr(replicas)),
                ])
            })
            .collect();
        let (fired, wins) = engine.hedge_counters();
        Json::obj(vec![
            ("connected", Json::Bool(true)),
            ("shards", engine.shard_count().into()),
            ("degrade", Json::s(engine.degrade_policy().label())),
            ("slots", Json::Arr(slots)),
            (
                "hedges",
                Json::obj(vec![("fired", fired.into()), ("wins", wins.into())]),
            ),
        ])
    }

    /// `/api/health` — liveness plus, when a cluster is configured, the
    /// full fault-tolerance picture: replica topology, breaker states
    /// and counters, degrade policy, hedge counters. Never dials: a
    /// configured-but-not-yet-connected cluster reports
    /// `connected: false` rather than forcing a connect from a health
    /// probe.
    fn health_api(&self) -> Response {
        let cluster = match (&self.cluster, self.cluster_peek()) {
            (None, _) => Json::Null,
            (Some(_), None) => Json::obj(vec![("connected", Json::Bool(false))]),
            (Some(_), Some(engine)) => Self::cluster_health_json(&engine),
        };
        Response::json(
            Json::obj(vec![
                ("status", Json::s("ok")),
                ("epoch", (self.engine.epoch() as usize).into()),
                ("cluster", cluster),
            ])
            .render(),
        )
    }

    /// The onex backend exactly as `/api/match` serves it, so capability
    /// introspection and query answers never disagree.
    fn onex_match_backend(&self) -> OnexBackend {
        OnexBackend::new(self.engine.clone())
            .with_options(QueryOptions::default().lengths(LengthSelection::Nearest(3)))
    }

    /// Dispatch one request — pure (no I/O), hence directly testable.
    pub fn handle(&self, req: &Request) -> Response {
        if req.method != "GET" {
            return Response::error(405, "only GET is served");
        }
        let result = match req.path.as_str() {
            "/" => Ok(self.index()),
            "/api/summary" => Ok(self.summary()),
            "/api/health" => Ok(self.health_api()),
            "/api/series" => Ok(self.series_list()),
            "/api/backends" => Ok(self.backends_list()),
            "/api/match" => self.match_api(req),
            "/api/append" => self.append_api(req),
            "/api/seasonal" => self.seasonal_api(req),
            "/api/threshold" => self.threshold_api(req),
            "/api/monitor" => self.monitor_api(req),
            "/view/overview.svg" => self.overview_svg(req),
            "/view/preview.svg" => self.preview_svg(req),
            "/view/match.svg" => self.match_svg(req),
            "/view/radial.svg" => self.pair_svg(req, PairView::Radial),
            "/view/scatter.svg" => self.pair_svg(req, PairView::Scatter),
            "/view/seasonal.svg" => self.seasonal_svg(req),
            _ => Err(Response::error(404, "no such route; see / for the index")),
        };
        result.unwrap_or_else(|r| r)
    }

    /// Serve forever on an already-bound listener under
    /// [`ServeOptions::default`]: a fixed worker pool over a bounded
    /// queue (the engine is `&self`-threaded, so workers share one app).
    pub fn serve(self, listener: TcpListener) -> std::io::Result<()> {
        self.serve_with(listener, ServeOptions::default())
    }

    /// [`App::serve`] with explicit pool/backoff settings.
    pub fn serve_with(self, listener: TcpListener, opts: ServeOptions) -> std::io::Result<()> {
        self.serve_streams(listener.incoming(), &opts)
    }

    /// The accept loop over any stream source (injectable for tests):
    /// the shared hardened loop in [`onex_net::serve_streams`] — a fixed
    /// worker pool over a bounded queue, exponential accept backoff —
    /// with one app clone per worker handling connections.
    fn serve_streams<I>(self, incoming: I, opts: &ServeOptions) -> std::io::Result<()>
    where
        I: Iterator<Item = std::io::Result<TcpStream>>,
    {
        onex_net::serve_streams(incoming, opts, move |stream| self.handle_stream(stream))
    }

    /// How long an idle keep-alive connection may sit between requests
    /// before the worker reclaims it. Generous for a human poking an
    /// API, far too short to let idle sockets starve the fixed pool.
    const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);

    /// One connection: parse, dispatch, write — run on a pool worker.
    /// The connection is reused for further requests only when the
    /// client opted in with `Connection: keep-alive`; everything else
    /// stays one-shot, exactly as before.
    fn handle_stream(&self, stream: TcpStream) {
        let Ok(out) = stream.try_clone() else { return };
        let _ = stream.set_read_timeout(Some(Self::KEEP_ALIVE_IDLE));
        let mut reader = BufReader::new(stream);
        let mut served_any = false;
        loop {
            match Request::read_from(&mut reader) {
                // Peer hung up between requests: the normal end of a
                // keep-alive connection (and of a no-op connect).
                Ok(None) => return,
                Ok(Some(req)) => {
                    let keep_alive = req.keep_alive;
                    let response = self.handle(&req);
                    if response.write_keep_alive_to(&out, keep_alive).is_err() || !keep_alive {
                        return;
                    }
                    served_any = true;
                }
                Err(e) => {
                    // Garbage on a fresh connection earns a 400; a read
                    // timeout on an already-served keep-alive socket is
                    // just idleness — close without a parting error.
                    if !served_any {
                        let _ = Response::error(400, &e.to_string()).write_to(&out);
                    }
                    return;
                }
            }
        }
    }

    // ---- helpers -------------------------------------------------------

    /// Map a typed engine error onto the HTTP status space via
    /// [`OnexError::http_status`] — an **exhaustive** match in the
    /// defining crate, so adding an error variant without deciding its
    /// status fails the build instead of silently becoming a 500.
    fn onex_error(e: &OnexError) -> Response {
        Response::error(e.http_status(), &e.to_string())
    }

    /// A numeric query parameter with a default; malformed values are a
    /// 400 carrying the parameter name and offending text.
    fn num_param<T: std::str::FromStr>(
        req: &Request,
        name: &str,
        default: T,
    ) -> Result<T, Response> {
        req.param_as(name)
            .map(|v| v.unwrap_or(default))
            .map_err(|e| Response::error(400, &e.to_string()))
    }

    fn query_window(&self, req: &Request) -> Result<(String, usize, usize, Vec<f64>), Response> {
        let series = req
            .param("series")
            .ok_or_else(|| Response::error(400, "missing ?series="))?
            .to_owned();
        let ds = self.engine.dataset();
        let s = ds
            .by_name(&series)
            .ok_or_else(|| Response::error(404, "unknown series"))?;
        let start: usize = Self::num_param(req, "start", 0)?;
        let len: usize = Self::num_param(req, "len", s.len().min(8))?;
        let window = s
            .subsequence(start, len)
            .ok_or_else(|| Response::error(400, "window out of bounds"))?;
        Ok((series, start, len, window.to_vec()))
    }

    /// The engine-native best-k used by the SVG views (they need the
    /// warping path, which the backend-neutral trait does not carry).
    fn best_matches(
        &self,
        req: &Request,
        query: &[f64],
        series: &str,
        k: usize,
    ) -> Result<Vec<onex_core::Match>, Response> {
        let mut opts = QueryOptions::default().lengths(LengthSelection::Nearest(3));
        if req.param("include_self") != Some("true") {
            opts = opts.excluding_series(self.engine.dataset().id_of(series));
        }
        let (matches, _) = self
            .engine
            .k_best(query, k.max(1), &opts)
            .map_err(|e| Self::onex_error(&e))?;
        Ok(matches)
    }

    fn series_name(&self, id: u32) -> String {
        self.engine
            .dataset()
            .series(id)
            .map(|s| s.name().to_owned())
            .unwrap_or_else(|| format!("#{id}"))
    }

    // ---- routes --------------------------------------------------------

    fn index(&self) -> Response {
        let example = self
            .engine
            .dataset()
            .series(0)
            .map(|s| s.name().to_owned())
            .unwrap_or_default();
        let body = format!(
            "<!doctype html><html><head><title>ONEX</title></head><body>\
             <h1>ONEX — Online Exploration of Time Series</h1>\
             <p>{} loaded. Try:</p><ul>\
             <li><a href=\"/api/summary\">/api/summary</a></li>\
             <li><a href=\"/api/series\">/api/series</a></li>\
             <li><a href=\"/api/backends\">/api/backends</a></li>\
             <li><a href=\"/api/match?series={e}&amp;start=0&amp;len=8\">/api/match?series={e}</a></li>\
             <li><a href=\"/api/match?series={e}&amp;start=0&amp;len=8&amp;backend=ucrsuite\">/api/match?backend=ucrsuite&amp;…</a></li>\
             <li><a href=\"/api/monitor?series={e}&amp;start=0&amp;len=8&amp;target={e}&amp;eps=1\">/api/monitor?series={e}&amp;target=…</a></li>\
             <li><a href=\"/view/overview.svg\">/view/overview.svg</a></li>\
             <li><a href=\"/view/match.svg?series={e}&amp;start=0&amp;len=8\">/view/match.svg?series={e}</a></li>\
             <li><a href=\"/view/seasonal.svg?series={e}\">/view/seasonal.svg?series={e}</a></li>\
             </ul></body></html>",
            self.engine.dataset().summary(),
            e = example
        );
        Response::html(body)
    }

    fn summary(&self) -> Response {
        let stats = self.engine.base().stats();
        let per_length: Vec<Json> = stats
            .per_length
            .iter()
            .map(|l| {
                Json::obj(vec![
                    ("len", l.len.into()),
                    ("groups", l.groups.into()),
                    ("subsequences", l.subsequences.into()),
                    ("max_cardinality", l.max_cardinality.into()),
                ])
            })
            .collect();
        let lifetime = self.engine.lifetime_stats();
        let mut fields = vec![
            ("series", self.engine.dataset().len().into()),
            ("samples", self.engine.dataset().total_samples().into()),
            ("groups", stats.groups.into()),
            ("members", stats.members.into()),
            ("compaction", stats.compaction.into()),
            // Which SIMD tier the distance kernels selected at startup
            // ("scalar", "sse2" or "avx2") — the level every distance in
            // this process runs at.
            (
                "kernel_level",
                Json::s(onex_distance::kernels::level().label()),
            ),
            // Lifetime per-tier prune counters of the pruning cascade
            // (L0 sketch → LB_Kim → LB_Keogh → early-abandoned DTW).
            (
                "tier_prunes",
                Json::obj(vec![
                    ("l0", lifetime.members_l0_pruned.into()),
                    ("kim", lifetime.members_kim_pruned.into()),
                    ("keogh", lifetime.members_lb_pruned.into()),
                    ("dtw_abandoned", lifetime.dtw_abandoned.into()),
                ]),
            ),
            ("per_length", Json::Arr(per_length)),
        ];
        // A cold-started engine reports where its base came from and how
        // far lazy resolution has progressed — operators can tell a
        // mapped base file from an in-memory build at a glance.
        if let Some(src) = self.engine.base_source() {
            fields.push((
                "base_file",
                Json::obj(vec![
                    (
                        "path",
                        match &src.path {
                            Some(p) => Json::s(p.display().to_string()),
                            None => Json::Null,
                        },
                    ),
                    ("epoch", (self.engine.epoch() as usize).into()),
                    ("resolved_lengths", src.resolved_lengths.into()),
                    ("total_lengths", src.total_lengths.into()),
                    ("sketches", src.has_sketches.into()),
                ]),
            ));
        }
        // When this server performed the load step itself, report what
        // the construction cost — the demo's "preprocessing at the server
        // side" made observable, work counters included.
        if let Some(r) = &self.build {
            fields.push((
                "build",
                Json::obj(vec![
                    ("elapsed_ms", (r.elapsed.as_secs_f64() * 1e3).into()),
                    ("lengths", r.lengths.into()),
                    ("subsequences", r.subsequences.into()),
                    ("groups", r.groups.into()),
                    ("compaction", r.compaction().into()),
                    ("subsequences_per_sec", r.subsequences_per_sec().into()),
                    (
                        "work",
                        Json::obj(vec![
                            ("reps_examined", r.work.examined.into()),
                            ("reps_pruned", r.work.pruned.into()),
                            ("distance_calls", r.work.distance_calls.into()),
                        ]),
                    ),
                ]),
            ));
        }
        // A configured cluster reports its fault-tolerance posture —
        // without dialling: an unconnected fleet shows
        // `connected: false` until the first `?backend=cluster` request
        // establishes it.
        if self.cluster.is_some() {
            fields.push((
                "cluster",
                match self.cluster_peek() {
                    Some(engine) => Self::cluster_health_json(&engine),
                    None => Json::obj(vec![("connected", Json::Bool(false))]),
                },
            ));
        }
        Response::json(Json::obj(fields).render())
    }

    fn series_list(&self) -> Response {
        let names: Vec<Json> = self
            .engine
            .dataset()
            .iter()
            .map(|(_, s)| {
                Json::obj(vec![
                    ("name", Json::s(s.name())),
                    ("len", s.len().into()),
                    ("axis_start", s.axis().start.into()),
                    ("axis_step", s.axis().step.into()),
                ])
            })
            .collect();
        Response::json(Json::Arr(names).render())
    }

    /// Capability introspection for every selectable backend — the onex
    /// entry describes the same configuration `/api/match` serves.
    fn backends_list(&self) -> Response {
        let onex = self.onex_match_backend();
        let (ucr, frm, ebsm, spring, sharded) = (
            self.ucr(),
            self.frm(),
            self.ebsm(),
            self.spring(),
            self.sharded(),
        );
        // The cluster appears only when configured *and* reachable:
        // capability introspection reflects what a query could actually
        // use right now, and an unreachable fleet will be retried on the
        // next listing.
        let cluster = self.cluster.as_ref().and_then(|_| self.cluster().ok());
        let mut list: Vec<&dyn SimilaritySearch> = vec![
            &onex,
            &*ucr,
            &*frm,
            &*ebsm,
            &*spring,
            &*sharded,
            self.cached(),
        ];
        if let Some(c) = &cluster {
            list.push(&**c);
        }
        let mut items: Vec<Json> = list
            .into_iter()
            .map(|backend| {
                let caps = backend.capabilities();
                Json::obj(vec![
                    ("name", Json::s(backend.name())),
                    ("metric", Json::s(caps.metric.label())),
                    ("exact", Json::Bool(caps.exact)),
                    ("multi_length", Json::Bool(caps.multi_length)),
                    ("streaming", Json::Bool(caps.streaming)),
                    ("cached", Json::Bool(caps.cached)),
                ])
            })
            .collect();
        // The cluster entry (always last when present) additionally
        // reports its fault-tolerance shape: replica topology per slot,
        // breaker states, and the degrade policy in force.
        if let Some(c) = &cluster {
            if let Some(Json::Obj(pairs)) = items.last_mut() {
                let topology: Vec<Json> = c
                    .health()
                    .into_iter()
                    .map(|slot| {
                        let replicas: Vec<Json> = slot
                            .replicas
                            .into_iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("addr", Json::s(r.addr)),
                                    ("state", Json::s(r.breaker.state.label())),
                                ])
                            })
                            .collect();
                        Json::obj(vec![
                            ("slot", slot.slot.into()),
                            ("replicas", Json::Arr(replicas)),
                        ])
                    })
                    .collect();
                pairs.push(("degrade".into(), Json::s(c.degrade_policy().label())));
                pairs.push(("topology".into(), Json::Arr(topology)));
            }
        }
        Response::json(Json::Arr(items).render())
    }

    /// `/api/match` — every backend is driven through the same
    /// [`SimilaritySearch`] trait object; `?backend=` picks which.
    fn match_api(&self, req: &Request) -> Result<Response, Response> {
        let (series, _, _, query) = self.query_window(req)?;
        let k: usize = Self::num_param(req, "k", 5)?;
        let name = req.param("backend").unwrap_or("onex");

        let onex_holder;
        let arc_holder: Arc<dyn SimilaritySearch>;
        let backend: &dyn SimilaritySearch = match name {
            "onex" => {
                let mut backend = self.onex_match_backend();
                if req.param("include_self") != Some("true") {
                    backend = backend.with_options(
                        QueryOptions::default()
                            .lengths(LengthSelection::Nearest(3))
                            .excluding_series(self.engine.dataset().id_of(&series)),
                    );
                }
                onex_holder = backend;
                &onex_holder
            }
            "ucrsuite" | "ucr" => {
                arc_holder = self.ucr();
                &*arc_holder
            }
            "frm" => {
                arc_holder = self.frm();
                &*arc_holder
            }
            "ebsm" => {
                arc_holder = self.ebsm();
                &*arc_holder
            }
            "spring" => {
                arc_holder = self.spring();
                &*arc_holder
            }
            "sharded" => {
                arc_holder = self.sharded();
                &*arc_holder
            }
            "cached" => self.cached(),
            "cluster" => {
                arc_holder = self.cluster().map_err(|e| Self::onex_error(&e))?;
                &*arc_holder
            }
            other => {
                return Err(Response::error(
                    400,
                    &format!(
                        "unknown backend {other:?}; one of onex, ucrsuite, frm, ebsm, \
                         spring, sharded, cached, cluster"
                    ),
                ))
            }
        };

        // k = 0 flows through as a typed InvalidQuery → 400, exactly
        // like every other SimilaritySearch caller.
        let outcome = backend
            .k_best(&query, k)
            .map_err(|e| Self::onex_error(&e))?;
        let caps = backend.capabilities();
        let items: Vec<Json> = outcome
            .matches
            .iter()
            .map(|m| {
                Json::obj(vec![
                    ("series", Json::s(self.series_name(m.series))),
                    ("start", m.start.into()),
                    ("len", m.len.into()),
                    ("distance", m.distance.into()),
                ])
            })
            .collect();
        let mut fields = vec![
            ("backend", Json::s(backend.name())),
            ("metric", Json::s(caps.metric.label())),
            ("exact", Json::Bool(caps.exact)),
            ("matches", Json::Arr(items)),
        ];
        // Fan-out backends report their coverage: how many shard slots
        // contributed to this answer. `degraded: true` is the typed
        // signal that some slots were down and the answer spans only the
        // survivors.
        if let Some(cov) = outcome.coverage {
            fields.push((
                "coverage",
                Json::obj(vec![
                    ("shards_answered", (cov.shards_answered as usize).into()),
                    ("shards_total", (cov.shards_total as usize).into()),
                    ("degraded", Json::Bool(cov.degraded())),
                ]),
            ));
        }
        fields.extend(vec![(
            "stats",
            Json::obj(vec![
                ("examined", outcome.stats.examined.into()),
                ("pruned", outcome.stats.pruned.into()),
                (
                    "distance_computations",
                    outcome.stats.distance_computations.into(),
                ),
                (
                    "tiers",
                    Json::obj(vec![
                        ("l0", (outcome.stats.tiers.l0 as usize).into()),
                        ("kim", (outcome.stats.tiers.kim as usize).into()),
                        ("keogh", (outcome.stats.tiers.keogh as usize).into()),
                        (
                            "dtw_abandoned",
                            (outcome.stats.tiers.dtw_abandoned as usize).into(),
                        ),
                    ]),
                ),
            ]),
        )]);
        // The sharded engine reports its persistent worker pool: workers
        // and threads_spawned stay constant across requests (queries are
        // channel sends, never thread spawns — the pool is built with the
        // engine on first use and lives for the process), while
        // jobs_executed grows by one per shard per query.
        if name == "sharded" {
            let p = self.sharded().pool_stats();
            fields.push((
                "pool",
                Json::obj(vec![
                    ("workers", p.workers.into()),
                    ("threads_spawned", p.threads_spawned.into()),
                    ("jobs_executed", p.jobs_executed.into()),
                ]),
            ));
        }
        // The cluster engine reports its per-remote worker pool (the
        // cross-process mirror of the sharded pool) plus the gossip
        // traffic: tighten frames pushed to and received from the shard
        // servers, accumulated across requests.
        if name == "cluster" {
            if let Ok(c) = self.cluster() {
                let p = c.pool_stats();
                let (sent, received) = c.gossip_counters();
                fields.push((
                    "pool",
                    Json::obj(vec![
                        ("workers", p.workers.into()),
                        ("threads_spawned", p.threads_spawned.into()),
                        ("jobs_executed", p.jobs_executed.into()),
                    ]),
                ));
                fields.push((
                    "gossip",
                    Json::obj(vec![
                        ("shards", c.shard_count().into()),
                        ("tightenings_sent", sent.into()),
                        ("tightenings_received", received.into()),
                    ]),
                ));
            }
        }
        // The caching decorator also reports its own observability
        // counters, so clients can see hits accumulate across requests.
        if name == "cached" {
            let c = self.cached().cache_stats();
            fields.push((
                "cache",
                Json::obj(vec![
                    ("hits", c.hits.into()),
                    ("misses", c.misses.into()),
                    ("entries", c.entries.into()),
                    ("capacity", c.capacity.into()),
                ]),
            ));
        }
        Ok(Response::json(Json::obj(fields).render()))
    }

    /// `/api/append?name=..&values=v1,v2,…` — live ingest over HTTP:
    /// append one series to the engine and publish the next epoch.
    /// Queries already in flight keep answering from the snapshot they
    /// pinned; baseline backends rebuild from the new epoch on their
    /// next use and the caching decorator drops its now-stale entries —
    /// no route ever answers from a dataset the engine has outgrown. A
    /// duplicate name is a 409 (conflict with the published collection),
    /// and a failed append leaves every backend on the prior epoch.
    fn append_api(&self, req: &Request) -> Result<Response, Response> {
        let Some(name) = req.param("name") else {
            return Err(Response::error(400, "missing ?name="));
        };
        let Some(values) = req.param("values") else {
            return Err(Response::error(400, "missing ?values= (comma-separated)"));
        };
        let values: Vec<f64> = values
            .split(',')
            .map(|v| v.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| Response::error(400, &format!("invalid ?values=: {e}")))?;
        let report = self
            .engine
            .append_series(TimeSeries::new(name, values))
            .map_err(|e| Self::onex_error(&e))?;
        Ok(Response::json(
            Json::obj(vec![
                ("appended", Json::s(name)),
                ("epoch", (self.engine.epoch() as usize).into()),
                ("series", self.engine.dataset().len().into()),
                ("subsequences", report.subsequences.into()),
                ("groups", report.groups.into()),
            ])
            .render(),
        ))
    }

    fn seasonal_api(&self, req: &Request) -> Result<Response, Response> {
        let Some(series) = req.param("series") else {
            return Err(Response::error(400, "missing ?series="));
        };
        let opts = SeasonalOptions {
            min_occurrences: Self::num_param(req, "min_occurrences", 2)?,
            max_patterns: Self::num_param(req, "max_patterns", 8)?,
            ..SeasonalOptions::default()
        };
        let patterns = self
            .engine
            .seasonal(series, &opts)
            .map_err(|e| Self::onex_error(&e))?;
        let items: Vec<Json> = patterns
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("len", p.len.into()),
                    ("count", p.count().into()),
                    ("tightness", p.tightness.into()),
                    (
                        "occurrences",
                        Json::Arr(
                            p.occurrences
                                .iter()
                                .map(|o| (o.start as usize).into())
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Ok(Response::json(Json::Arr(items).render()))
    }

    fn threshold_api(&self, req: &Request) -> Result<Response, Response> {
        let len = Self::num_param(req, "len", 8)?;
        match self.engine.recommend_threshold(len, 8000, 7) {
            Some(rec) => {
                let ladder: Vec<Json> = rec
                    .ladder
                    .iter()
                    .map(|&(q, t)| Json::obj(vec![("quantile", q.into()), ("st", t.into())]))
                    .collect();
                Ok(Response::json(
                    Json::obj(vec![
                        ("len", len.into()),
                        ("suggested", rec.suggested.into()),
                        ("pairs_sampled", rec.pairs_sampled.into()),
                        ("ladder", Json::Arr(ladder)),
                    ])
                    .render(),
                ))
            }
            None => Err(Response::error(400, "not enough data at that length")),
        }
    }

    /// SPRING stream monitoring (paper reference [7]) over a stored
    /// series, driven through the [`StreamingSearch`] extension trait:
    /// all disjoint subsequences of `target` within `eps` of the query
    /// window, exactly as a live monitor would have reported them.
    fn monitor_api(&self, req: &Request) -> Result<Response, Response> {
        let (_, _, _, pattern) = self.query_window(req)?;
        let Some(target) = req.param("target") else {
            return Err(Response::error(400, "missing ?target= (series to monitor)"));
        };
        let Some(target_id) = self.engine.dataset().id_of(target) else {
            return Err(Response::error(404, "unknown target series"));
        };
        let eps: f64 = Self::num_param(req, "eps", 1.0)?;
        let hits = self
            .spring()
            .monitor(target_id, &pattern, eps)
            .map_err(|e| Self::onex_error(&e))?;
        let items: Vec<Json> = hits
            .iter()
            .map(|h| {
                Json::obj(vec![
                    ("start", h.start.into()),
                    ("end", h.end.into()),
                    ("dtw", h.distance.into()),
                ])
            })
            .collect();
        Ok(Response::json(
            Json::obj(vec![
                ("target", Json::s(target)),
                ("eps", eps.into()),
                ("matches", Json::Arr(items)),
            ])
            .render(),
        ))
    }

    fn overview_svg(&self, req: &Request) -> Result<Response, Response> {
        let len = match Self::num_param(req, "len", 0)? {
            0 => self.engine.base().lengths().next().unwrap_or(8),
            l => l,
        };
        let pane = OverviewPane::from_base(&self.engine.base(), len, 24);
        Ok(Response::svg(pane.render()))
    }

    fn preview_svg(&self, req: &Request) -> Result<Response, Response> {
        let (series, start, len, _) = self.query_window(req)?;
        let ds = self.engine.dataset();
        let s = ds.by_name(&series).expect("validated");
        Ok(Response::svg(
            QueryPreview::for_series(560, s).brush(start, len).render(),
        ))
    }

    fn match_svg(&self, req: &Request) -> Result<Response, Response> {
        let (series, _, _, query) = self.query_window(req)?;
        match self.best_matches(req, &query, &series, 1)?.first() {
            Some(best) => Ok(Response::svg(
                MultiLineChart::for_match(&query, best, &self.engine.dataset()).render(),
            )),
            None => Err(Response::error(404, "no match found")),
        }
    }

    fn pair_svg(&self, req: &Request, view: PairView) -> Result<Response, Response> {
        let (series, _, _, query) = self.query_window(req)?;
        let Some(best) = self
            .best_matches(req, &query, &series, 1)?
            .into_iter()
            .next()
        else {
            return Err(Response::error(404, "no match found"));
        };
        let matched = self
            .engine
            .dataset()
            .resolve(best.subseq)
            .expect("match resolves")
            .to_vec();
        let title = format!("{} vs {}", series, best.series_name);
        let svg = match view {
            PairView::Radial => RadialChart::new(420, title)
                .add_series(&series, &query)
                .add_series(&best.series_name, &matched)
                .render(),
            PairView::Scatter => ConnectedScatter::new(420, title, &query, &matched)
                .with_path(&best.path)
                .render(),
        };
        Ok(Response::svg(svg))
    }

    fn seasonal_svg(&self, req: &Request) -> Result<Response, Response> {
        let Some(series) = req.param("series") else {
            return Err(Response::error(400, "missing ?series="));
        };
        let ds = self.engine.dataset();
        let Some(s) = ds.by_name(series) else {
            return Err(Response::error(404, "unknown series"));
        };
        let patterns = self
            .engine
            .seasonal(series, &SeasonalOptions::default())
            .expect("series validated");
        let mut view = SeasonalView::new(900, format!("{series} — seasonal view"), s.values());
        for p in patterns.iter().take(3) {
            view = view.add_engine_pattern(p);
        }
        Ok(Response::svg(view.render()))
    }
}

enum PairView {
    Radial,
    Scatter,
}

#[cfg(test)]
mod tests {
    use super::*;
    use onex_grouping::BaseConfig;
    use onex_tseries::gen::{matters_collection, Indicator, MattersConfig};

    fn app() -> App {
        let ds = matters_collection(&MattersConfig {
            indicators: vec![Indicator::GrowthRate],
            ..MattersConfig::default()
        });
        App::build(ds, BaseConfig::new(1.0, 6, 10)).unwrap()
    }

    fn get(app: &App, target: &str) -> Response {
        app.handle(&Request::get(target).unwrap())
    }

    #[test]
    fn index_links_the_api() {
        let r = get(&app(), "/");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("/api/summary"));
        assert!(body.contains("backend=ucrsuite"));
        assert!(body.contains("ONEX"));
    }

    #[test]
    fn summary_reports_base_stats() {
        let r = get(&app(), "/api/summary");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"series\":50"), "{body}");
        assert!(body.contains("\"per_length\":["));
    }

    #[test]
    fn summary_reports_kernel_level_and_tier_prunes() {
        let a = app();
        let body = String::from_utf8(get(&a, "/api/summary").body).unwrap();
        let level = onex_distance::kernels::level().label();
        assert!(
            body.contains(&format!("\"kernel_level\":\"{level}\"")),
            "{body}"
        );
        assert!(body.contains("\"tier_prunes\":{\"l0\":"), "{body}");
        // Run a query, then the lifetime tier counters must be visible
        // (and the cascade must have done *something*: pruned or run DTW).
        let q = get(&a, "/api/match?series=MA-GrowthRate&start=4&len=8&k=3");
        assert_eq!(q.status, 200);
        let body = String::from_utf8(get(&a, "/api/summary").body).unwrap();
        let tiers = body.split("\"tier_prunes\":").nth(1).expect("tiers field");
        assert!(tiers.contains("\"kim\":"), "{tiers}");
        assert!(tiers.contains("\"keogh\":"), "{tiers}");
        assert!(tiers.contains("\"dtw_abandoned\":"), "{tiers}");
    }

    #[test]
    fn summary_reports_the_load_steps_build_report() {
        let a = app();
        let r = get(&a, "/api/summary");
        let body = String::from_utf8(r.body).unwrap();
        // The dataset-load path went through the indexed builder and the
        // construction report — work counters included — is in the JSON.
        assert!(body.contains("\"build\":{"), "{body}");
        for key in [
            "\"elapsed_ms\":",
            "\"subsequences\":",
            "\"subsequences_per_sec\":",
            "\"work\":{",
            "\"reps_examined\":",
            "\"reps_pruned\":",
            "\"distance_calls\":",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        let parsed = crate::json::Json::parse(&body).expect("valid JSON");
        let crate::json::Json::Obj(fields) = parsed else {
            panic!("summary is an object");
        };
        assert!(fields.iter().any(|(k, _)| k == "build"));
        let report = a.build_report().expect("App::build keeps the report");
        assert!(report.work.distance_calls > 0);
        assert!(report.subsequences >= report.groups);
    }

    #[test]
    fn wrapped_engines_have_no_build_report() {
        let ds = matters_collection(&MattersConfig {
            indicators: vec![Indicator::GrowthRate],
            ..MattersConfig::default()
        });
        let (engine, _) = Onex::build(ds, BaseConfig::new(1.0, 6, 10)).unwrap();
        let a = App::new(Arc::new(engine));
        assert!(a.build_report().is_none());
        let body = String::from_utf8(get(&a, "/api/summary").body).unwrap();
        assert!(!body.contains("\"build\":"), "{body}");
    }

    #[test]
    fn summary_reports_base_file_provenance_on_cold_started_engines() {
        // Warm engines carry no base_file object…
        let a = app();
        let body = String::from_utf8(get(&a, "/api/summary").body).unwrap();
        assert!(!body.contains("\"base_file\":"), "{body}");

        // …an engine cold-started from a saved base reports its source
        // and resolution progress, advancing as queries resolve columns.
        let ds = matters_collection(&MattersConfig {
            indicators: vec![Indicator::GrowthRate],
            ..MattersConfig::default()
        });
        let dir = std::env::temp_dir().join("onex_app_coldstart_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("summary.onexbase");
        a.engine.save_base(&path).unwrap();
        let cold = Onex::open(&path, ds).unwrap();
        let total = a.engine.base().lengths().count();
        let a2 = App::new(Arc::new(cold));
        let body = String::from_utf8(get(&a2, "/api/summary").body).unwrap();
        assert!(
            body.contains(&format!(
                "\"base_file\":{{\"path\":\"{}\",\"epoch\":0,\"resolved_lengths\":0,\"total_lengths\":{total},\"sketches\":true}}",
                path.display()
            )),
            "{body}"
        );
        // The match endpoint queries with Nearest(3): exactly the three
        // neighbouring columns resolve, nothing else.
        let q = get(&a2, "/api/match?series=MA-GrowthRate&start=4&len=8&k=3");
        assert_eq!(q.status, 200);
        let body = String::from_utf8(get(&a2, "/api/summary").body).unwrap();
        assert!(body.contains("\"resolved_lengths\":3"), "{body}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn series_listing() {
        let r = get(&app(), "/api/series");
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"MA-GrowthRate\""));
        assert!(body.contains("\"axis_start\":2001"));
    }

    #[test]
    fn backends_listing_names_all_engines() {
        let r = get(&app(), "/api/backends");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        for name in [
            "onex", "ucrsuite", "frm", "ebsm", "spring", "sharded", "cached",
        ] {
            assert!(body.contains(&format!("\"name\":\"{name}\"")), "{body}");
        }
        // Capability introspection includes the caching flag, true only
        // for the caching decorator.
        assert_eq!(body.matches("\"cached\":true").count(), 1, "{body}");
    }

    #[test]
    fn match_api_excludes_self_by_default() {
        let a = app();
        let r = get(&a, "/api/match?series=MA-GrowthRate&start=4&len=8&k=3");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"backend\":\"onex\""), "{body}");
        assert!(!body.contains("\"MA-GrowthRate\""), "{body}");
        assert_eq!(body.matches("\"distance\":").count(), 3);
        // include_self=true lets the own window win.
        let r2 = get(
            &a,
            "/api/match?series=MA-GrowthRate&start=4&len=8&k=1&include_self=true",
        );
        let body2 = String::from_utf8(r2.body).unwrap();
        assert!(body2.contains("\"MA-GrowthRate\""));
        assert!(body2.contains("\"distance\":0"));
    }

    #[test]
    fn match_api_serves_every_backend_through_the_trait() {
        let a = app();
        for (backend, metric) in [
            ("onex", "raw DTW"),
            ("ucrsuite", "z-norm DTW"),
            ("frm", "raw ED"),
            ("ebsm", "subsequence DTW"),
            ("spring", "subsequence DTW"),
            ("sharded", "raw DTW"),
            ("cached", "raw DTW"),
        ] {
            let r = get(
                &a,
                &format!("/api/match?series=MA-GrowthRate&start=4&len=8&k=2&backend={backend}"),
            );
            assert_eq!(r.status, 200, "{backend}");
            let body = String::from_utf8(r.body).unwrap();
            assert!(
                body.contains(&format!("\"backend\":\"{backend}\"")),
                "{body}"
            );
            assert!(body.contains(&format!("\"metric\":\"{metric}\"")), "{body}");
            assert!(body.contains("\"matches\":["), "{body}");
            assert!(body.contains("\"examined\":"), "{body}");
            // Every backend reports the per-tier prune breakdown (zeroes
            // for engines without a tiered cascade).
            assert!(body.contains("\"tiers\":{\"l0\":"), "{body}");
        }
        // The baselines index the same data, so the verbatim window is
        // found at distance ~0 by every engine.
        let r = get(
            &a,
            "/api/match?series=MA-GrowthRate&start=4&len=8&k=1&backend=frm",
        );
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"distance\":0"), "{body}");
        // Unknown backends are a 400, not a fallback.
        let r = get(
            &a,
            "/api/match?series=MA-GrowthRate&start=4&len=8&backend=oracle",
        );
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("oracle"), "{body}");
    }

    #[test]
    fn k_zero_is_a_typed_400_not_a_silent_k_one() {
        let a = app();
        for backend in [
            "onex", "ucrsuite", "frm", "ebsm", "spring", "sharded", "cached",
        ] {
            let r = get(
                &a,
                &format!("/api/match?series=MA-GrowthRate&start=4&len=8&k=0&backend={backend}"),
            );
            assert_eq!(r.status, 400, "{backend}");
            let body = String::from_utf8(r.body).unwrap();
            assert!(body.contains("invalid query"), "{backend}: {body}");
        }
    }

    #[test]
    fn sharded_backend_agrees_with_onex_over_http() {
        let a = app();
        let target = "/api/match?series=MA-GrowthRate&start=4&len=8&k=3&include_self=true";
        let onex = String::from_utf8(get(&a, target).body).unwrap();
        let sharded =
            String::from_utf8(get(&a, &format!("{target}&backend=sharded")).body).unwrap();
        // Same matches (names, windows, distances) from both engines;
        // only the backend label and work counters differ.
        let matches_of = |body: &str| {
            let json = crate::json::Json::parse(body).expect("valid JSON");
            let crate::json::Json::Obj(fields) = json else {
                panic!("object: {body}");
            };
            fields
                .into_iter()
                .find(|(k, _)| k == "matches")
                .map(|(_, v)| v.render())
                .expect("matches field")
        };
        assert_eq!(matches_of(&onex), matches_of(&sharded));
        assert!(sharded.contains("\"backend\":\"sharded\""));
    }

    #[test]
    fn sharded_backend_reuses_one_worker_pool_across_requests() {
        let a = app();
        let target = "/api/match?series=MA-GrowthRate&start=4&len=8&k=2&backend=sharded";
        let pool_of = |body: &str| {
            let json = crate::json::Json::parse(body).expect("valid JSON");
            let crate::json::Json::Obj(fields) = json else {
                panic!("object: {body}");
            };
            let (_, pool) = fields
                .into_iter()
                .find(|(k, _)| k == "pool")
                .expect("sharded responses carry pool counters");
            let crate::json::Json::Obj(pool) = pool else {
                panic!("pool is an object");
            };
            let num = |name: &str| -> f64 {
                pool.iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| v.render().parse().unwrap())
                    .unwrap_or_else(|| panic!("missing {name}"))
            };
            (
                num("workers") as usize,
                num("threads_spawned") as usize,
                num("jobs_executed") as usize,
            )
        };
        let first = pool_of(&String::from_utf8(get(&a, target).body).unwrap());
        let second = pool_of(&String::from_utf8(get(&a, target).body).unwrap());
        let third = pool_of(&String::from_utf8(get(&a, target).body).unwrap());
        assert_eq!(first.0, 4, "server shards across 4 workers");
        // The pool outlives requests: the spawn counter never moves…
        assert_eq!(first.1, 4);
        assert_eq!(second.1, 4);
        assert_eq!(third.1, 4);
        // …while work flows through it, one job per shard per query.
        assert_eq!(second.2, first.2 + 4);
        assert_eq!(third.2, second.2 + 4);
    }

    #[test]
    fn cached_backend_reports_hits_across_requests() {
        let a = app();
        let target = "/api/match?series=MA-GrowthRate&start=4&len=8&k=2&backend=cached";
        let first = String::from_utf8(get(&a, target).body).unwrap();
        assert!(first.contains("\"cache\":{"), "{first}");
        assert!(first.contains("\"hits\":0"), "{first}");
        assert!(first.contains("\"misses\":1"), "{first}");
        let second = String::from_utf8(get(&a, target).body).unwrap();
        assert!(second.contains("\"hits\":1"), "{second}");
        // The cached answer is the same answer.
        let strip = |b: &str| b.split("\"cache\"").next().unwrap().to_owned();
        assert_eq!(strip(&first), strip(&second));
    }

    #[test]
    fn append_over_http_bumps_the_epoch_and_serves_the_new_series() {
        let a = app();
        // Clone an existing series' opening window into a new series so
        // the verbatim match target is unambiguous.
        let donor = String::from_utf8(
            get(
                &a,
                "/api/match?series=MA-GrowthRate&start=0&len=8&k=1&include_self=true",
            )
            .body,
        )
        .unwrap();
        assert!(donor.contains("\"distance\":0"), "{donor}");
        let values: Vec<String> = {
            let ds = a.engine.dataset();
            ds.by_name("MA-GrowthRate")
                .unwrap()
                .subsequence(0, 8)
                .unwrap()
                .iter()
                .map(|v| v.to_string())
                .collect()
        };
        let r = get(
            &a,
            &format!("/api/append?name=Fresh&values={}", values.join(",")),
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8(r.body.clone()));
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"appended\":\"Fresh\""), "{body}");
        assert!(body.contains("\"epoch\":1"), "{body}");
        assert!(body.contains("\"series\":51"), "{body}");
        // The engine itself serves the new series…
        let direct = get(
            &a,
            "/api/match?series=Fresh&start=0&len=8&k=2&include_self=true",
        );
        assert_eq!(direct.status, 200);
        let direct = String::from_utf8(direct.body).unwrap();
        assert!(direct.contains("\"Fresh\""), "{direct}");
        assert!(direct.contains("\"distance\":0"), "{direct}");
        // …and /api/series lists it.
        let listing = String::from_utf8(get(&a, "/api/series").body).unwrap();
        assert!(listing.contains("\"Fresh\""), "{listing}");
    }

    #[test]
    fn baseline_backends_rebuild_after_an_append_instead_of_going_stale() {
        let a = app();
        // Warm every rebuildable baseline at epoch 0 — the exact setup
        // in which the old process-lifetime OnceLocks froze forever.
        for backend in ["ucrsuite", "frm", "ebsm", "spring", "sharded"] {
            let r = get(
                &a,
                &format!("/api/match?series=MA-GrowthRate&start=4&len=8&k=1&backend={backend}"),
            );
            assert_eq!(r.status, 200, "{backend}");
        }
        let values: Vec<String> = {
            let ds = a.engine.dataset();
            ds.by_name("MA-GrowthRate")
                .unwrap()
                .subsequence(4, 8)
                .unwrap()
                .iter()
                .map(|v| v.to_string())
                .collect()
        };
        let r = get(
            &a,
            &format!("/api/append?name=Fresh&values={}", values.join(",")),
        );
        assert_eq!(r.status, 200);
        // After the append each baseline must answer over the grown
        // dataset: querying the appended window with the donor excluded
        // finds the fresh series verbatim. (exclude-self is onex-only,
        // so ask for enough matches that Fresh must appear.)
        for backend in ["ucrsuite", "frm", "sharded"] {
            let r = get(
                &a,
                &format!("/api/match?series=Fresh&start=0&len=8&k=3&backend={backend}"),
            );
            assert_eq!(r.status, 200, "{backend}");
            let body = String::from_utf8(r.body).unwrap();
            assert!(body.contains("\"Fresh\""), "{backend} went stale: {body}");
        }
        // The trait-level epochs agree: the cached decorator tracks the
        // live engine, the sharded rebuild starts a fresh cell at 0.
        assert_eq!(a.engine.epoch(), 1);
        assert_eq!(a.cached().epoch(), 1);
    }

    #[test]
    fn cached_backend_survives_appends_without_serving_stale_answers() {
        let a = app();
        let target = "/api/match?series=MA-GrowthRate&start=4&len=8&k=2&backend=cached";
        let first = String::from_utf8(get(&a, target).body).unwrap();
        assert!(first.contains("\"misses\":1"), "{first}");
        let warm = String::from_utf8(get(&a, target).body).unwrap();
        assert!(warm.contains("\"hits\":1"), "{warm}");
        // Append a verbatim clone of the queried window as a new series.
        let values: Vec<String> = {
            let ds = a.engine.dataset();
            ds.by_name("MA-GrowthRate")
                .unwrap()
                .subsequence(4, 8)
                .unwrap()
                .iter()
                .map(|v| v.to_string())
                .collect()
        };
        assert_eq!(
            get(
                &a,
                &format!("/api/append?name=Fresh&values={}", values.join(","))
            )
            .status,
            200
        );
        // The same request must now be a miss (epoch bumped → entries
        // dropped) and its answer must include the fresh verbatim clone;
        // the traffic counters survived the invalidation.
        let after = String::from_utf8(get(&a, target).body).unwrap();
        assert!(after.contains("\"hits\":1"), "{after}");
        assert!(after.contains("\"misses\":2"), "{after}");
        assert!(after.contains("\"Fresh\""), "stale cache: {after}");
    }

    #[test]
    fn append_rejects_bad_requests_with_typed_statuses() {
        let a = app();
        assert_eq!(get(&a, "/api/append").status, 400);
        assert_eq!(get(&a, "/api/append?name=X").status, 400);
        assert_eq!(get(&a, "/api/append?name=X&values=1,2,banana").status, 400);
        // A duplicate name conflicts with the published collection: 409.
        let r = get(&a, "/api/append?name=MA-GrowthRate&values=1,2,3,4,5,6");
        assert_eq!(r.status, 409, "{:?}", String::from_utf8(r.body));
        // None of the rejected appends published an epoch.
        assert_eq!(a.engine.epoch(), 0);
    }

    #[test]
    fn malformed_numeric_params_are_400s_with_the_offending_value() {
        let a = app();
        for target in [
            "/api/match?series=MA-GrowthRate&start=4&len=8&k=banana",
            "/api/match?series=MA-GrowthRate&start=x&len=8",
            "/api/match?series=MA-GrowthRate&start=4&len=eight",
            "/api/seasonal?series=MA-GrowthRate&min_occurrences=2.5",
            "/api/seasonal?series=MA-GrowthRate&max_patterns=-3",
            "/api/threshold?len=tall",
            "/api/monitor?series=MA-GrowthRate&start=0&len=6&target=MA-GrowthRate&eps=wide",
        ] {
            let r = get(&a, target);
            assert_eq!(r.status, 400, "{target}");
            let body = String::from_utf8(r.body).unwrap();
            assert!(body.contains("invalid value"), "{target}: {body}");
        }
    }

    #[test]
    fn monitor_api_reports_disjoint_matches() {
        let a = app();
        // Monitor a series for its own opening window: the verbatim
        // occurrence must be reported at distance ~0.
        let r = get(
            &a,
            "/api/monitor?series=MA-GrowthRate&start=0&len=6&target=MA-GrowthRate&eps=0.001",
        );
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"target\":\"MA-GrowthRate\""), "{body}");
        assert!(body.contains("\"start\":0"), "{body}");
        // Missing/unknown target are 4xx, not panics.
        assert_eq!(
            get(&a, "/api/monitor?series=MA-GrowthRate&start=0&len=6").status,
            400
        );
        assert_eq!(
            get(
                &a,
                "/api/monitor?series=MA-GrowthRate&start=0&len=6&target=Nope"
            )
            .status,
            404
        );
    }

    #[test]
    fn cluster_backend_without_configuration_is_a_400_not_a_panic() {
        let a = app();
        let r = get(
            &a,
            "/api/match?series=MA-GrowthRate&start=4&len=8&k=2&backend=cluster",
        );
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("no cluster configured"), "{body}");
        // And an unconfigured cluster never shows up in introspection.
        let listing = String::from_utf8(get(&a, "/api/backends").body).unwrap();
        assert!(!listing.contains("\"cluster\""), "{listing}");
    }

    #[test]
    fn cluster_backend_with_dead_shards_is_a_502_bad_gateway() {
        // Reserve a port and close it: connecting must fail fast.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let a = app().with_cluster(vec![dead]);
        let t0 = std::time::Instant::now();
        let r = get(
            &a,
            "/api/match?series=MA-GrowthRate&start=4&len=8&k=2&backend=cluster",
        );
        assert_eq!(r.status, 502, "{:?}", String::from_utf8(r.body));
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "dead peers must fail fast, not hang: {:?}",
            t0.elapsed()
        );
    }

    /// Round-robin partition the app's dataset over `n` live shard
    /// servers; returns their addresses.
    fn spawn_matters_shards(n: usize) -> Vec<String> {
        let ds = matters_collection(&MattersConfig {
            indicators: vec![Indicator::GrowthRate],
            ..MattersConfig::default()
        });
        (0..n)
            .map(|s| {
                let part: Vec<TimeSeries> = (0..ds.len())
                    .filter(|g| g % n == s)
                    .map(|g| ds.series(g as u32).unwrap().clone())
                    .collect();
                let (engine, _) = Onex::build(
                    Dataset::from_series(part).unwrap(),
                    BaseConfig::new(1.0, 6, 10),
                )
                .unwrap();
                let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                let addr = listener.local_addr().unwrap().to_string();
                let server = onex_net::ShardServer::new(Arc::new(engine));
                std::thread::spawn(move || {
                    let _ = server.serve_with(
                        listener,
                        &onex_net::AcceptOptions {
                            workers: 2,
                            queue: 8,
                            ..onex_net::AcceptOptions::default()
                        },
                    );
                });
                addr
            })
            .collect()
    }

    #[test]
    fn health_and_match_report_cluster_coverage_and_breakers_over_http() {
        let shards = spawn_matters_shards(2);
        // Shard 1 goes through a chaos proxy so the test can kill and
        // restart it without process management.
        let proxy = onex_net::ChaosProxy::spawn(shards[1].clone(), Vec::new()).unwrap();
        let a = app().with_cluster(vec![shards[0].clone(), proxy.addr().to_string()]);

        // Before the first cluster request, health reports the fleet as
        // configured but unconnected — and never dials.
        let body = String::from_utf8(get(&a, "/api/health").body).unwrap();
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"connected\":false"), "{body}");

        // A healthy cluster query reports full coverage.
        let r = get(
            &a,
            "/api/match?series=MA-GrowthRate&start=4&len=8&k=2&backend=cluster",
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8(r.body));
        let body = String::from_utf8(r.body).unwrap();
        assert!(
            body.contains(
                "\"coverage\":{\"shards_answered\":2,\"shards_total\":2,\"degraded\":false}"
            ),
            "{body}"
        );

        // Health now exposes the topology and closed breakers.
        let body = String::from_utf8(get(&a, "/api/health").body).unwrap();
        assert!(body.contains("\"connected\":true"), "{body}");
        assert!(body.contains("\"degrade\":\"partial\""), "{body}");
        assert!(body.contains("\"state\":\"closed\""), "{body}");
        assert!(body.contains(&shards[0]), "{body}");
        assert!(body.contains("\"hedges\""), "{body}");

        // The backends listing carries the same topology per slot.
        let body = String::from_utf8(get(&a, "/api/backends").body).unwrap();
        assert!(body.contains("\"cluster\""), "{body}");
        assert!(body.contains("\"topology\""), "{body}");
        assert!(body.contains("\"degrade\":\"partial\""), "{body}");
        // And the summary reports the cluster's posture.
        let body = String::from_utf8(get(&a, "/api/summary").body).unwrap();
        assert!(body.contains("\"cluster\":{\"connected\":true"), "{body}");

        // Kill shard 1: the gateway's Partial policy keeps answering,
        // and the JSON says exactly what was missing.
        proxy.set_fault(Some(onex_net::Fault::Drop));
        let r = get(
            &a,
            "/api/match?series=MA-GrowthRate&start=4&len=8&k=2&backend=cluster",
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8(r.body));
        let body = String::from_utf8(r.body).unwrap();
        assert!(
            body.contains(
                "\"coverage\":{\"shards_answered\":1,\"shards_total\":2,\"degraded\":true}"
            ),
            "{body}"
        );
        // The dead replica's breaker recorded the failure.
        let body = String::from_utf8(get(&a, "/api/health").body).unwrap();
        assert!(body.contains("\"failures\":"), "{body}");
    }

    #[test]
    fn bad_requests_get_4xx() {
        let a = app();
        assert_eq!(get(&a, "/api/match").status, 400);
        assert_eq!(get(&a, "/api/match?series=Nowhere").status, 404);
        assert_eq!(
            get(&a, "/api/match?series=MA-GrowthRate&start=99&len=8").status,
            400
        );
        assert_eq!(get(&a, "/nope").status, 404);
        let mut post = Request::get("/").unwrap();
        post.method = "POST".into();
        assert_eq!(a.handle(&post).status, 405);
    }

    #[test]
    fn svg_views_render() {
        let a = app();
        for target in [
            "/view/overview.svg",
            "/view/overview.svg?len=8",
            "/view/preview.svg?series=MA-GrowthRate&start=6&len=8",
            "/view/match.svg?series=MA-GrowthRate&start=6&len=8",
            "/view/radial.svg?series=MA-GrowthRate&start=6&len=8",
            "/view/scatter.svg?series=MA-GrowthRate&start=6&len=8",
            "/view/seasonal.svg?series=MA-GrowthRate",
        ] {
            let r = get(&a, target);
            assert_eq!(r.status, 200, "{target}");
            assert_eq!(r.content_type, "image/svg+xml");
            let body = String::from_utf8(r.body).unwrap();
            assert!(body.starts_with("<svg"), "{target}");
        }
    }

    #[test]
    fn threshold_api() {
        let r = get(&app(), "/api/threshold?len=8");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"suggested\":"));
        assert!(body.contains("\"ladder\":["));
    }

    #[test]
    fn seasonal_api() {
        let a = app();
        let r = get(&a, "/api/seasonal?series=MA-GrowthRate");
        assert_eq!(r.status, 200);
        assert_eq!(get(&a, "/api/seasonal?series=zz").status, 404);
        assert_eq!(get(&a, "/api/seasonal").status, 400);
    }

    // ---- serve loop hardening ------------------------------------------

    /// A per-connection race: never counts toward the give-up threshold.
    fn transient_error() -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::ConnectionAborted, "peer aborted")
    }

    /// A listener-level failure: counts toward the give-up threshold.
    fn fatal_error() -> std::io::Error {
        std::io::Error::other("accept failed")
    }

    #[test]
    fn persistent_accept_failures_back_off_then_bail() {
        let a = app();
        let opts = ServeOptions {
            workers: 1,
            queue: 4,
            max_consecutive_accept_failures: 5,
            accept_backoff: Duration::from_millis(2),
        };
        // An endlessly failing listener: without the failure cap this
        // loop would never return (and before the fix it would not even
        // sleep — a hot busy-loop).
        let failures = std::iter::repeat_with(|| Err(fatal_error()));
        let t0 = std::time::Instant::now();
        let err = a.serve_streams(failures, &opts).unwrap_err();
        assert!(err.to_string().contains("accept failed"), "{err}");
        // 4 backoff sleeps before the 5th failure bails: 2+4+8+16 ms.
        assert!(
            t0.elapsed() >= Duration::from_millis(20),
            "backoff must actually sleep: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn transient_accept_errors_never_trip_the_failure_cap() {
        let a = app();
        let opts = ServeOptions {
            workers: 1,
            queue: 4,
            max_consecutive_accept_failures: 3,
            accept_backoff: Duration::ZERO,
        };
        // A flood of per-connection races far beyond the cap: they back
        // off but must not shut the server down (the iterator ending is
        // the only reason the loop returns, cleanly).
        let aborts = (0..50).map(|_| Err(transient_error()));
        a.serve_streams(aborts, &opts)
            .expect("connection races are not listener failures");
    }

    #[test]
    fn transient_accept_failures_recover_and_the_pool_serves() {
        use std::io::{Read as _, Write as _};

        let a = app();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let clients: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut s = std::net::TcpStream::connect(addr).unwrap();
                    write!(s, "GET /api/series HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
                    let mut buf = String::new();
                    s.read_to_string(&mut buf).unwrap();
                    assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
                })
            })
            .collect();
        let accepted: Vec<std::io::Result<TcpStream>> =
            (0..3).map(|_| listener.accept().map(|(s, _)| s)).collect();
        // Failures interleaved below the threshold: successes reset the
        // consecutive count, so the loop survives and ends cleanly when
        // the source is exhausted.
        let mut items = vec![Err(fatal_error()), Err(fatal_error())];
        items.extend(accepted);
        items.push(Err(fatal_error()));
        let opts = ServeOptions {
            workers: 2,
            queue: 2,
            max_consecutive_accept_failures: 3,
            accept_backoff: Duration::from_millis(1),
        };
        a.serve_streams(items.into_iter(), &opts)
            .expect("transient failures below the threshold are survivable");
        for c in clients {
            c.join().unwrap();
        }
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        use std::io::{Read as _, Write as _};

        let a = app();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            // Two pipelined requests: the first opts into keep-alive, the
            // second does not — the server must answer both on this one
            // socket and close only after the second.
            write!(
                s,
                "GET /api/series HTTP/1.1\r\nConnection: keep-alive\r\n\r\n\
                 GET /api/summary HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            .unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            assert_eq!(buf.matches("HTTP/1.1 200 OK").count(), 2, "{buf}");
            let (first, second) = buf.split_at(buf.rfind("HTTP/1.1").unwrap());
            assert!(first.contains("Connection: keep-alive\r\n"), "{first}");
            assert!(second.contains("Connection: close\r\n"), "{second}");
            assert!(second.contains("\"per_length\""), "{second}");
        });
        let accepted = listener.accept().map(|(s, _)| s);
        let opts = ServeOptions {
            workers: 1,
            queue: 1,
            max_consecutive_accept_failures: 3,
            accept_backoff: Duration::from_millis(1),
        };
        a.serve_streams(std::iter::once(accepted), &opts).unwrap();
        client.join().unwrap();
    }

    #[test]
    fn worker_pool_is_fixed_size_yet_serves_more_clients_than_workers() {
        use std::io::{Read as _, Write as _};

        let a = app();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        const CLIENTS: usize = 8;
        let clients: Vec<_> = (0..CLIENTS)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut s = std::net::TcpStream::connect(addr).unwrap();
                    write!(s, "GET /api/summary HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
                    let mut buf = String::new();
                    s.read_to_string(&mut buf).unwrap();
                    assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
                })
            })
            .collect();
        let accepted: Vec<std::io::Result<TcpStream>> = (0..CLIENTS)
            .map(|_| listener.accept().map(|(s, _)| s))
            .collect();
        // Two workers, a two-slot queue, eight connections: every one is
        // served (backpressure, not drops) by a bounded thread pool.
        let opts = ServeOptions {
            workers: 2,
            queue: 2,
            max_consecutive_accept_failures: 3,
            accept_backoff: Duration::from_millis(1),
        };
        a.serve_streams(accepted.into_iter(), &opts).unwrap();
        for c in clients {
            c.join().unwrap();
        }
    }
}
