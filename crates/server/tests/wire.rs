//! Over-the-wire test: a real TCP listener, a real client socket.
//!
//! This is the ROADMAP's end-to-end smoke test: bind an ephemeral port,
//! run [`App::serve`] on a thread, issue real HTTP requests, and assert
//! status codes plus *parseable* JSON (via the strict [`Json::parse`]).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use onex_core::Onex;
use onex_grouping::BaseConfig;
use onex_net::{AcceptOptions, ShardServer};
use onex_server::json::Json;
use onex_server::App;
use onex_tseries::gen::{matters_collection, Indicator, MattersConfig};
use onex_tseries::{Dataset, TimeSeries};

fn fetch(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn spawn_server() -> std::net::SocketAddr {
    let ds = matters_collection(&MattersConfig {
        indicators: vec![Indicator::GrowthRate],
        ..MattersConfig::default()
    });
    // The server loads the dataset itself, so the wire-visible summary
    // includes the construction report of the indexed builder.
    let app = App::build(ds, BaseConfig::new(1.0, 6, 10)).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = app.serve(listener);
    });
    addr
}

#[test]
fn serves_real_sockets() {
    let addr = spawn_server();

    // One real GET /api/summary: 200 + parseable JSON with the expected
    // top-level keys.
    let (status, body) = fetch(addr, "/api/summary");
    assert_eq!(status, 200);
    let summary = Json::parse(&body).expect("summary is valid JSON");
    let Json::Obj(pairs) = &summary else {
        panic!("summary is an object: {body}");
    };
    assert!(pairs
        .iter()
        .any(|(k, v)| k == "series" && *v == Json::Num(50.0)));
    assert!(pairs.iter().any(|(k, _)| k == "per_length"));
    // The load step's construction report, work counters included.
    let build = pairs
        .iter()
        .find(|(k, _)| k == "build")
        .map(|(_, v)| v)
        .expect("summary reports the build step");
    let Json::Obj(build_fields) = build else {
        panic!("build is an object: {body}");
    };
    for key in ["elapsed_ms", "subsequences_per_sec", "work"] {
        assert!(
            build_fields.iter().any(|(k, _)| k == key),
            "missing {key}: {body}"
        );
    }

    let (status, body) = fetch(addr, "/api/match?series=MA-GrowthRate&start=4&len=8&k=2");
    assert_eq!(status, 200);
    assert!(Json::parse(&body).is_ok(), "{body}");
    assert_eq!(body.matches("\"distance\":").count(), 2);

    // The ?backend= route over a real socket.
    let (status, body) = fetch(
        addr,
        "/api/match?series=MA-GrowthRate&start=4&len=8&k=1&backend=ucrsuite",
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"backend\":\"ucrsuite\""), "{body}");
    assert!(Json::parse(&body).is_ok(), "{body}");

    // The scale-out backends (sharded fan-out, caching decorator) are
    // reachable through the same route.
    for backend in ["sharded", "cached"] {
        let (status, body) = fetch(
            addr,
            &format!("/api/match?series=MA-GrowthRate&start=4&len=8&k=2&backend={backend}"),
        );
        assert_eq!(status, 200, "{backend}");
        assert!(
            body.contains(&format!("\"backend\":\"{backend}\"")),
            "{body}"
        );
        assert!(Json::parse(&body).is_ok(), "{body}");
    }
    // A repeated cached request is a hit, visible in the wire payload.
    let (_, body) = fetch(
        addr,
        "/api/match?series=MA-GrowthRate&start=4&len=8&k=2&backend=cached",
    );
    assert!(body.contains("\"hits\":1"), "{body}");

    // Typed errors surface as proper status codes over the wire too.
    let (status, _) = fetch(addr, "/api/match?series=MA-GrowthRate&start=4&len=8&k=zero");
    assert_eq!(status, 400);

    let (status, body) = fetch(addr, "/view/overview.svg");
    assert_eq!(status, 200);
    assert!(body.starts_with("<svg"));

    let (status, _) = fetch(addr, "/definitely/not/here");
    assert_eq!(status, 404);

    // Concurrent clients.
    let mut joins = Vec::new();
    for _ in 0..4 {
        joins.push(std::thread::spawn(move || {
            let (status, body) = fetch(addr, "/api/series");
            assert_eq!(status, 200);
            assert!(Json::parse(&body).is_ok());
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

/// End-to-end distributed path: two binary shard servers behind an HTTP
/// gateway, `?backend=cluster` agreeing with `?backend=onex` over real
/// sockets all the way down.
#[test]
fn cluster_backend_over_http_agrees_with_onex() {
    let ds = matters_collection(&MattersConfig {
        indicators: vec![Indicator::GrowthRate],
        ..MattersConfig::default()
    });
    let config = BaseConfig::new(1.0, 6, 10);

    // Round-robin partition (global g → shard g % 2, local g / 2): the
    // identity ClusterEngine assumes, over the exact dataset the gateway
    // serves locally.
    let shard_addrs: Vec<String> = (0..2)
        .map(|s| {
            let part: Vec<TimeSeries> = (0..ds.len())
                .filter(|g| g % 2 == s)
                .map(|g| ds.series(g as u32).unwrap().clone())
                .collect();
            let (engine, _) = Onex::build(Dataset::from_series(part).unwrap(), config.clone())
                .expect("shard builds");
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let server = ShardServer::new(Arc::new(engine));
            std::thread::spawn(move || {
                let _ = server.serve_with(
                    listener,
                    &AcceptOptions {
                        workers: 1,
                        queue: 4,
                        ..AcceptOptions::default()
                    },
                );
            });
            addr
        })
        .collect();

    let (engine, _) = Onex::build(ds, config).unwrap();
    let app = App::new(Arc::new(engine)).with_cluster(shard_addrs);
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = app.serve(listener);
    });

    // include_self=true so the onex baseline skips its self-exclusion —
    // the cluster scans everything, exactly like a plain k-best.
    let target = "/api/match?series=MA-GrowthRate&start=4&len=8&k=3&include_self=true";
    let (status, onex_body) = fetch(addr, target);
    assert_eq!(status, 200, "{onex_body}");
    let (status, cluster_body) = fetch(addr, &format!("{target}&backend=cluster"));
    assert_eq!(status, 200, "{cluster_body}");
    assert!(
        cluster_body.contains("\"backend\":\"cluster\""),
        "{cluster_body}"
    );

    // Same matches (names, windows, distances); only labels and work
    // counters differ between the local engine and the shard fleet.
    let matches_of = |body: &str| {
        let Json::Obj(fields) = Json::parse(body).expect("valid JSON") else {
            panic!("object: {body}");
        };
        fields
            .into_iter()
            .find(|(k, _)| k == "matches")
            .map(|(_, v)| v.render())
            .expect("matches field")
    };
    assert_eq!(matches_of(&onex_body), matches_of(&cluster_body));

    // The distributed response carries its pool and gossip observability.
    assert!(cluster_body.contains("\"gossip\":{"), "{cluster_body}");
    assert!(cluster_body.contains("\"shards\":2"), "{cluster_body}");
    assert!(
        cluster_body.contains("\"tightenings_sent\":"),
        "{cluster_body}"
    );

    // Capability introspection lists the connectable cluster.
    let (_, listing) = fetch(addr, "/api/backends");
    assert!(listing.contains("\"name\":\"cluster\""), "{listing}");
}
