//! Synthetic ElectricityLoad collection.
//!
//! The paper's seasonal-exploration demo (Fig 4) runs on the
//! ElectricityLoad archive: per-household electrical consumption in
//! Portugal sampled sub-hourly over a year. This generator produces the
//! structural equivalent (DESIGN.md §4): long univariate series with
//! nested daily / weekly / annual seasonality plus habit noise, so that
//! "does this household repeat its summer consumption pattern?" has a
//! ground-truth answer the seasonal query can be tested against.

use rand::Rng;

use super::rng;
use crate::{Dataset, TimeAxis, TimeSeries};

/// Configuration for the household-load generator.
#[derive(Debug, Clone, Copy)]
pub struct ElectricityConfig {
    /// Number of households (series).
    pub households: usize,
    /// Number of days simulated.
    pub days: usize,
    /// Samples per day (24 = hourly, 96 = 15-minute like the archive).
    pub samples_per_day: usize,
    /// Relative strength of random habit noise (0 = perfectly regular).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ElectricityConfig {
    fn default() -> Self {
        ElectricityConfig {
            households: 5,
            days: 365,
            samples_per_day: 24,
            noise: 0.08,
            seed: 0xE1EC,
        }
    }
}

/// Generate the household-load dataset, one series per household named
/// `household-0`, `household-1`, ... with an hourly axis.
pub fn electricity_load(cfg: &ElectricityConfig) -> Dataset {
    assert!(cfg.samples_per_day >= 2, "need at least 2 samples per day");
    let mut ds = Dataset::new();
    for h in 0..cfg.households {
        let values = one_household(cfg, h);
        ds.push(TimeSeries::with_axis(
            format!("household-{h}"),
            values,
            TimeAxis::hourly(),
        ))
        .expect("generated names are unique");
    }
    ds
}

fn one_household(cfg: &ElectricityConfig, index: usize) -> Vec<f64> {
    let mut r = rng(cfg.seed.wrapping_add(index as u64));
    let n = cfg.days * cfg.samples_per_day;
    let mut out = Vec::with_capacity(n);

    // Stable household character.
    let base_load = 0.3 + 0.4 * r.gen::<f64>(); // kW standby
    let peak_load = 1.5 + 2.0 * r.gen::<f64>(); // kW evening peak
    let morning_peak = 0.4 + 0.5 * r.gen::<f64>(); // relative morning bump
    let weekend_shift = 0.15 + 0.2 * r.gen::<f64>(); // later waking on weekends
    let winter_heating = 0.8 + 1.0 * r.gen::<f64>(); // kW seasonal component

    for day in 0..cfg.days {
        let weekday = day % 7; // day 0 is a Monday
        let is_weekend = weekday >= 5;
        // Annual seasonality: peak heating mid-winter (day 0 = Jan 1 in
        // Portugal; heating dominates cooling).
        let season = (day as f64 * std::f64::consts::TAU / 365.0).cos(); // +1 winter, -1 summer
        let heating = winter_heating * (0.5 + 0.5 * season).powi(2);
        // Day-level habit noise: how energetic the household is today.
        let day_mood = 1.0 + cfg.noise * 4.0 * (r.gen::<f64>() - 0.5);

        for s in 0..cfg.samples_per_day {
            let hour = s as f64 * 24.0 / cfg.samples_per_day as f64;
            let shift = if is_weekend { weekend_shift * 3.0 } else { 0.0 };
            // Morning bump around 7:30 (+weekend shift), evening peak ~19:30.
            let morning = gaussian_bump(hour, 7.5 + shift, 1.2) * morning_peak * peak_load;
            let evening = gaussian_bump(hour, 19.5, 2.2) * peak_load;
            // Overnight heating contributes mostly outside 10:00–16:00.
            let heat_profile = 0.6 + 0.4 * (std::f64::consts::TAU * (hour - 3.0) / 24.0).cos();
            let sample_noise = 1.0 + cfg.noise * (r.gen::<f64>() * 2.0 - 1.0);
            let kw =
                (base_load + morning + evening + heating * heat_profile) * day_mood * sample_noise;
            out.push(kw.max(0.02));
        }
    }
    out
}

/// Unnormalised Gaussian bump centred at `c` with width `w`, periodic in
/// the 24-hour clock (a 23:30 peak spills into 00:30).
fn gaussian_bump(hour: f64, c: f64, w: f64) -> f64 {
    let mut d = (hour - c).abs();
    if d > 12.0 {
        d = 24.0 - d;
    }
    (-d * d / (2.0 * w * w)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{autocorrelation, mean_std};

    fn small() -> ElectricityConfig {
        ElectricityConfig {
            households: 2,
            days: 84, // 12 weeks
            samples_per_day: 24,
            noise: 0.05,
            seed: 11,
        }
    }

    #[test]
    fn shape_and_determinism() {
        let ds = electricity_load(&small());
        assert_eq!(ds.len(), 2);
        let s = ds.series(0).unwrap();
        assert_eq!(s.len(), 84 * 24);
        assert!(s.is_finite());
        assert!(s.values().iter().all(|&v| v > 0.0), "load is positive");
        let ds2 = electricity_load(&small());
        assert_eq!(s.values(), ds2.series(0).unwrap().values());
    }

    #[test]
    fn daily_periodicity_dominates() {
        let ds = electricity_load(&small());
        let xs = ds.series(0).unwrap().values();
        let day = autocorrelation(xs, 24);
        let off = autocorrelation(xs, 17);
        assert!(day > 0.5, "24h lag autocorrelation strong, got {day}");
        assert!(day > off, "daily beats off-cycle lag ({day} vs {off})");
    }

    #[test]
    fn weekly_structure_present() {
        let ds = electricity_load(&small());
        let xs = ds.series(0).unwrap().values();
        let week = autocorrelation(xs, 24 * 7);
        let midweek = autocorrelation(xs, 24 * 3 + 12);
        assert!(
            week > midweek,
            "weekly lag beats a 3.5-day lag ({week} vs {midweek})"
        );
    }

    #[test]
    fn winter_exceeds_summer() {
        let cfg = ElectricityConfig {
            households: 1,
            days: 365,
            ..small()
        };
        let ds = electricity_load(&cfg);
        let xs = ds.series(0).unwrap().values();
        let jan: f64 = xs[..31 * 24].iter().sum::<f64>() / (31.0 * 24.0);
        let jul_start = 181 * 24;
        let jul: f64 = xs[jul_start..jul_start + 31 * 24].iter().sum::<f64>() / (31.0 * 24.0);
        assert!(jan > jul * 1.2, "heating winter {jan} vs summer {jul}");
    }

    #[test]
    fn households_differ() {
        let ds = electricity_load(&small());
        let a = ds.series(0).unwrap().values();
        let b = ds.series(1).unwrap().values();
        let (ma, _) = mean_std(a);
        let (mb, _) = mean_std(b);
        assert!((ma - mb).abs() > 1e-3, "distinct household characters");
    }

    #[test]
    fn bump_wraps_midnight() {
        assert!(gaussian_bump(0.5, 23.5, 1.0) > 0.5);
        assert!(gaussian_bump(12.0, 23.5, 1.0) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "samples per day")]
    fn rejects_degenerate_sampling() {
        electricity_load(&ElectricityConfig {
            samples_per_day: 1,
            ..small()
        });
    }
}
