//! Deterministic workload generators.
//!
//! The paper demonstrates ONEX on two real collections we cannot
//! redistribute: the MATTERS economic/social indicators for the fifty US
//! states, and the ElectricityLoad household-consumption archive. The
//! generators here are the documented substitutions (DESIGN.md §4): they
//! reproduce the *structural* properties ONEX exercises — heterogeneous
//! scales, short misaligned annual series, long series with genuinely
//! recurring motifs — while staying fully deterministic under a seed.

mod electricity;
mod matters;
mod synthetic;

pub use electricity::{electricity_load, ElectricityConfig};
pub use matters::{matters_collection, state_names, Indicator, MattersConfig};
pub use synthetic::{
    clustered_dataset, planted_motif_series, random_walk, random_walk_dataset, sine_mix,
    sine_mix_dataset, SyntheticConfig,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG used by every generator. `StdRng` is seedable and portable, so a
/// `(seed, config)` pair pins a workload byte-for-byte across platforms.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic() {
        let a: f64 = rng(7).gen();
        let b: f64 = rng(7).gen();
        let c: f64 = rng(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
