//! Generic synthetic workloads: random walks, sine mixtures and series
//! with planted motifs. These drive the scaling experiments (E5, E7) where
//! the paper uses "huge" collections of unspecified content, and the
//! correctness tests that need a known ground truth.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand_distr_normal::Normal;

use super::rng;
use crate::{Dataset, TimeSeries};

/// Minimal inline normal sampler (Box–Muller) so we do not pull in
/// `rand_distr`; the quality requirements here are workload-shaping, not
/// statistical testing.
mod rand_distr_normal {
    use rand::Rng;

    /// Normal distribution via Box–Muller transform.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal {
        mean: f64,
        std: f64,
    }

    impl Normal {
        pub fn new(mean: f64, std: f64) -> Self {
            assert!(std >= 0.0, "negative standard deviation");
            Normal { mean, std }
        }

        pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // Box–Muller; u1 in (0, 1] to avoid ln(0).
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            self.mean + self.std * z
        }
    }
}

/// Shared knobs for the generic generators.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Number of series in a dataset.
    pub series: usize,
    /// Samples per series.
    pub len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            series: 50,
            len: 128,
            seed: 0xC0FFEE,
        }
    }
}

/// One Gaussian random walk of length `len`: x_0 = 0, x_t = x_{t-1} + N(0, step²).
pub fn random_walk(len: usize, step: f64, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    let normal = Normal::new(0.0, step);
    let mut x = 0.0;
    (0..len)
        .map(|_| {
            x += normal.sample(&mut r);
            x
        })
        .collect()
}

/// A dataset of independent random walks named `walk-0`, `walk-1`, ...
pub fn random_walk_dataset(cfg: SyntheticConfig) -> Dataset {
    let mut ds = Dataset::new();
    for i in 0..cfg.series {
        let values = random_walk(cfg.len, 1.0, cfg.seed.wrapping_add(i as u64));
        ds.push(TimeSeries::new(format!("walk-{i}"), values))
            .expect("generated names are unique");
    }
    ds
}

/// A mixture of `harmonics` random sinusoids plus Gaussian noise.
///
/// Base period is `len / 4` samples so several full cycles fit; harmonic k
/// runs k times faster with 1/k amplitude (pink-ish spectrum).
pub fn sine_mix(len: usize, harmonics: usize, noise: f64, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    let phase = Uniform::new(0.0, std::f64::consts::TAU);
    let phases: Vec<f64> = (0..harmonics.max(1))
        .map(|_| phase.sample(&mut r))
        .collect();
    let normal = Normal::new(0.0, noise);
    let base = (len as f64 / 4.0).max(2.0);
    (0..len)
        .map(|t| {
            let mut v = 0.0;
            for (k, &ph) in phases.iter().enumerate() {
                let freq = (k + 1) as f64;
                v += (std::f64::consts::TAU * freq * t as f64 / base + ph).sin() / freq;
            }
            v + normal.sample(&mut r)
        })
        .collect()
}

/// Dataset of sine mixtures named `sine-0`, `sine-1`, ...
pub fn sine_mix_dataset(cfg: SyntheticConfig, harmonics: usize, noise: f64) -> Dataset {
    let mut ds = Dataset::new();
    for i in 0..cfg.series {
        let values = sine_mix(cfg.len, harmonics, noise, cfg.seed.wrapping_add(i as u64));
        ds.push(TimeSeries::new(format!("sine-{i}"), values))
            .expect("generated names are unique");
    }
    ds
}

/// A collection whose series fall into `archetypes` shape families: each
/// series is one archetype's sine mixture plus small per-series jitter.
/// This is the regime real sensor/periodic archives (and the UCR archive
/// the paper's evaluation draws on) live in, and the regime the ONEX base
/// compacts well — series of one family produce near-identical windows
/// that collapse into shared similarity groups.
///
/// # Panics
/// Panics when `archetypes` is zero.
pub fn clustered_dataset(cfg: SyntheticConfig, archetypes: usize, jitter: f64) -> Dataset {
    assert!(archetypes > 0, "need at least one archetype");
    let mut ds = Dataset::new();
    // Archetype phase sets are derived from the seed only, so the family
    // shapes are stable as the series count grows.
    let archetype_phases: Vec<Vec<f64>> = (0..archetypes)
        .map(|a| {
            let mut r = rng(cfg.seed.wrapping_mul(31).wrapping_add(a as u64));
            let phase = Uniform::new(0.0, std::f64::consts::TAU);
            (0..3).map(|_| phase.sample(&mut r)).collect()
        })
        .collect();
    let base = (cfg.len as f64 / 4.0).max(2.0);
    for i in 0..cfg.series {
        let family = i % archetypes;
        let mut r = rng(cfg.seed.wrapping_add(1000 + i as u64));
        let noise = Normal::new(0.0, jitter);
        let values: Vec<f64> = (0..cfg.len)
            .map(|t| {
                let mut v = 0.0;
                for (k, &ph) in archetype_phases[family].iter().enumerate() {
                    let freq = (k + 1) as f64;
                    v += (std::f64::consts::TAU * freq * t as f64 / base + ph).sin() / freq;
                }
                v + noise.sample(&mut r)
            })
            .collect();
        ds.push(TimeSeries::new(format!("fam{family}-{i}"), values))
            .expect("generated names are unique");
    }
    ds
}

/// A noise series with `occurrences` copies of one random motif planted at
/// non-overlapping positions. Returns `(series, motif, positions)`; the
/// seasonal-query tests assert that ONEX rediscovers the positions.
///
/// # Panics
/// Panics when the requested occurrences cannot fit disjointly.
pub fn planted_motif_series(
    len: usize,
    motif_len: usize,
    occurrences: usize,
    noise: f64,
    seed: u64,
) -> (Vec<f64>, Vec<f64>, Vec<usize>) {
    assert!(motif_len > 0, "motif_len must be positive");
    assert!(
        occurrences * motif_len <= len,
        "{occurrences} motifs of {motif_len} samples cannot fit in {len}"
    );
    let mut r = rng(seed);
    let normal = Normal::new(0.0, noise);
    // Background: low-amplitude noise around 0.
    let mut series: Vec<f64> = (0..len).map(|_| normal.sample(&mut r)).collect();
    // Motif: a distinctive smooth bump scaled well above the noise floor.
    let motif: Vec<f64> = (0..motif_len)
        .map(|t| {
            let x = t as f64 / (motif_len - 1).max(1) as f64;
            // Asymmetric double bump: hard for pure noise to mimic.
            8.0 * (std::f64::consts::PI * x).sin() + 3.0 * (2.0 * std::f64::consts::TAU * x).sin()
        })
        .collect();
    // Place occurrences on an even grid with random jitter inside each slot.
    let slot = len / occurrences;
    let mut positions = Vec::with_capacity(occurrences);
    for k in 0..occurrences {
        let lo = k * slot;
        let hi = (lo + slot).min(len) - motif_len;
        let start = if hi > lo { r.gen_range(lo..=hi) } else { lo };
        for (j, &m) in motif.iter().enumerate() {
            series[start + j] += m;
        }
        positions.push(start);
    }
    (series, motif, positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean_std, min_max};

    #[test]
    fn random_walk_is_deterministic_and_drifts() {
        let a = random_walk(256, 1.0, 42);
        let b = random_walk(256, 1.0, 42);
        assert_eq!(a, b);
        let (lo, hi) = min_max(&a).unwrap();
        assert!(hi - lo > 1.0, "a 256-step walk moves");
    }

    #[test]
    fn random_walk_step_scales_spread() {
        let small = random_walk(512, 0.1, 1);
        let large = random_walk(512, 10.0, 1);
        let (_, s_small) = mean_std(&small);
        let (_, s_large) = mean_std(&large);
        assert!(s_large > s_small * 50.0);
    }

    #[test]
    fn dataset_generators_name_uniquely() {
        let cfg = SyntheticConfig {
            series: 10,
            len: 32,
            seed: 5,
        };
        let ds = random_walk_dataset(cfg);
        assert_eq!(ds.len(), 10);
        assert!(ds.by_name("walk-9").is_some());
        let ds2 = sine_mix_dataset(cfg, 3, 0.1);
        assert_eq!(ds2.len(), 10);
        assert_eq!(ds2.series(0).unwrap().len(), 32);
    }

    #[test]
    fn sine_mix_oscillates() {
        let xs = sine_mix(128, 2, 0.0, 9);
        let (m, s) = mean_std(&xs);
        assert!(m.abs() < 0.3, "roughly centred, got {m}");
        assert!(s > 0.3, "oscillates, got std {s}");
        assert!(xs.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn planted_motifs_dominate_noise() {
        let (series, motif, positions) = planted_motif_series(1000, 50, 4, 0.2, 3);
        assert_eq!(positions.len(), 4);
        // Non-overlap.
        for w in positions.windows(2) {
            assert!(w[1] >= w[0] + 50, "motifs do not overlap");
        }
        // Each occurrence correlates strongly with the motif template.
        for &p in &positions {
            let window = &series[p..p + 50];
            let err: f64 = window
                .iter()
                .zip(&motif)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let scale: f64 = motif.iter().map(|m| m * m).sum::<f64>().sqrt();
            assert!(err < scale * 0.5, "occurrence at {p} matches template");
        }
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn planted_motifs_reject_impossible_packing() {
        planted_motif_series(100, 60, 2, 0.1, 0);
    }

    #[test]
    fn clustered_dataset_families_are_tight() {
        let cfg = SyntheticConfig {
            series: 12,
            len: 64,
            seed: 5,
        };
        let ds = clustered_dataset(cfg, 4, 0.05);
        assert_eq!(ds.len(), 12);
        // Same family: small distance; different family: large.
        let a0 = ds.by_name("fam0-0").unwrap().values();
        let a4 = ds.by_name("fam0-4").unwrap().values();
        let b1 = ds.by_name("fam1-1").unwrap().values();
        let same: f64 = a0
            .iter()
            .zip(a4)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let diff: f64 = a0
            .iter()
            .zip(b1)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(
            diff > same * 3.0,
            "families separate: same {same}, diff {diff}"
        );
    }

    #[test]
    #[should_panic(expected = "archetype")]
    fn clustered_dataset_rejects_zero_archetypes() {
        clustered_dataset(SyntheticConfig::default(), 0, 0.1);
    }
}
