//! Synthetic MATTERS collection.
//!
//! MATTERS (the Massachusetts Technology, Talent and Economic Reporting
//! System, <http://matters.mhtc.org/>) aggregates economic, social and
//! education indicators for the fifty US states from public feeds (Tax
//! Policy Center, Census Bureau, BEA). The collection itself is not
//! redistributable, so this module generates a structurally faithful
//! substitute (DESIGN.md §4):
//!
//! * one series per `(state, indicator)` pair, named `"{state}-{indicator}"`;
//! * indicators live on wildly different scales — growth rates in ±5
//!   percent, unemployment in tens of thousands of people — which is
//!   precisely what motivates per-domain similarity thresholds (§3.3 of the
//!   paper, experiment E8);
//! * states share a national business cycle (so cross-state similarity
//!   queries have meaningful answers, experiment E2) with state-specific
//!   loading, trend and noise;
//! * series are short (annual) and optionally ragged/misaligned, the
//!   regime ONEX's variable-length comparisons target.

use rand::Rng;

use super::rng;
use crate::{Dataset, TimeAxis, TimeSeries};

/// The fifty US states (postal codes) in alphabetical order.
pub fn state_names() -> &'static [&'static str; 50] {
    &[
        "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA",
        "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
        "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT",
        "VA", "WA", "WV", "WI", "WY",
    ]
}

/// An economic/social indicator with its real-world scale.
///
/// The `(base, spread, cycle, noise)` parameters are chosen so each
/// indicator's magnitude matches its real counterpart: similarity
/// thresholds that work for one are useless for another, reproducing the
/// paper's motivating observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Indicator {
    /// Annual GDP growth rate, percent (±5 range).
    GrowthRate,
    /// Unemployed persons, tens of thousands (level ~ 50_000..500_000).
    Unemployment,
    /// Technology-sector employment, thousands of jobs.
    TechEmployment,
    /// Combined state sales/use tax rate, percent (0..10, slow-moving).
    TaxRate,
    /// Median household income, dollars (~40_000..90_000).
    MedianIncome,
    /// Bachelor's-degree attainment, percent of adults (20..50).
    EducationAttainment,
}

impl Indicator {
    /// All indicators, in canonical order.
    pub fn all() -> &'static [Indicator] {
        &[
            Indicator::GrowthRate,
            Indicator::Unemployment,
            Indicator::TechEmployment,
            Indicator::TaxRate,
            Indicator::MedianIncome,
            Indicator::EducationAttainment,
        ]
    }

    /// Short name used in series names (`"MA-GrowthRate"`).
    pub fn name(&self) -> &'static str {
        match self {
            Indicator::GrowthRate => "GrowthRate",
            Indicator::Unemployment => "Unemployment",
            Indicator::TechEmployment => "TechEmployment",
            Indicator::TaxRate => "TaxRate",
            Indicator::MedianIncome => "MedianIncome",
            Indicator::EducationAttainment => "EducationAttainment",
        }
    }

    /// `(base, state_spread, cycle_amplitude, noise, trend_per_year)` in
    /// the indicator's natural unit.
    fn params(&self) -> (f64, f64, f64, f64, f64) {
        match self {
            Indicator::GrowthRate => (2.0, 1.0, 2.5, 0.6, 0.0),
            Indicator::Unemployment => (180_000.0, 120_000.0, 60_000.0, 8_000.0, -1_500.0),
            Indicator::TechEmployment => (120.0, 90.0, 25.0, 6.0, 3.0),
            Indicator::TaxRate => (6.0, 2.0, 0.3, 0.05, 0.02),
            Indicator::MedianIncome => (58_000.0, 12_000.0, 3_000.0, 900.0, 700.0),
            Indicator::EducationAttainment => (32.0, 8.0, 1.0, 0.4, 0.25),
        }
    }

    /// Whether the indicator moves *against* the business cycle
    /// (unemployment rises in recessions).
    fn counter_cyclical(&self) -> bool {
        matches!(self, Indicator::Unemployment)
    }
}

/// Configuration for the synthetic MATTERS collection.
#[derive(Debug, Clone)]
pub struct MattersConfig {
    /// First year of the panel.
    pub start_year: u32,
    /// Number of annual observations per series.
    pub years: usize,
    /// Indicators to generate (defaults to all six).
    pub indicators: Vec<Indicator>,
    /// When true, states report over different windows: lengths vary by up
    /// to a third and start years shift, reproducing the paper's
    /// "variable-length and misaligned" collections.
    pub ragged: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MattersConfig {
    fn default() -> Self {
        MattersConfig {
            start_year: 2001,
            years: 16,
            indicators: Indicator::all().to_vec(),
            ragged: false,
            seed: 0x3A77E25, // "MATTERS"
        }
    }
}

/// Generate the synthetic MATTERS collection: one series per
/// `(state, indicator)` pair.
pub fn matters_collection(cfg: &MattersConfig) -> Dataset {
    let mut r = rng(cfg.seed);
    // National business cycle shared by every state: an AR(1) with a slow
    // sinusoidal component (expansions and recessions), in "sigma" units.
    let horizon = cfg.years + 8; // room for misaligned starts
    let mut national = Vec::with_capacity(horizon);
    let mut level: f64 = 0.0;
    for t in 0..horizon {
        let shock: f64 = r.gen::<f64>() * 2.0 - 1.0;
        level = 0.7 * level + 0.6 * shock;
        let cycle = (t as f64 * std::f64::consts::TAU / 8.0).sin();
        national.push(0.6 * cycle + 0.4 * level);
    }

    let mut ds = Dataset::new();
    for (si, state) in state_names().iter().enumerate() {
        // Per-state structural character, stable across indicators.
        let loading = 0.5 + r.gen::<f64>(); // 0.5..1.5 exposure to the cycle
        let fortune = r.gen::<f64>() * 2.0 - 1.0; // -1..1 long-run luck
        let (start_shift, len) = if cfg.ragged {
            let shift = r.gen_range(0..=4usize);
            let cut = r.gen_range(0..=cfg.years / 3);
            (shift, cfg.years - cut)
        } else {
            (0, cfg.years)
        };
        for &ind in &cfg.indicators {
            let (base, spread, cycle_amp, noise, trend) = ind.params();
            let sign = if ind.counter_cyclical() { -1.0 } else { 1.0 };
            let state_base = base + spread * fortune * state_factor(si);
            let mut values = Vec::with_capacity(len);
            for t in 0..len {
                let year = t + start_shift;
                let macro_part = sign * loading * cycle_amp * national[year];
                let noise_part = noise * (r.gen::<f64>() * 2.0 - 1.0);
                let v = state_base + trend * t as f64 + macro_part + noise_part;
                values.push(clamp_to_domain(ind, v));
            }
            let name = format!("{state}-{}", ind.name());
            let axis = TimeAxis::annual(cfg.start_year + start_shift as u32);
            ds.push(TimeSeries::with_axis(name, values, axis))
                .expect("state/indicator names are unique");
        }
    }
    ds
}

/// Deterministic per-state flavour in [-1, 1], independent of the RNG so
/// the same state keeps its rough character across seeds (MA is always a
/// high-tech state in examples).
fn state_factor(index: usize) -> f64 {
    ((index as f64 * 2.399_963).sin() + (index as f64 * 0.7).cos()) / 2.0
}

/// Keep values inside each indicator's physical domain.
fn clamp_to_domain(ind: Indicator, v: f64) -> f64 {
    match ind {
        Indicator::GrowthRate => v.clamp(-12.0, 12.0),
        Indicator::Unemployment => v.max(5_000.0),
        Indicator::TechEmployment => v.max(1.0),
        Indicator::TaxRate => v.clamp(0.0, 12.0),
        Indicator::MedianIncome => v.max(25_000.0),
        Indicator::EducationAttainment => v.clamp(10.0, 60.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::mean_std;

    #[test]
    fn fifty_states_six_indicators() {
        let ds = matters_collection(&MattersConfig::default());
        assert_eq!(ds.len(), 50 * 6);
        assert!(ds.by_name("MA-GrowthRate").is_some());
        assert!(ds.by_name("WY-EducationAttainment").is_some());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = matters_collection(&MattersConfig::default());
        let b = matters_collection(&MattersConfig::default());
        assert_eq!(
            a.by_name("TX-Unemployment").unwrap().values(),
            b.by_name("TX-Unemployment").unwrap().values()
        );
    }

    #[test]
    fn scales_differ_by_orders_of_magnitude() {
        let ds = matters_collection(&MattersConfig::default());
        let growth = ds.by_name("MA-GrowthRate").unwrap().values();
        let unemp = ds.by_name("MA-Unemployment").unwrap().values();
        let (_, sg) = mean_std(growth);
        let (_, su) = mean_std(unemp);
        assert!(
            su / sg > 100.0,
            "unemployment varies on a scale ≫ growth rate ({su} vs {sg})"
        );
        assert!(growth.iter().all(|v| v.abs() <= 12.0));
        assert!(unemp.iter().all(|&v| v >= 5_000.0));
    }

    #[test]
    fn national_cycle_correlates_states() {
        // Two pro-cyclical series should co-move far more than chance:
        // check the average pairwise correlation of growth rates.
        let ds = matters_collection(&MattersConfig {
            years: 32,
            ..MattersConfig::default()
        });
        let states = ["MA", "NY", "CA", "TX", "OH", "GA"];
        let mut corr_sum = 0.0;
        let mut pairs = 0;
        for (i, a) in states.iter().enumerate() {
            for b in &states[i + 1..] {
                let xs = ds.by_name(&format!("{a}-GrowthRate")).unwrap().values();
                let ys = ds.by_name(&format!("{b}-GrowthRate")).unwrap().values();
                corr_sum += correlation(xs, ys);
                pairs += 1;
            }
        }
        let avg = corr_sum / pairs as f64;
        assert!(avg > 0.3, "states share the national cycle, avg corr {avg}");
    }

    #[test]
    fn ragged_mode_varies_lengths_and_starts() {
        let ds = matters_collection(&MattersConfig {
            ragged: true,
            ..MattersConfig::default()
        });
        let (lo, hi) = ds.length_range().unwrap();
        assert!(lo < hi, "ragged collections have unequal lengths");
        let starts: std::collections::HashSet<u64> =
            ds.iter().map(|(_, s)| s.axis().start as u64).collect();
        assert!(starts.len() > 1, "ragged collections are misaligned");
    }

    #[test]
    fn axis_is_annual() {
        let ds = matters_collection(&MattersConfig::default());
        let s = ds.by_name("MA-GrowthRate").unwrap();
        assert_eq!(s.axis().start, 2001.0);
        assert_eq!(s.axis().step, 1.0);
        assert_eq!(s.len(), 16);
    }

    fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len().min(ys.len());
        let (mx, sx) = mean_std(&xs[..n]);
        let (my, sy) = mean_std(&ys[..n]);
        if sx == 0.0 || sy == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..n {
            acc += (xs[i] - mx) * (ys[i] - my);
        }
        acc / (n as f64 * sx * sy)
    }
}
