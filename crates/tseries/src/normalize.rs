//! Normalisation primitives.
//!
//! ONEX compares raw sequences (the MATTERS use case depends on preserving
//! scale differences between e.g. growth-rate percentages and unemployment
//! head-counts), while the UCR Suite baseline z-normalises every candidate
//! window. Both flavours live here so the two systems share one audited
//! implementation.

use crate::stats::mean_std;

/// Smallest standard deviation treated as non-constant. Below this the
/// z-normalised window is defined as all zeros (the UCR Suite convention
/// for constant regions, which otherwise divide by ~0 and explode).
pub const STD_FLOOR: f64 = 1e-12;

/// Z-normalise into a fresh vector: `(x - mean) / std`.
///
/// Constant (or near-constant, see [`STD_FLOOR`]) input maps to all zeros.
///
/// ```
/// use onex_tseries::normalize::znorm;
/// let z = znorm(&[2.0, 4.0, 6.0]);
/// assert!((z[0] + z[2]).abs() < 1e-12, "symmetric around the mean");
/// assert_eq!(znorm(&[5.0, 5.0]), vec![0.0, 0.0]);
/// ```
pub fn znorm(xs: &[f64]) -> Vec<f64> {
    let mut out = xs.to_vec();
    znorm_in_place(&mut out);
    out
}

/// Z-normalise a buffer in place.
pub fn znorm_in_place(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let (m, s) = mean_std(xs);
    if s < STD_FLOOR {
        xs.iter_mut().for_each(|v| *v = 0.0);
    } else {
        let inv = 1.0 / s;
        xs.iter_mut().for_each(|v| *v = (*v - m) * inv);
    }
}

/// Z-normalise `src` into `dst` using externally supplied moments.
///
/// This is the UCR Suite "online" flavour: the caller maintains running
/// sums over a sliding window and never rescans the window to compute the
/// moments. `dst` must be at least as long as `src`.
///
/// # Panics
/// Panics when `dst.len() < src.len()`.
pub fn znorm_with_moments(src: &[f64], mean: f64, std: f64, dst: &mut [f64]) {
    assert!(dst.len() >= src.len(), "dst too small");
    if std < STD_FLOOR {
        dst[..src.len()].iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let inv = 1.0 / std;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (s - mean) * inv;
    }
}

/// Min–max scale into `[0, 1]`. Constant input maps to all `0.5` (centre of
/// the target interval), which keeps radial-chart rendering well defined.
pub fn minmax(xs: &[f64]) -> Vec<f64> {
    let mut out = xs.to_vec();
    minmax_in_place(&mut out);
    out
}

/// Min–max scale a buffer in place (see [`minmax`]).
pub fn minmax_in_place(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in xs.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;
    if range < STD_FLOOR {
        xs.iter_mut().for_each(|v| *v = 0.5);
    } else {
        let inv = 1.0 / range;
        xs.iter_mut().for_each(|v| *v = (*v - lo) * inv);
    }
}

/// Mean-centre (subtract the mean, keep the scale). ONEX's offset-invariant
/// comparison mode for indicators measured on a common scale but different
/// baselines.
pub fn center(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.iter().map(|v| v - m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn znorm_has_zero_mean_unit_std() {
        let z = znorm(&[2.0, 4.0, 6.0, 8.0]);
        let (m, s) = mean_std(&z);
        assert!(close(m, 0.0), "mean {m}");
        assert!(close(s, 1.0), "std {s}");
    }

    #[test]
    fn znorm_constant_is_zero() {
        assert_eq!(znorm(&[3.0; 5]), vec![0.0; 5]);
    }

    #[test]
    fn znorm_empty_is_noop() {
        assert!(znorm(&[]).is_empty());
        let mut e: [f64; 0] = [];
        znorm_in_place(&mut e);
    }

    #[test]
    fn znorm_with_moments_matches_batch() {
        let xs = [1.0, -2.0, 0.5, 7.0, 3.25];
        let (m, s) = mean_std(&xs);
        let mut online = vec![0.0; xs.len()];
        znorm_with_moments(&xs, m, s, &mut online);
        let batch = znorm(&xs);
        for (a, b) in online.iter().zip(&batch) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn znorm_with_moments_zero_std() {
        let xs = [4.0, 4.0];
        let mut dst = [9.0, 9.0, 9.0];
        znorm_with_moments(&xs, 4.0, 0.0, &mut dst);
        assert_eq!(&dst[..2], &[0.0, 0.0]);
        assert_eq!(dst[2], 9.0, "tail beyond src untouched");
    }

    #[test]
    #[should_panic(expected = "dst too small")]
    fn znorm_with_moments_checks_capacity() {
        let mut dst = [0.0];
        znorm_with_moments(&[1.0, 2.0], 0.0, 1.0, &mut dst);
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let y = minmax(&[10.0, 20.0, 15.0]);
        assert!(close(y[0], 0.0));
        assert!(close(y[1], 1.0));
        assert!(close(y[2], 0.5));
    }

    #[test]
    fn minmax_constant_maps_to_half() {
        assert_eq!(minmax(&[7.0; 3]), vec![0.5; 3]);
        assert!(minmax(&[]).is_empty());
    }

    #[test]
    fn minmax_handles_negative_ranges() {
        let y = minmax(&[-5.0, -1.0]);
        assert!(close(y[0], 0.0));
        assert!(close(y[1], 1.0));
    }

    #[test]
    fn center_removes_mean_keeps_scale() {
        let c = center(&[1.0, 2.0, 3.0]);
        assert!(close(c.iter().sum::<f64>(), 0.0));
        assert!(close(c[2] - c[0], 2.0));
        assert!(center(&[]).is_empty());
    }
}
