//! # onex-tseries — time series substrate for ONEX
//!
//! This crate provides the data model that every other ONEX crate builds on:
//!
//! * [`TimeSeries`] — a named, uniformly sampled sequence of `f64` values
//!   with an explicit [`TimeAxis`] so heterogeneous collections (annual
//!   economic indicators next to 15-minute electricity load) keep their
//!   real-world coordinates.
//! * [`Dataset`] — an ordered collection of series with name lookup and
//!   subsequence access. ONEX explores *all* subsequences of a dataset, so
//!   the dataset is the unit the ONEX base is built over.
//! * [`normalize`] — z-normalisation and min–max scaling, both the ONEX
//!   whole-series flavour and the UCR Suite per-window flavour.
//! * [`stats`] — summary statistics, Welford running moments and quantiles
//!   used by threshold recommendation.
//! * [`ops`] — derived-series operators (differences, percent change,
//!   smoothing, resampling) for the analyst preprocessing the paper's
//!   use cases assume.
//! * [`io`] — loaders/writers for the UCR archive format and simple CSV.
//! * [`gen`] — deterministic workload generators, including the synthetic
//!   stand-ins for the paper's MATTERS and ElectricityLoad collections
//!   (see DESIGN.md §4 for the substitution rationale).
//!
//! Everything is deterministic given a seed; no global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod series;

pub mod gen;
pub mod io;
pub mod normalize;
pub mod ops;
pub mod stats;

pub use dataset::{Dataset, DatasetSummary, SubseqRef};
pub use error::Error;
pub use series::{TimeAxis, TimeSeries};

/// Convenient result alias for fallible substrate operations.
pub type Result<T> = std::result::Result<T, Error>;
