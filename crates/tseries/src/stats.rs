//! Summary statistics used across ONEX.
//!
//! Threshold recommendation (experiment E8) needs robust quantiles of
//! sampled pairwise distances; the UCR Suite needs numerically careful
//! running moments over sliding windows; group construction tracks member
//! spread with Welford accumulators. They all share this module.

/// Population mean and standard deviation in one pass.
///
/// Returns `(0, 0)` for empty input. Uses the naive two-accumulator form,
/// which is adequate for the magnitudes ONEX sees (|x| ≲ 1e6, n ≲ 1e5);
/// [`Welford`] is available where cancellation is a concern.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    for &v in xs {
        sum += v;
        sumsq += v * v;
    }
    let mean = sum / n;
    let var = (sumsq / n - mean * mean).max(0.0);
    (mean, var.sqrt())
}

/// Minimum and maximum, `None` for empty input. NaN values are ignored;
/// all-NaN input behaves like empty input.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    let mut out: Option<(f64, f64)> = None;
    for &v in xs {
        if v.is_nan() {
            continue;
        }
        out = Some(match out {
            None => (v, v),
            Some((lo, hi)) => (lo.min(v), hi.max(v)),
        });
    }
    out
}

/// Numerically stable streaming mean/variance (Welford's algorithm).
///
/// Used by group construction to track intra-group distance spread without
/// storing the distances.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n;
        self.n += other.n;
    }
}

/// Linear-interpolation quantile of `sorted` (ascending) at `q ∈ [0, 1]`.
///
/// # Panics
/// Panics on empty input or `q` outside `[0, 1]`; threshold recommendation
/// always samples at least one distance before calling this.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Sort a copy and take several quantiles at once (cheaper than repeated
/// full sorts when recommendation reports a whole ladder of thresholds).
pub fn quantiles(xs: &[f64], qs: &[f64]) -> Vec<f64> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    qs.iter().map(|&q| quantile_sorted(&sorted, q)).collect()
}

/// Lag-`k` sample autocorrelation. Returns 0 for degenerate input
/// (fewer than `k + 2` samples or zero variance). Used by the seasonal
/// examples to sanity-check planted periodicities.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    if xs.len() < k + 2 {
        return 0.0;
    }
    let (mean, std) = mean_std(xs);
    if std == 0.0 {
        return 0.0;
    }
    let var = std * std;
    let n = xs.len();
    let mut acc = 0.0;
    for i in 0..n - k {
        acc += (xs[i] - mean) * (xs[i + k] - mean);
    }
    acc / (n as f64 * var)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!(close(m, 5.0));
        assert!(close(s, 2.0));
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn min_max_ignores_nan() {
        assert_eq!(min_max(&[3.0, f64::NAN, -1.0]), Some((-1.0, 3.0)));
        assert_eq!(min_max(&[f64::NAN]), None);
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [1.0, 2.5, -3.0, 4.0, 0.0, 0.0, 8.5];
        let mut w = Welford::new();
        xs.iter().for_each(|&x| w.push(x));
        let (m, s) = mean_std(&xs);
        assert!(close(w.mean(), m));
        assert!(close(w.std(), s));
        assert_eq!(w.count(), xs.len() as u64);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut left = Welford::new();
        let mut right = Welford::new();
        xs[..37].iter().for_each(|&x| left.push(x));
        xs[37..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert!(close(left.mean(), whole.mean()));
        assert!(close(left.variance(), whole.variance()));
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(5.0);
        let b = Welford::new();
        let mut a2 = a;
        a2.merge(&b);
        assert!(close(a2.mean(), 5.0));
        let mut c = Welford::new();
        c.merge(&a);
        assert!(close(c.mean(), 5.0));
    }

    #[test]
    fn welford_degenerate_variance() {
        let mut w = Welford::new();
        assert_eq!(w.variance(), 0.0);
        w.push(2.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        let qs = quantiles(&xs, &[0.0, 0.5, 1.0, 1.0 / 3.0]);
        assert!(close(qs[0], 1.0));
        assert!(close(qs[1], 2.5));
        assert!(close(qs[2], 4.0));
        assert!(close(qs[3], 2.0));
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile_sorted(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile_sorted(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_bad_fraction_panics() {
        quantile_sorted(&[1.0], 1.5);
    }

    #[test]
    fn autocorrelation_detects_period() {
        let xs: Vec<f64> = (0..200)
            .map(|i| (i as f64 * std::f64::consts::TAU / 20.0).sin())
            .collect();
        assert!(autocorrelation(&xs, 20) > 0.8, "period lag is correlated");
        assert!(
            autocorrelation(&xs, 10) < -0.8,
            "half period anti-correlated"
        );
        assert_eq!(autocorrelation(&xs, 199), 0.0, "too short for lag");
        assert_eq!(autocorrelation(&[1.0; 50], 5), 0.0, "constant series");
    }
}
