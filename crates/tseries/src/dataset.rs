use std::collections::HashMap;
use std::fmt;

use crate::{Error, Result, TimeSeries};

/// A reference to one subsequence of one series inside a [`Dataset`].
///
/// The ONEX base is built over *all* subsequences of a collection — copying
/// them would square the memory footprint, so everything downstream
/// (grouping, query results) speaks in terms of these light references.
/// `u32` fields keep the struct at 12 bytes; collections with more than
/// 4 billion series or samples per series are out of scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubseqRef {
    /// Index of the series within the dataset.
    pub series: u32,
    /// Start offset of the window within the series.
    pub start: u32,
    /// Window length in samples.
    pub len: u32,
}

impl SubseqRef {
    /// Construct a reference (no bounds check; resolved against a dataset).
    pub fn new(series: u32, start: u32, len: u32) -> Self {
        SubseqRef { series, start, len }
    }

    /// End offset (exclusive) within the series.
    #[inline]
    pub fn end(&self) -> u32 {
        self.start + self.len
    }

    /// True when two windows of the *same series* overlap in time.
    /// Windows on different series never overlap.
    pub fn overlaps(&self, other: &SubseqRef) -> bool {
        self.series == other.series && self.start < other.end() && other.start < self.end()
    }
}

impl fmt::Display for SubseqRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}[{}..{}]", self.series, self.start, self.end())
    }
}

/// An ordered collection of named time series.
///
/// Series names must be unique; lookup by name is O(1). The dataset is
/// immutable once handed to the ONEX base builder (the builder borrows it),
/// which is why mutation is limited to `push`.
///
/// ```
/// use onex_tseries::{Dataset, SubseqRef, TimeSeries};
/// let mut ds = Dataset::new();
/// ds.push(TimeSeries::new("MA", vec![1.0, 2.0, 3.0, 4.0])).unwrap();
/// assert_eq!(ds.id_of("MA"), Some(0));
/// assert_eq!(ds.resolve(SubseqRef::new(0, 1, 2)).unwrap(), &[2.0, 3.0]);
/// assert_eq!(ds.subsequence_count(2, 3), 3 + 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    series: Vec<TimeSeries>,
    by_name: HashMap<String, usize>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Build a dataset from a vector of series.
    ///
    /// # Errors
    /// Fails with [`Error::InvalidArgument`] when two series share a name.
    pub fn from_series(series: Vec<TimeSeries>) -> Result<Self> {
        let mut ds = Dataset::new();
        for s in series {
            ds.push(s)?;
        }
        Ok(ds)
    }

    /// Append a series.
    ///
    /// # Errors
    /// Fails with [`Error::InvalidArgument`] when the name is already taken.
    pub fn push(&mut self, s: TimeSeries) -> Result<u32> {
        if self.by_name.contains_key(s.name()) {
            return Err(Error::InvalidArgument(format!(
                "duplicate series name {:?}",
                s.name()
            )));
        }
        let id = self.series.len();
        self.by_name.insert(s.name().to_owned(), id);
        self.series.push(s);
        Ok(id as u32)
    }

    /// Number of series.
    #[inline]
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when the dataset holds no series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Series by positional id.
    #[inline]
    pub fn series(&self, id: u32) -> Option<&TimeSeries> {
        self.series.get(id as usize)
    }

    /// Series by name.
    pub fn by_name(&self, name: &str) -> Option<&TimeSeries> {
        self.by_name.get(name).map(|&i| &self.series[i])
    }

    /// Positional id of a named series.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).map(|&i| i as u32)
    }

    /// Iterate over `(id, series)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &TimeSeries)> {
        self.series.iter().enumerate().map(|(i, s)| (i as u32, s))
    }

    /// Resolve a [`SubseqRef`] to its sample window.
    ///
    /// # Errors
    /// [`Error::UnknownSeries`] for a bad series id,
    /// [`Error::OutOfBounds`] for a bad window.
    pub fn resolve(&self, r: SubseqRef) -> Result<&[f64]> {
        let s = self
            .series(r.series)
            .ok_or_else(|| Error::UnknownSeries(format!("#{}", r.series)))?;
        s.subsequence(r.start as usize, r.len as usize)
            .ok_or_else(|| Error::OutOfBounds {
                series: s.name().to_owned(),
                start: r.start as usize,
                len: r.len as usize,
                available: s.len(),
            })
    }

    /// Total number of samples across all series.
    pub fn total_samples(&self) -> usize {
        self.series.iter().map(|s| s.len()).sum()
    }

    /// Number of subsequences with length in `[min_len, max_len]`
    /// (inclusive) across all series. This is the size of the space the
    /// ONEX base compacts, reported by experiment E7.
    pub fn subsequence_count(&self, min_len: usize, max_len: usize) -> usize {
        self.series
            .iter()
            .map(|s| {
                let n = s.len();
                (min_len..=max_len.min(n)).map(|l| n - l + 1).sum::<usize>()
            })
            .sum()
    }

    /// Shortest and longest series lengths, or `None` when empty.
    pub fn length_range(&self) -> Option<(usize, usize)> {
        let mut it = self.series.iter().map(|s| s.len());
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), l| (lo.min(l), hi.max(l))))
    }

    /// One-line-per-series human summary used by the CLI example.
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary {
            series_count: self.len(),
            total_samples: self.total_samples(),
            length_range: self.length_range(),
        }
    }
}

/// Cheap aggregate facts about a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSummary {
    /// Number of series.
    pub series_count: usize,
    /// Sum of series lengths.
    pub total_samples: usize,
    /// (min, max) series length, `None` when the dataset is empty.
    pub length_range: Option<(usize, usize)>,
}

impl fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.length_range {
            Some((lo, hi)) => write!(
                f,
                "{} series, {} samples, lengths {}..={}",
                self.series_count, self.total_samples, lo, hi
            ),
            None => write!(f, "empty dataset"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_series(vec![
            TimeSeries::new("a", vec![1.0, 2.0, 3.0]),
            TimeSeries::new("b", vec![4.0, 5.0, 6.0, 7.0]),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let d = ds();
        assert_eq!(d.id_of("b"), Some(1));
        assert_eq!(d.by_name("a").unwrap().values(), &[1.0, 2.0, 3.0]);
        assert!(d.by_name("c").is_none());
        assert_eq!(d.series(1).unwrap().name(), "b");
        assert!(d.series(9).is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut d = ds();
        let err = d.push(TimeSeries::new("a", vec![0.0])).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn resolve_subsequences() {
        let d = ds();
        let r = SubseqRef::new(1, 1, 3);
        assert_eq!(d.resolve(r).unwrap(), &[5.0, 6.0, 7.0]);
        assert!(d.resolve(SubseqRef::new(1, 2, 3)).is_err());
        assert!(d.resolve(SubseqRef::new(7, 0, 1)).is_err());
    }

    #[test]
    fn subsequence_counting() {
        let d = ds();
        // series a (n=3): len2 -> 2, len3 -> 1; series b (n=4): len2 -> 3, len3 -> 2.
        assert_eq!(d.subsequence_count(2, 3), 2 + 1 + 3 + 2);
        // max_len clamped to series length.
        assert_eq!(d.subsequence_count(3, 10), 1 + 2 + 1); // a:len3, b:len3+len4
                                                           // empty range.
        assert_eq!(d.subsequence_count(5, 4), 0);
    }

    #[test]
    fn overlap_semantics() {
        let a = SubseqRef::new(0, 0, 5);
        let b = SubseqRef::new(0, 4, 5);
        let c = SubseqRef::new(0, 5, 5);
        let d = SubseqRef::new(1, 0, 5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching windows do not overlap");
        assert!(!a.overlaps(&d), "different series never overlap");
    }

    #[test]
    fn summary_reports_ranges() {
        let d = ds();
        let s = d.summary();
        assert_eq!(s.series_count, 2);
        assert_eq!(s.total_samples, 7);
        assert_eq!(s.length_range, Some((3, 4)));
        assert!(s.to_string().contains("3..=4"));
        assert_eq!(Dataset::new().summary().to_string(), "empty dataset");
    }
}
