use std::fmt;

/// Errors produced by the time-series substrate.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A text payload could not be parsed as the expected format.
    ///
    /// Carries the 1-based line number (0 when not line-oriented) and a
    /// human-readable description.
    Parse {
        /// 1-based line where parsing failed, 0 if not applicable.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A request referenced a series name that is not in the dataset.
    UnknownSeries(String),
    /// A subsequence request fell outside the bounds of its series.
    OutOfBounds {
        /// Name of the series addressed.
        series: String,
        /// Requested start offset.
        start: usize,
        /// Requested length.
        len: usize,
        /// Actual length of the series.
        available: usize,
    },
    /// An argument violated a documented precondition (empty input, zero
    /// length, NaN where finite values are required, ...).
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            Error::UnknownSeries(name) => write!(f, "unknown series {name:?}"),
            Error::OutOfBounds {
                series,
                start,
                len,
                available,
            } => write!(
                f,
                "subsequence [{start}, {start}+{len}) out of bounds for series {series:?} of length {available}"
            ),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::OutOfBounds {
            series: "MA".into(),
            start: 10,
            len: 5,
            available: 12,
        };
        let msg = e.to_string();
        assert!(msg.contains("MA"), "{msg}");
        assert!(msg.contains("10"), "{msg}");
        assert!(msg.contains("12"), "{msg}");
    }

    #[test]
    fn parse_error_with_and_without_line() {
        let with = Error::Parse {
            line: 3,
            message: "bad float".into(),
        };
        assert!(with.to_string().contains("line 3"));
        let without = Error::Parse {
            line: 0,
            message: "bad float".into(),
        };
        assert!(!without.to_string().contains("line"));
    }

    #[test]
    fn io_error_round_trips_source() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
