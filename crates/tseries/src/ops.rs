//! Series-level preprocessing operators.
//!
//! The MATTERS analysts of the paper's motivating example compare *rates
//! of change* and *smoothed trends* as often as raw levels; these
//! operators produce those derived series while preserving axis metadata
//! so downstream views stay correctly labelled.

use crate::TimeSeries;

/// First difference: `y_i = x_{i+1} − x_i` (one sample shorter). Turns
/// levels into changes — unemployment counts into monthly swings.
pub fn diff(s: &TimeSeries) -> TimeSeries {
    let values: Vec<f64> = s.values().windows(2).map(|w| w[1] - w[0]).collect();
    TimeSeries::with_axis(format!("Δ{}", s.name()), values, s.axis().offset(1))
}

/// Percent change: `y_i = 100·(x_{i+1} − x_i)/x_i` (one sample shorter).
/// Samples where `x_i` is ~0 yield 0 rather than exploding, which keeps
/// downstream distance computations finite.
pub fn pct_change(s: &TimeSeries) -> TimeSeries {
    let values: Vec<f64> = s
        .values()
        .windows(2)
        .map(|w| {
            if w[0].abs() < 1e-12 {
                0.0
            } else {
                100.0 * (w[1] - w[0]) / w[0]
            }
        })
        .collect();
    TimeSeries::with_axis(format!("%Δ{}", s.name()), values, s.axis().offset(1))
}

/// Centred moving average of odd window `w` (edges use the available
/// partial window, so the output keeps the input length and axis).
///
/// # Panics
/// Panics when `window` is even or zero — a centred window must have a
/// middle sample.
pub fn moving_average(s: &TimeSeries, window: usize) -> TimeSeries {
    assert!(
        window % 2 == 1 && window > 0,
        "window must be odd and positive"
    );
    let half = window / 2;
    let xs = s.values();
    let n = xs.len();
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    TimeSeries::with_axis(format!("ma{window}({})", s.name()), values, s.axis())
}

/// Linear resampling to `target_len` samples over the same time span —
/// the alignment step for comparing series reported at different
/// granularities (annual vs quarterly), one of the paper's "misaligned"
/// cases.
///
/// # Panics
/// Panics when the input has fewer than 2 samples or `target_len` < 2.
pub fn resample(s: &TimeSeries, target_len: usize) -> TimeSeries {
    let xs = s.values();
    assert!(xs.len() >= 2, "resampling needs at least 2 samples");
    assert!(target_len >= 2, "target length must be at least 2");
    let n = xs.len();
    let values: Vec<f64> = (0..target_len)
        .map(|i| {
            let pos = i as f64 * (n - 1) as f64 / (target_len - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            xs[lo] + (xs[hi.min(n - 1)] - xs[lo]) * frac
        })
        .collect();
    let old_axis = s.axis();
    let new_step = old_axis.step * (n - 1) as f64 / (target_len - 1) as f64;
    TimeSeries::with_axis(
        format!("resample{target_len}({})", s.name()),
        values,
        crate::TimeAxis {
            start: old_axis.start,
            step: new_step,
            unit: old_axis.unit,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimeAxis;

    fn annual(values: Vec<f64>) -> TimeSeries {
        TimeSeries::with_axis("x", values, TimeAxis::annual(2000))
    }

    #[test]
    fn diff_shortens_and_shifts_axis() {
        let d = diff(&annual(vec![1.0, 3.0, 2.0, 6.0]));
        assert_eq!(d.values(), &[2.0, -1.0, 4.0]);
        assert_eq!(d.axis().start, 2001.0);
        assert_eq!(d.name(), "Δx");
        assert!(diff(&annual(vec![5.0])).is_empty());
    }

    #[test]
    fn pct_change_guards_zero_base() {
        let p = pct_change(&annual(vec![100.0, 110.0, 0.0, 5.0]));
        assert_eq!(p.values()[0], 10.0);
        assert_eq!(p.values()[2], 0.0, "division by ~0 yields 0");
    }

    #[test]
    fn moving_average_smooths_and_keeps_length() {
        let m = moving_average(&annual(vec![0.0, 10.0, 0.0, 10.0, 0.0]), 3);
        assert_eq!(m.len(), 5);
        assert_eq!(m.values()[2], 20.0 / 3.0);
        // Edges average the partial window.
        assert_eq!(m.values()[0], 5.0);
        assert_eq!(m.axis().start, 2000.0);
        // Smoothing reduces variance.
        let raw = annual(vec![0.0, 10.0, 0.0, 10.0, 0.0]);
        let (_, s_raw) = crate::stats::mean_std(raw.values());
        let (_, s_smooth) = crate::stats::mean_std(m.values());
        assert!(s_smooth < s_raw);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn moving_average_rejects_even_window() {
        moving_average(&annual(vec![1.0, 2.0, 3.0]), 2);
    }

    #[test]
    fn resample_preserves_endpoints_and_span() {
        let s = annual(vec![0.0, 1.0, 2.0, 3.0]); // 2000..2003
        let up = resample(&s, 7);
        assert_eq!(up.len(), 7);
        assert_eq!(up.values()[0], 0.0);
        assert_eq!(*up.values().last().unwrap(), 3.0);
        assert!(
            (up.values()[3] - 1.5).abs() < 1e-12,
            "midpoint interpolates"
        );
        assert!((up.axis().at(6) - 2003.0).abs() < 1e-12, "span preserved");
        let down = resample(&s, 2);
        assert_eq!(down.values(), &[0.0, 3.0]);
    }

    #[test]
    fn resample_then_compare_fixes_misalignment() {
        // Quarterly vs annual versions of the same trend become directly
        // comparable after resampling.
        let annual_s = annual(vec![0.0, 4.0, 8.0, 12.0]);
        let quarterly = TimeSeries::with_axis(
            "q",
            (0..13).map(|i| i as f64).collect(),
            TimeAxis::quarterly(2000),
        );
        let aligned = resample(&quarterly, 4);
        assert_eq!(aligned.len(), annual_s.len());
        for (a, b) in aligned.values().iter().zip(annual_s.values()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
