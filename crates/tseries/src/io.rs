//! Loading and saving time series collections.
//!
//! Two formats are supported:
//!
//! * **UCR archive format** — one series per line, whitespace- or
//!   comma-separated, first field a class label (kept as part of the series
//!   name). This is the format of the UCR time-series archive the paper's
//!   ElectricityLoad collection is distributed in.
//! * **Column CSV** — first row header with series names, one column per
//!   series (how MATTERS-style indicator tables are exported). The
//!   default reader ([`read_csv_columns`]) is strict: every row must
//!   fill every column, and a ragged row is a typed parse error rather
//!   than silently misaligned data. Collections with genuinely
//!   different series lengths use the explicit padded form
//!   ([`read_csv_columns_padded`] / [`write_csv_columns`]), where empty
//!   trailing cells end a column early.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{Dataset, Error, Result, TimeSeries};

/// Parse the UCR archive format from a reader.
///
/// Each non-empty line becomes one series named `"{stem}-{index}_c{label}"`
/// where `label` is the first field (UCR class label, parsed as a float and
/// formatted back, so `1` and `1.0` coincide).
///
/// # Errors
/// [`Error::Parse`] on any token that is not a finite float.
pub fn read_ucr<R: Read>(reader: R, stem: &str) -> Result<Dataset> {
    let mut ds = Dataset::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|t| !t.is_empty());
        let label_tok = fields.next().ok_or_else(|| Error::Parse {
            line: lineno + 1,
            message: "empty record".into(),
        })?;
        let label: f64 = parse_float(label_tok, lineno + 1)?;
        let mut values = Vec::new();
        for tok in fields {
            values.push(parse_float(tok, lineno + 1)?);
        }
        if values.is_empty() {
            return Err(Error::Parse {
                line: lineno + 1,
                message: "record has a label but no values".into(),
            });
        }
        let name = format!("{stem}-{}_c{}", ds.len(), label);
        ds.push(TimeSeries::new(name, values))?;
    }
    Ok(ds)
}

/// Load a UCR-format file; the file stem names the series.
pub fn load_ucr_file(path: impl AsRef<Path>) -> Result<Dataset> {
    let path = path.as_ref();
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("series");
    let f = std::fs::File::open(path)?;
    read_ucr(f, stem)
}

/// Parse column-oriented CSV: header row of series names, one column per
/// series, **strict rectangular semantics** — every data row must carry a
/// non-empty cell for every column.
///
/// A ragged row (fewer cells than the header, or any empty cell) is an
/// [`Error::Parse`] carrying the line number (the workspace-wide
/// `OnexError` maps it to `InvalidData`). Silently dropping the missing
/// cells — what an earlier revision did — shifts every later value of
/// that column one position earlier, misaligning it against the time
/// axis and against its sibling columns; for an analytics engine that is
/// data corruption, so it is rejected loudly at the door.
///
/// Collections whose series genuinely have different lengths are still
/// loadable through [`read_csv_columns_padded`], the explicit-gap form
/// [`write_csv_columns`] emits.
pub fn read_csv_columns<R: Read>(reader: R) -> Result<Dataset> {
    read_csv(reader, RowPolicy::Strict)
}

/// Parse column-oriented CSV where shorter columns end early: an empty
/// trailing cell (or a missing cell at the end of a row) **closes** its
/// column, and every later row must keep that column empty — a value
/// after a gap is an [`Error::Parse`] (holes are not representable).
///
/// This is the inverse of [`write_csv_columns`] for ragged collections,
/// which pads short columns with empty cells. For strictly rectangular
/// data prefer [`read_csv_columns`], which rejects ragged rows outright.
pub fn read_csv_columns_padded<R: Read>(reader: R) -> Result<Dataset> {
    read_csv(reader, RowPolicy::PadTail)
}

/// How [`read_csv`] treats rows with missing cells.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RowPolicy {
    /// Every row must fill every column: ragged rows are parse errors.
    Strict,
    /// A trailing gap ends the column; resuming after a gap is an error.
    PadTail,
}

fn read_csv<R: Read>(reader: R, policy: RowPolicy) -> Result<Dataset> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Ok(Dataset::new()),
    };
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_owned()).collect();
    if names.iter().any(|n| n.is_empty()) {
        return Err(Error::Parse {
            line: 1,
            message: "empty column name in header".into(),
        });
    }
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    let mut closed: Vec<bool> = vec![false; names.len()];
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() > names.len() {
            return Err(Error::Parse {
                line: lineno + 2,
                message: format!(
                    "row has {} cells but header has {} columns",
                    cells.len(),
                    names.len()
                ),
            });
        }
        if policy == RowPolicy::Strict && cells.len() < names.len() {
            return Err(Error::Parse {
                line: lineno + 2,
                message: format!(
                    "ragged row: {} cells but header has {} columns",
                    cells.len(),
                    names.len()
                ),
            });
        }
        for (col, &cell) in cells.iter().enumerate() {
            let cell = cell.trim();
            if cell.is_empty() {
                if policy == RowPolicy::Strict {
                    return Err(Error::Parse {
                        line: lineno + 2,
                        message: format!("ragged row: empty cell in column {:?}", names[col]),
                    });
                }
                closed[col] = true;
                continue;
            }
            if closed[col] {
                return Err(Error::Parse {
                    line: lineno + 2,
                    message: format!("column {:?} resumes after a gap", names[col]),
                });
            }
            columns[col].push(parse_float(cell, lineno + 2)?);
        }
        // Cells missing entirely at the end of the row close those columns.
        for c in closed.iter_mut().skip(cells.len()) {
            *c = true;
        }
    }
    let mut ds = Dataset::new();
    for (name, values) in names.into_iter().zip(columns) {
        ds.push(TimeSeries::new(name, values))?;
    }
    Ok(ds)
}

/// Write a dataset as column CSV (inverse of [`read_csv_columns`] for
/// equal-length collections; ragged collections round-trip through
/// [`read_csv_columns_padded`] because shorter columns are padded with
/// empty cells).
pub fn write_csv_columns<W: Write>(ds: &Dataset, mut w: W) -> Result<()> {
    let names: Vec<&str> = ds.iter().map(|(_, s)| s.name()).collect();
    writeln!(w, "{}", names.join(","))?;
    let rows = ds.length_range().map(|(_, hi)| hi).unwrap_or(0);
    for row in 0..rows {
        let mut cells = Vec::with_capacity(names.len());
        for (_, s) in ds.iter() {
            match s.values().get(row) {
                Some(v) => cells.push(format_float(*v)),
                None => cells.push(String::new()),
            }
        }
        writeln!(w, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Write a dataset in the UCR archive format, one series per line with a
/// leading class label. Labels are parsed back out of series names of the
/// form `"…_c{label}"` (as produced by [`read_ucr`]); other names get
/// label `0`.
pub fn write_ucr<W: Write>(ds: &Dataset, mut w: W) -> Result<()> {
    for (_, s) in ds.iter() {
        let label = s
            .name()
            .rsplit_once("_c")
            .and_then(|(_, l)| l.parse::<f64>().ok())
            .unwrap_or(0.0);
        write!(w, "{}", format_float(label))?;
        for &v in s.values() {
            write!(w, " {}", format_float(v))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

fn parse_float(tok: &str, line: usize) -> Result<f64> {
    let v: f64 = tok.parse().map_err(|_| Error::Parse {
        line,
        message: format!("invalid float {tok:?}"),
    })?;
    if !v.is_finite() {
        return Err(Error::Parse {
            line,
            message: format!("non-finite value {tok:?}"),
        });
    }
    Ok(v)
}

fn format_float(v: f64) -> String {
    // Shortest representation that round-trips; ryu-style precision is not
    // needed for CSV interchange, 17 significant digits always round-trips.
    let short = format!("{v}");
    if short.parse::<f64>() == Ok(v) {
        short
    } else {
        format!("{v:.17}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ucr_whitespace_and_comma() {
        let ds = read_ucr("1 0.5 0.6 0.7\n2,1.5,1.6,1.7\n".as_bytes(), "toy").unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.series(0).unwrap().name(), "toy-0_c1");
        assert_eq!(ds.series(0).unwrap().values(), &[0.5, 0.6, 0.7]);
        assert_eq!(ds.series(1).unwrap().values(), &[1.5, 1.6, 1.7]);
    }

    #[test]
    fn ucr_skips_blank_lines() {
        let ds = read_ucr("\n1 2 3\n\n".as_bytes(), "x").unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.series(0).unwrap().values(), &[2.0, 3.0]);
    }

    #[test]
    fn ucr_rejects_bad_floats_and_empty_records() {
        assert!(read_ucr("1 2 xyz\n".as_bytes(), "x").is_err());
        assert!(read_ucr("1\n".as_bytes(), "x").is_err());
        assert!(read_ucr("1 inf\n".as_bytes(), "x").is_err());
    }

    #[test]
    fn ucr_error_carries_line_number() {
        let err = read_ucr("1 2 3\n1 oops\n".as_bytes(), "x").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn csv_columns_basic() {
        let ds = read_csv_columns("MA,NY\n1.0,2.0\n1.5,2.5\n".as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.by_name("MA").unwrap().values(), &[1.0, 1.5]);
        assert_eq!(ds.by_name("NY").unwrap().values(), &[2.0, 2.5]);
    }

    #[test]
    fn csv_rejects_ragged_rows_with_the_line_number() {
        // The row "2," (empty cell) and the row "3" (missing cell) both
        // used to silently truncate column b — values after the gap
        // would misalign against the time axis. Strict mode rejects the
        // first ragged row loudly instead.
        let err = read_csv_columns("a,b\n1,10\n2,\n3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("ragged row"), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
        let err = read_csv_columns("a,b\n1,10\n3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("ragged row"), "{err}");
        // Rectangular input is unaffected.
        assert!(read_csv_columns("a,b\n1,10\n2,20\n".as_bytes()).is_ok());
    }

    #[test]
    fn csv_ragged_rows_map_to_invalid_data_at_the_api_boundary() {
        let err = read_csv_columns("a,b\n1,\n".as_bytes()).unwrap_err();
        assert!(matches!(err, Error::Parse { line: 2, .. }), "{err:?}");
    }

    #[test]
    fn csv_padded_reader_ends_short_columns_early() {
        let ds = read_csv_columns_padded("a,b\n1,10\n2,\n3\n".as_bytes()).unwrap();
        assert_eq!(ds.by_name("a").unwrap().values(), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.by_name("b").unwrap().values(), &[10.0]);
    }

    #[test]
    fn csv_padded_reader_rejects_holes() {
        let err = read_csv_columns_padded("a,b\n1,\n2,5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("resumes after a gap"), "{err}");
    }

    #[test]
    fn csv_rejects_wide_rows_and_bad_header() {
        assert!(read_csv_columns("a\n1,2\n".as_bytes()).is_err());
        assert!(read_csv_columns("a,,c\n1,2,3\n".as_bytes()).is_err());
    }

    #[test]
    fn csv_empty_input() {
        assert!(read_csv_columns("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn csv_round_trip_ragged() {
        let mut ds = Dataset::new();
        ds.push(TimeSeries::new("x", vec![1.0, 2.25, -3.5]))
            .unwrap();
        ds.push(TimeSeries::new("y", vec![0.1])).unwrap();
        let mut out = Vec::new();
        write_csv_columns(&ds, &mut out).unwrap();
        // The writer pads short columns with empty cells, so the ragged
        // round-trip goes through the padded reader; the strict reader
        // refuses the same bytes by design.
        assert!(read_csv_columns(out.as_slice()).is_err());
        let back = read_csv_columns_padded(out.as_slice()).unwrap();
        assert_eq!(
            back.by_name("x").unwrap().values(),
            ds.by_name("x").unwrap().values()
        );
        assert_eq!(
            back.by_name("y").unwrap().values(),
            ds.by_name("y").unwrap().values()
        );
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.1, 1.0 / 3.0, -2.5e-17, 123456.789] {
            assert_eq!(format_float(v).parse::<f64>().unwrap(), v);
        }
    }

    #[test]
    fn ucr_write_read_round_trip() {
        let ds = read_ucr("1 0.5 0.25\n2.5 1 2 3\n".as_bytes(), "rt").unwrap();
        let mut out = Vec::new();
        write_ucr(&ds, &mut out).unwrap();
        let back = read_ucr(out.as_slice(), "rt").unwrap();
        assert_eq!(back.len(), ds.len());
        for i in 0..ds.len() {
            assert_eq!(
                back.series(i as u32).unwrap().values(),
                ds.series(i as u32).unwrap().values()
            );
            // Labels survive: names coincide because both passes use the
            // same stem and ordering.
            assert_eq!(
                back.series(i as u32).unwrap().name(),
                ds.series(i as u32).unwrap().name()
            );
        }
    }

    #[test]
    fn ucr_write_defaults_unlabelled_names() {
        let ds = Dataset::from_series(vec![TimeSeries::new("plain", vec![1.0, 2.0])]).unwrap();
        let mut out = Vec::new();
        write_ucr(&ds, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "0 1 2\n");
    }

    #[test]
    fn ucr_file_round_trip_via_tempfile() {
        let dir = std::env::temp_dir().join("onex_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy_ucr.txt");
        std::fs::write(&path, "0 1.0 2.0 3.0\n1 4.0 5.0 6.0\n").unwrap();
        let ds = load_ucr_file(&path).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(ds.series(0).unwrap().name().starts_with("toy_ucr-0"));
        std::fs::remove_file(&path).ok();
    }
}
