use std::fmt;

/// The real-world coordinate system of a uniformly sampled series.
///
/// ONEX collections are heterogeneous: annual economic indicators sit next
/// to 15-minute electricity load. Keeping `start`/`step` with each series
/// lets the visual analytics layer label axes in real units while all
/// analytics operate on sample indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeAxis {
    /// Coordinate of the first sample (e.g. 2008.0 for "year 2008").
    pub start: f64,
    /// Distance between consecutive samples (e.g. 1.0 for annual,
    /// 0.25 for quarterly, 1.0/35040.0 for 15-minute data in year units).
    pub step: f64,
    /// Human-readable unit for axis labels (e.g. `"year"`, `"hour"`).
    pub unit: &'static str,
}

impl TimeAxis {
    /// Plain sample-index axis: 0, 1, 2, ... with unit `"t"`.
    pub const INDEX: TimeAxis = TimeAxis {
        start: 0.0,
        step: 1.0,
        unit: "t",
    };

    /// Annual axis starting at the given year.
    pub fn annual(start_year: u32) -> Self {
        TimeAxis {
            start: start_year as f64,
            step: 1.0,
            unit: "year",
        }
    }

    /// Quarterly axis starting at the given year.
    pub fn quarterly(start_year: u32) -> Self {
        TimeAxis {
            start: start_year as f64,
            step: 0.25,
            unit: "year",
        }
    }

    /// Hourly axis measured in hours from 0.
    pub fn hourly() -> Self {
        TimeAxis {
            start: 0.0,
            step: 1.0,
            unit: "hour",
        }
    }

    /// Coordinate of sample `i`.
    #[inline]
    pub fn at(&self, i: usize) -> f64 {
        self.start + self.step * i as f64
    }

    /// The axis obtained by dropping the first `offset` samples.
    pub fn offset(&self, offset: usize) -> Self {
        TimeAxis {
            start: self.at(offset),
            step: self.step,
            unit: self.unit,
        }
    }
}

impl Default for TimeAxis {
    fn default() -> Self {
        TimeAxis::INDEX
    }
}

/// A named, uniformly sampled, univariate time series.
///
/// Values are `f64`; the substrate does not forbid NaN (loaders reject it,
/// generators never produce it) but all distance code documents finite
/// input as a precondition.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    values: Vec<f64>,
    axis: TimeAxis,
}

impl TimeSeries {
    /// Create a series with the default index axis.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        TimeSeries {
            name: name.into(),
            values,
            axis: TimeAxis::INDEX,
        }
    }

    /// Create a series with an explicit time axis.
    pub fn with_axis(name: impl Into<String>, values: Vec<f64>, axis: TimeAxis) -> Self {
        TimeSeries {
            name: name.into(),
            values,
            axis,
        }
    }

    /// The series name (unique within a [`crate::Dataset`]).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw sample values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the samples (used by in-place normalisation).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The real-world coordinate system.
    #[inline]
    pub fn axis(&self) -> TimeAxis {
        self.axis
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the subsequence `[start, start + len)`, or `None` when out of
    /// bounds. Zero-length requests are answered with an empty slice only
    /// when `start` is itself in bounds.
    pub fn subsequence(&self, start: usize, len: usize) -> Option<&[f64]> {
        let end = start.checked_add(len)?;
        self.values.get(start..end)
    }

    /// Owned copy of a subsequence as a new series named
    /// `"{name}[{start}..{start+len}]"` with a correctly shifted axis.
    pub fn slice_owned(&self, start: usize, len: usize) -> Option<TimeSeries> {
        let window = self.subsequence(start, len)?;
        Some(TimeSeries {
            name: format!("{}[{}..{}]", self.name, start, start + len),
            values: window.to_vec(),
            axis: self.axis.offset(start),
        })
    }

    /// True when every sample is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// Iterator over `(coordinate, value)` pairs in axis units.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (self.axis.at(i), v))
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (n={})", self.name, self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_coordinates() {
        let ax = TimeAxis::annual(2008);
        assert_eq!(ax.at(0), 2008.0);
        assert_eq!(ax.at(5), 2013.0);
        let q = TimeAxis::quarterly(2010);
        assert_eq!(q.at(4), 2011.0);
    }

    #[test]
    fn axis_offset_shifts_start() {
        let ax = TimeAxis::annual(2000).offset(3);
        assert_eq!(ax.start, 2003.0);
        assert_eq!(ax.step, 1.0);
    }

    #[test]
    fn subsequence_bounds() {
        let s = TimeSeries::new("s", vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.subsequence(1, 2), Some(&[2.0, 3.0][..]));
        assert_eq!(s.subsequence(0, 4), Some(&[1.0, 2.0, 3.0, 4.0][..]));
        assert_eq!(s.subsequence(3, 2), None);
        assert_eq!(s.subsequence(4, 1), None);
        assert_eq!(s.subsequence(usize::MAX, 2), None);
    }

    #[test]
    fn slice_owned_carries_axis_and_name() {
        let s = TimeSeries::with_axis("MA", vec![1.0, 2.0, 3.0, 4.0], TimeAxis::annual(2010));
        let sub = s.slice_owned(2, 2).unwrap();
        assert_eq!(sub.name(), "MA[2..4]");
        assert_eq!(sub.values(), &[3.0, 4.0]);
        assert_eq!(sub.axis().start, 2012.0);
    }

    #[test]
    fn points_pair_axis_with_values() {
        let s = TimeSeries::with_axis("s", vec![5.0, 6.0], TimeAxis::annual(1999));
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts, vec![(1999.0, 5.0), (2000.0, 6.0)]);
    }

    #[test]
    fn finiteness_check() {
        assert!(TimeSeries::new("ok", vec![0.0, -1.5]).is_finite());
        assert!(!TimeSeries::new("nan", vec![0.0, f64::NAN]).is_finite());
        assert!(!TimeSeries::new("inf", vec![f64::INFINITY]).is_finite());
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new("e", vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.subsequence(0, 0), Some(&[][..]));
        assert_eq!(s.subsequence(1, 0), None);
    }
}
