//! Warping envelopes (Lemire's streaming min/max).
//!
//! The paper's query processor "index\[es\] time series using bounding
//! envelopes" (§3.3). An envelope of radius `r` around a sequence `y`
//! brackets every value `y` can be warped onto within a Sakoe–Chiba band
//! of radius `r`; LB_Keogh then lower-bounds DTW by how far a query
//! escapes the envelope. Built in O(n) by [`crate::kernels::sliding_minmax`]
//! — monotonic deques (Lemire, *Faster retrieval with a two-pass
//! dynamic-time-warping lower bound*, 2009) on the scalar path, the van
//! Herk–Gil–Werman decomposition on the SIMD paths; all levels bit-exact.

/// Lower/upper warping envelope of a sequence for a given band radius.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Band radius the envelope was built for.
    pub radius: usize,
    /// `lower[i] = min(y[i−r ..= i+r])` (clamped to the sequence).
    pub lower: Vec<f64>,
    /// `upper[i] = max(y[i−r ..= i+r])` (clamped to the sequence).
    pub upper: Vec<f64>,
}

impl Envelope {
    /// Build the envelope of `y` for band radius `r` in O(n).
    ///
    /// ```
    /// use onex_distance::Envelope;
    /// let env = Envelope::build(&[1.0, 3.0, 2.0], 1);
    /// assert_eq!(env.upper, vec![3.0, 3.0, 3.0]);
    /// assert_eq!(env.lower, vec![1.0, 1.0, 2.0]);
    /// assert!(env.contains(&[1.0, 3.0, 2.0]));
    /// ```
    pub fn build(y: &[f64], radius: usize) -> Envelope {
        let (lower, upper) = crate::kernels::sliding_minmax(y, radius);
        Envelope {
            radius,
            lower,
            upper,
        }
    }

    /// Length of the underlying sequence.
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// True when built over an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// True when `lower[i] ≤ y[i] ≤ upper[i]` everywhere — the defining
    /// envelope property (used by tests and debug assertions).
    pub fn contains(&self, y: &[f64]) -> bool {
        y.len() == self.len()
            && y.iter()
                .zip(self.lower.iter().zip(&self.upper))
                .all(|(&v, (&lo, &hi))| lo <= v && v <= hi)
    }
}

/// Reference O(n·r) envelope used to validate the streaming one in tests.
#[cfg(test)]
fn envelope_naive(y: &[f64], radius: usize) -> Envelope {
    let n = y.len();
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(radius);
        let hi = (i + radius + 1).min(n);
        let window = &y[lo..hi];
        lower.push(window.iter().cloned().fold(f64::INFINITY, f64::min));
        upper.push(window.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }
    Envelope {
        radius,
        lower,
        upper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_on_varied_inputs() {
        let ys = [
            vec![1.0, 3.0, 2.0, 5.0, 4.0, 0.0, -1.0, 2.0],
            vec![0.0; 5],
            vec![1.0],
            vec![2.0, 1.0],
            (0..50).map(|i| ((i * 37 % 17) as f64).sin()).collect(),
        ];
        for y in &ys {
            for r in 0..=y.len() + 1 {
                let fast = Envelope::build(y, r);
                let slow = envelope_naive(y, r);
                assert_eq!(fast.lower, slow.lower, "lower r={r} y={y:?}");
                assert_eq!(fast.upper, slow.upper, "upper r={r} y={y:?}");
            }
        }
    }

    #[test]
    fn radius_zero_is_identity() {
        let y = [3.0, 1.0, 4.0, 1.0, 5.0];
        let e = Envelope::build(&y, 0);
        assert_eq!(e.lower, y.to_vec());
        assert_eq!(e.upper, y.to_vec());
    }

    #[test]
    fn huge_radius_is_global_extrema() {
        let y = [3.0, 1.0, 4.0, 1.0, 5.0];
        let e = Envelope::build(&y, 100);
        assert!(e.lower.iter().all(|&v| v == 1.0));
        assert!(e.upper.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn envelope_contains_its_sequence() {
        let y: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        for r in [0, 1, 3, 10] {
            assert!(Envelope::build(&y, r).contains(&y), "r={r}");
        }
        assert!(!Envelope::build(&y, 1).contains(&y[..10]));
    }

    #[test]
    fn monotone_in_radius() {
        let y: Vec<f64> = (0..30).map(|i| ((i * i) % 13) as f64).collect();
        let narrow = Envelope::build(&y, 1);
        let wide = Envelope::build(&y, 4);
        for i in 0..y.len() {
            assert!(wide.lower[i] <= narrow.lower[i]);
            assert!(wide.upper[i] >= narrow.upper[i]);
        }
    }

    #[test]
    fn empty_sequence() {
        let e = Envelope::build(&[], 3);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.contains(&[]));
    }
}
