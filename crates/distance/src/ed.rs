//! Euclidean distance.
//!
//! The cheap half of the ONEX marriage: the base is *constructed* with ED
//! (paper §3.1) because it costs O(n) per pair, and the ED triangle
//! inequality is what turns the per-member ST/2 test into a pairwise ST
//! guarantee. Everything here requires equal-length inputs — ONEX only ever
//! compares same-length subsequences with ED.

/// Squared Euclidean distance `Σ (x_i − y_i)²`.
///
/// # Panics
/// Panics when lengths differ — an equal-length precondition violation is
/// always a logic error in the caller, never data-dependent.
#[inline]
pub fn ed_sq(x: &[f64], y: &[f64]) -> f64 {
    crate::kernels::sum_sq_diff(x, y)
}

/// Euclidean distance `√(Σ (x_i − y_i)²)`.
///
/// # Panics
/// Panics when lengths differ.
#[inline]
pub fn ed(x: &[f64], y: &[f64]) -> f64 {
    ed_sq(x, y).sqrt()
}

/// Early-abandoning squared ED: returns `f64::INFINITY` as soon as the
/// partial sum exceeds `ub_sq` (pass [`crate::INF`] to disable).
///
/// Abandonment checks run once per accumulation block of the underlying
/// [`crate::kernels`] path — frequent enough to save work on hopeless
/// candidates, rare enough not to tax the promising ones.
///
/// # Panics
/// Panics when lengths differ.
pub fn ed_early_abandon_sq(x: &[f64], y: &[f64], ub_sq: f64) -> f64 {
    crate::kernels::sum_sq_diff_ea(x, y, ub_sq)
}

/// Length-normalised ED: `ed(x, y) / √n`.
///
/// ONEX ranks candidate matches of *different* lengths (the base stores
/// groups per length); dividing by √n makes a per-sample RMS deviation, so
/// thresholds mean the same thing at every length. Empty input yields 0.
pub fn ed_normalized(x: &[f64], y: &[f64]) -> f64 {
    if x.is_empty() {
        assert_eq!(y.len(), 0, "ED requires equal lengths");
        return 0.0;
    }
    ed(x, y) / (x.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn known_values() {
        assert!(close(ed(&[0.0, 0.0], &[3.0, 4.0]), 5.0));
        assert!(close(ed_sq(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0));
        assert!(close(ed_sq(&[1.0], &[-1.0]), 4.0));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(ed(&[], &[]), 0.0);
        assert_eq!(ed_normalized(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        ed(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn early_abandon_agrees_when_not_abandoned() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let y = [2.0, 1.0, 3.0, 5.0, 4.0, 6.0, 8.0, 7.0, 9.0];
        let exact = ed_sq(&x, &y);
        assert!(close(ed_early_abandon_sq(&x, &y, f64::INFINITY), exact));
        assert!(close(ed_early_abandon_sq(&x, &y, exact), exact));
    }

    #[test]
    fn early_abandon_fires() {
        let x = vec![0.0; 64];
        let mut y = vec![0.0; 64];
        y[0] = 100.0; // first chunk already blows the bound
        assert_eq!(ed_early_abandon_sq(&x, &y, 1.0), f64::INFINITY);
    }

    #[test]
    fn early_abandon_boundary_is_strict() {
        // Partial sums equal to ub_sq must NOT abandon (bound is "exceeds").
        let x = [1.0, 0.0];
        let y = [0.0, 0.0];
        assert!(close(ed_early_abandon_sq(&x, &y, 1.0), 1.0));
    }

    #[test]
    fn normalized_is_per_sample_rms() {
        // Constant offset of 1 over any length normalises to exactly 1.
        for n in [1usize, 4, 9, 100] {
            let x = vec![0.0; n];
            let y = vec![1.0; n];
            assert!(close(ed_normalized(&x, &y), 1.0), "n={n}");
        }
    }

    #[test]
    fn symmetry_and_triangle_inequality() {
        let a = [0.5, -1.0, 2.0, 0.0];
        let b = [1.5, 1.0, -2.0, 3.0];
        let c = [0.0, 0.0, 0.0, 1.0];
        assert!(close(ed(&a, &b), ed(&b, &a)));
        assert!(ed(&a, &c) <= ed(&a, &b) + ed(&b, &c) + 1e-12);
    }
}
