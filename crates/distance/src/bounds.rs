//! The ED↔DTW bridge (paper §3.2, DESIGN.md §2.2).
//!
//! ONEX's formal foundation is "a triangle inequality between ED and DTW"
//! connecting the offline (Euclidean) construction of the base with its
//! online (time-warped) exploration. This module states and implements the
//! two facts the engine relies on:
//!
//! **Fact 1 (diagonal).** For equal-length sequences,
//! `DTW(x, y) ≤ ED(x, y)` — the diagonal is an admissible warping path.
//!
//! **Fact 2 (group bound).** Let `q` be a query, and `r`, `s` two
//! sequences of equal length `m` (a representative and a member of its
//! group). For any band whose warping multiplicity is `W` (the maximum
//! number of times one index of `r`/`s` may repeat on an admissible path):
//!
//! ```text
//! |DTW(q, s) − DTW(q, r)| ≤ √W · ED(r, s)
//! ```
//!
//! *Proof sketch.* Take the optimal path `P` for `(q, r)` and reuse its
//! index pairs for `(q, s)`. By Minkowski's inequality over ℝ^{|P|},
//! `cost_P(q, s) ≤ cost_P(q, r) + √(Σ_{(i,j)∈P} (r_j − s_j)²)`, and each
//! `j` occurs at most `W` times on `P`, so the last term is at most
//! `√W · ED(r, s)`. Since `DTW(q, s)` minimises over paths,
//! `DTW(q, s) ≤ DTW(q, r) + √W · ED(r, s)`; swap `r` and `s` for the other
//! direction. ∎
//!
//! With group members within `ST/2` of their representative (the base
//! invariant), Fact 2 gives the engine both its **correctness envelope**
//! (the best match's DTW is within `√W·ST/2` of the best representative
//! DTW) and its **pruning rule** (a group whose representative is farther
//! than `best + √W·ST/2` cannot contain a better match).

use crate::dtw::Band;

/// Warping multiplicity `W`: the maximum number of times a single index of
/// the column sequence (length `m`) can appear on an admissible path with
/// `n` rows under `band`.
///
/// A cell `(i, j)` is admissible when `|i − j| ≤ r` (the effective band
/// radius), so index `j` meets at most `2r + 1` distinct rows — and never
/// more than `n`.
pub fn warp_multiplicity(n: usize, m: usize, band: Band) -> usize {
    let r = band.radius(n, m);
    n.min(2 * r + 1)
}

/// Upper bound on `DTW(q, s)` given `DTW(q, r)` and `ED(r, s)` (Fact 2).
pub fn dtw_upper_via_representative(dtw_qr: f64, ed_rs: f64, multiplicity: usize) -> f64 {
    dtw_qr + (multiplicity as f64).sqrt() * ed_rs
}

/// Lower bound on `DTW(q, s)` given `DTW(q, r)` and `ED(r, s)` (Fact 2,
/// clamped at zero).
pub fn dtw_lower_via_representative(dtw_qr: f64, ed_rs: f64, multiplicity: usize) -> f64 {
    (dtw_qr - (multiplicity as f64).sqrt() * ed_rs).max(0.0)
}

/// The engine's group-pruning predicate: can a group whose representative
/// sits at `dtw_qr`, with members within `member_radius` (ED) of it,
/// possibly contain a sequence with DTW below `best_so_far`?
pub fn group_may_contain_better(
    dtw_qr: f64,
    member_radius: f64,
    multiplicity: usize,
    best_so_far: f64,
) -> bool {
    dtw_lower_via_representative(dtw_qr, member_radius, multiplicity) < best_so_far
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::{dtw, Band};
    use crate::ed::ed;

    #[test]
    fn multiplicity_formula() {
        assert_eq!(warp_multiplicity(10, 10, Band::Full), 10);
        assert_eq!(warp_multiplicity(10, 10, Band::SakoeChiba(2)), 5);
        assert_eq!(warp_multiplicity(10, 10, Band::SakoeChiba(0)), 1);
        // Unequal lengths widen the effective radius.
        assert_eq!(warp_multiplicity(10, 6, Band::SakoeChiba(0)), 9);
        assert_eq!(warp_multiplicity(3, 100, Band::Full), 3);
    }

    #[test]
    fn fact1_dtw_le_ed() {
        let x = [0.1, 0.9, -0.4, 1.3, 0.0, 0.2];
        let y = [0.0, 1.0, -0.2, 1.0, 0.3, 0.0];
        assert!(dtw(&x, &y, Band::Full) <= ed(&x, &y) + 1e-12);
    }

    #[test]
    fn fact2_group_bound_holds() {
        // q of a different length; r and s equal-length and close in ED.
        let q = [0.0, 0.5, 1.5, 1.0, 0.0, -0.5, 0.0, 0.4];
        let r = [0.1, 1.0, 1.2, 0.2, -0.4, 0.1];
        let s = [0.0, 1.1, 1.0, 0.3, -0.5, 0.2];
        for band in [Band::Full, Band::SakoeChiba(2), Band::SakoeChiba(1)] {
            let w = warp_multiplicity(q.len(), r.len(), band);
            let dqr = dtw(&q, &r, band);
            let dqs = dtw(&q, &s, band);
            let ers = ed(&r, &s);
            assert!(
                dqs <= dtw_upper_via_representative(dqr, ers, w) + 1e-9,
                "upper violated for {band:?}: {dqs} vs {dqr} + √{w}·{ers}"
            );
            assert!(
                dqs >= dtw_lower_via_representative(dqr, ers, w) - 1e-9,
                "lower violated for {band:?}"
            );
        }
    }

    #[test]
    fn lower_bound_clamps_at_zero() {
        assert_eq!(dtw_lower_via_representative(1.0, 100.0, 4), 0.0);
    }

    #[test]
    fn pruning_predicate() {
        // Representative at distance 10, members within 1 (ED), W = 1:
        // the group cannot beat a best-so-far of 5.
        assert!(!group_may_contain_better(10.0, 1.0, 1, 5.0));
        // But with W = 100 the slack √100·1 = 10 makes it possible.
        assert!(group_may_contain_better(10.0, 1.0, 100, 5.0));
        // Equality is "cannot be strictly better".
        assert!(!group_may_contain_better(6.0, 1.0, 1, 5.0));
    }
}
