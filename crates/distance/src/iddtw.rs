//! Iterative Deepening DTW (Chu, Keogh, Hart & Pazzani, SDM 2002).
//!
//! Reference \[3\] of the ONEX demo paper. IDDTW accelerates
//! nearest-neighbour search under DTW by evaluating candidates
//! coarse-to-fine over PAA resolutions: at each level the coarse DTW
//! estimate plus a **learned error distribution** decides whether the
//! candidate can still beat the best-so-far; if not, it is abandoned
//! without ever paying the full O(n²).
//!
//! The error model is trained on sample pairs from the same data
//! distribution: for each level it records a *lower* quantile of the
//! signed error `exact − coarse`, so `coarse + correction` behaves like
//! a probabilistic lower bound of the exact distance (the correction is
//! usually negative — it discounts the coarse estimate by the largest
//! overshoot seen in training). With the quantile at 1.0 the correction
//! is the minimum observed error, covering **every** trained pair, and
//! the search is exact on pairs drawn from the training set; smaller
//! quantiles trade recall for speed — the same accuracy dial the ONEX
//! paper contrasts its guaranteed pruning with.

use crate::dtw::{dtw, Band};
use crate::paa::dtw_paa;

/// Per-level additive error bound learned from training pairs.
#[derive(Debug, Clone)]
pub struct IddtwModel {
    /// PAA segment counts, coarsest first, strictly increasing.
    levels: Vec<usize>,
    /// For each level, the chosen lower quantile of `exact − coarse`
    /// (typically negative: the discount absorbing coarse overshoot).
    corrections: Vec<f64>,
    band: Band,
}

/// Work accounting for one IDDTW nearest-neighbour query.
#[derive(Debug, Clone, Copy, Default)]
pub struct IddtwStats {
    /// Candidates abandoned at each coarse level (index = level).
    pub abandoned_per_level: [usize; 8],
    /// Candidates that survived to the exact computation.
    pub full_computations: usize,
}

impl IddtwModel {
    /// Train on `pairs` of (query-like, candidate-like) series.
    ///
    /// `levels` are PAA segment counts, coarsest first (e.g. `[4, 16]`).
    /// `quantile` in `(0, 1]` picks how much of the observed error mass
    /// the per-level correction must cover; 1.0 uses the minimum signed
    /// error, i.e. every trained pair's exact distance stays above its
    /// corrected coarse estimate.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` or `levels` is empty, levels are not strictly
    /// increasing, more than 8 levels are given (the stats array is
    /// fixed-size), or `quantile` is outside `(0, 1]`.
    pub fn train(
        pairs: &[(Vec<f64>, Vec<f64>)],
        levels: &[usize],
        quantile: f64,
        band: Band,
    ) -> Self {
        assert!(!pairs.is_empty(), "need training pairs");
        assert!(!levels.is_empty() && levels.len() <= 8, "1..=8 levels");
        assert!(
            levels.windows(2).all(|w| w[0] < w[1]),
            "levels must be strictly increasing"
        );
        assert!(quantile > 0.0 && quantile <= 1.0, "quantile in (0, 1]");
        let mut corrections = Vec::with_capacity(levels.len());
        for &seg in levels {
            let mut errs: Vec<f64> = pairs
                .iter()
                .map(|(x, y)| dtw(x, y, band) - dtw_paa(x, y, seg, band))
                .collect();
            errs.sort_by(|a, b| a.total_cmp(b));
            // Lower quantile: covering fraction `quantile` of pairs means
            // at most (1 − quantile) may have their exact distance
            // undercut the corrected estimate.
            let idx = ((errs.len() as f64 * (1.0 - quantile)).floor() as usize).min(errs.len() - 1);
            corrections.push(errs[idx]);
        }
        IddtwModel {
            levels: levels.to_vec(),
            corrections,
            band,
        }
    }

    /// The trained per-level corrections (for inspection/benching).
    pub fn corrections(&self) -> &[f64] {
        &self.corrections
    }

    /// The PAA levels, coarsest first.
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// Probabilistic lower bound of `DTW(x, y)` at level index `li`.
    pub fn lower_estimate(&self, x: &[f64], y: &[f64], li: usize) -> f64 {
        let coarse = dtw_paa(x, y, self.levels[li], self.band);
        (coarse + self.corrections[li]).max(0.0)
    }

    /// Nearest neighbour of `query` among `candidates` by
    /// iterative-deepening: returns `(index, exact distance, stats)`.
    ///
    /// Exact whenever every candidate's true error is covered by the
    /// trained corrections (guaranteed on the training set at
    /// quantile 1.0); otherwise the result is the best among candidates
    /// that survive the probabilistic filter.
    pub fn nearest<'a, I>(&self, query: &[f64], candidates: I) -> Option<(usize, f64, IddtwStats)>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut stats = IddtwStats::default();
        let mut best: Option<(usize, f64)> = None;
        for (ci, cand) in candidates.into_iter().enumerate() {
            let mut abandoned = false;
            if let Some((_, bsf)) = best {
                for li in 0..self.levels.len() {
                    if self.levels[li] >= cand.len().min(query.len()) {
                        break; // coarse level no cheaper than exact
                    }
                    if self.lower_estimate(query, cand, li) > bsf {
                        stats.abandoned_per_level[li] += 1;
                        abandoned = true;
                        break;
                    }
                }
            }
            if abandoned {
                continue;
            }
            stats.full_computations += 1;
            let d = dtw(query, cand, self.band);
            if best.is_none_or(|(_, b)| d < b) {
                best = Some((ci, d));
            }
        }
        best.map(|(i, d)| (i, d, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize, f: f64, phase: f64, amp: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * f + phase).sin() * amp).collect()
    }

    fn family(count: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|i| {
                wave(
                    32,
                    0.2 + 0.01 * (i % 5) as f64,
                    i as f64 * 0.3,
                    1.0 + (i % 3) as f64,
                )
            })
            .collect()
    }

    fn train_pairs() -> Vec<(Vec<f64>, Vec<f64>)> {
        let fam = family(12);
        (0..fam.len() - 1)
            .map(|i| (fam[i].clone(), fam[i + 1].clone()))
            .collect()
    }

    #[test]
    fn max_quantile_is_exact_on_training_distribution() {
        // Train on exactly the (query, candidate) pairs the search will
        // evaluate: quantile 1.0 then covers every candidate's error and
        // the filter can never abandon the true nearest neighbour.
        let fam = family(12);
        let pairs: Vec<(Vec<f64>, Vec<f64>)> = fam[1..]
            .iter()
            .map(|c| (fam[0].clone(), c.clone()))
            .collect();
        let model = IddtwModel::train(&pairs, &[4, 16], 1.0, Band::Full);
        let query = &fam[0];
        // Brute force.
        let mut want = (0, f64::INFINITY);
        for (i, c) in fam[1..].iter().enumerate() {
            let d = dtw(query, c, Band::Full);
            if d < want.1 {
                want = (i, d);
            }
        }
        let (gi, gd, _) = model
            .nearest(query, fam[1..].iter().map(|v| v.as_slice()))
            .unwrap();
        assert_eq!(gi, want.0);
        assert!((gd - want.1).abs() < 1e-9);
    }

    #[test]
    fn abandons_distant_candidates_at_coarse_levels() {
        let model = IddtwModel::train(&train_pairs(), &[4, 16], 1.0, Band::Full);
        let near = wave(32, 0.2, 0.0, 1.0);
        let mut cands: Vec<Vec<f64>> = vec![wave(32, 0.2, 0.05, 1.0)];
        // Far candidates: huge offset, coarse level sees it immediately.
        for i in 0..20 {
            cands.push(
                wave(32, 0.2, 0.0, 1.0)
                    .iter()
                    .map(|v| v + 40.0 + i as f64)
                    .collect(),
            );
        }
        let (gi, _, stats) = model
            .nearest(&near, cands.iter().map(|v| v.as_slice()))
            .unwrap();
        assert_eq!(gi, 0);
        let abandoned: usize = stats.abandoned_per_level.iter().sum();
        assert!(abandoned >= 15, "stats: {stats:?}");
        assert!(stats.full_computations <= 6);
    }

    #[test]
    fn corrections_shrink_with_resolution() {
        // Finer PAA approximates better, so the discount it needs (a
        // negative correction absorbing coarse overshoot) moves toward
        // zero as resolution grows on smooth data.
        let model = IddtwModel::train(&train_pairs(), &[2, 8, 32], 1.0, Band::Full);
        let c = model.corrections();
        assert!(c[0] <= c[2] + 1e-9, "corrections {c:?}");
    }

    #[test]
    fn single_candidate_never_abandoned() {
        let model = IddtwModel::train(&train_pairs(), &[4], 0.5, Band::Full);
        let q = wave(32, 0.21, 0.0, 1.0);
        let c = wave(32, 0.19, 2.0, 1.0);
        let (i, d, stats) = model.nearest(&q, [c.as_slice()]).unwrap();
        assert_eq!(i, 0);
        assert!((d - dtw(&q, &c, Band::Full)).abs() < 1e-12);
        assert_eq!(stats.full_computations, 1);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let model = IddtwModel::train(&train_pairs(), &[4], 1.0, Band::Full);
        assert!(model.nearest(&[1.0, 2.0], std::iter::empty()).is_none());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_levels() {
        IddtwModel::train(&train_pairs(), &[16, 4], 1.0, Band::Full);
    }
}
