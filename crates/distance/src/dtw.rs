//! Dynamic Time Warping.
//!
//! The expensive half of the ONEX marriage (paper §1, challenge 2): DTW
//! aligns sequences of different lengths and phases but costs O(n·m). ONEX
//! pays that cost only against the compact base, and even there abandons
//! early. Four entry points, cheapest machinery first:
//!
//! * [`dtw_sq`] / [`dtw`] — two-row DP, optional Sakoe–Chiba band.
//! * [`dtw_early_abandon`] — same DP that gives up as soon as the best
//!   reachable cell already exceeds a known upper bound.
//! * [`dtw_early_abandon_sq_with_cb`] — the UCR Suite variant that also
//!   folds a cumulative lower-bound tail into the abandonment test.
//! * [`dtw_with_path`] — full-matrix variant that recovers the warping
//!   path for visualisation.

use crate::path::WarpingPath;

/// Warping window constraint.
///
/// ONEX explores with unconstrained DTW (its accuracy edge in experiment
/// E6 comes precisely from *not* constraining the warp), while the UCR
/// Suite baseline uses a Sakoe–Chiba band. Both live behind this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Band {
    /// No constraint: every alignment is admissible.
    Full,
    /// Sakoe–Chiba band of the given radius: cells with `|i − j| > r` are
    /// forbidden. For unequal lengths the radius is widened to at least
    /// `|n − m|` so an admissible path always exists.
    SakoeChiba(usize),
    /// The classic Itakura parallelogram with maximum slope 2: the path
    /// may locally run at most twice as fast (or half as fast) in one
    /// sequence as in the other, measured from both endpoints. Unlike the
    /// Sakoe–Chiba band it pinches at the endpoints and is widest in the
    /// middle. For very different lengths (length ratio at or above 2,
    /// where the discrete region pinches shut under the standard step
    /// pattern) no path exists and DTW is `∞`.
    Itakura,
}

impl Band {
    /// Effective radius for sequences of lengths `n` and `m` — the
    /// largest `|i − j|` any admissible cell may have. Envelope-based
    /// lower bounds must be built with at least this radius to stay sound.
    #[inline]
    pub fn radius(&self, n: usize, m: usize) -> usize {
        match *self {
            Band::Full => n.max(m),
            Band::SakoeChiba(r) => r.max(n.abs_diff(m)),
            // The parallelogram reaches |i−j| up to ~max(n,m)/3 for equal
            // lengths, more when lengths differ; the loose global bound is
            // always sound.
            Band::Itakura => n.max(m),
        }
    }

    /// A band of radius `⌈fraction · n⌉` for a query of length `n` — the
    /// conventional "5% warping window" parameterisation.
    pub fn from_fraction(n: usize, fraction: f64) -> Band {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "band fraction out of range"
        );
        Band::SakoeChiba((fraction * n as f64).ceil() as usize)
    }

    /// Admissible column range (1-based, inclusive) for DP row `i`
    /// (1-based) over sequences of lengths `n` (rows) and `m` (columns).
    /// An empty range (`lo > hi`) means the row is entirely forbidden.
    #[inline]
    pub fn row_range(&self, i: usize, n: usize, m: usize) -> (usize, usize) {
        match *self {
            Band::Full => (1, m),
            Band::SakoeChiba(_) => {
                let w = self.radius(n, m);
                (i.saturating_sub(w).max(1), (i + w).min(m))
            }
            Band::Itakura => {
                // Slope-2 constraints measured from (1,1) and (n,m):
                //   forward:  (i−1)/2 ≤ j−1 ≤ 2(i−1)
                //   backward: (n−i)/2 ≤ m−j ≤ 2(n−i)
                let fwd_lo = (i - 1).div_ceil(2) + 1;
                let fwd_hi = 2 * (i - 1) + 1;
                let back_lo = m.saturating_sub(2 * (n - i));
                let back_hi = m.saturating_sub((n - i).div_ceil(2));
                (fwd_lo.max(back_lo).max(1), fwd_hi.min(back_hi).min(m))
            }
        }
    }
}

/// Squared DTW distance between `x` (rows) and `y` (columns).
///
/// ```
/// use onex_distance::{dtw_sq, Band};
/// // A shifted impulse aligns perfectly under warping…
/// let a = [0.0, 0.0, 1.0, 0.0];
/// let b = [0.0, 1.0, 0.0, 0.0];
/// assert_eq!(dtw_sq(&a, &b, Band::Full), 0.0);
/// // …but not within a zero-radius band (which equals squared ED).
/// assert_eq!(dtw_sq(&a, &b, Band::SakoeChiba(0)), 2.0);
/// ```
///
/// # Panics
/// Panics when either input is empty; ONEX's minimum subsequence length
/// is 2, so an empty operand is a caller bug.
pub fn dtw_sq(x: &[f64], y: &[f64], band: Band) -> f64 {
    dtw_early_abandon_sq_with_cb(x, y, band, f64::INFINITY, None)
}

/// DTW distance `√(dtw_sq)`.
pub fn dtw(x: &[f64], y: &[f64], band: Band) -> f64 {
    dtw_sq(x, y, band).sqrt()
}

/// Early-abandoning DTW: returns the distance, or `f64::INFINITY` once no
/// alignment can beat `ub` (an upper bound on the *root-scale* distance;
/// pass [`crate::INF`] to disable).
pub fn dtw_early_abandon(x: &[f64], y: &[f64], band: Band, ub: f64) -> f64 {
    let ub_sq = if ub.is_finite() {
        ub * ub
    } else {
        f64::INFINITY
    };
    dtw_early_abandon_sq_with_cb(x, y, band, ub_sq, None).sqrt()
}

/// The full-control DP: squared distance, early abandonment against
/// `ub_sq`, and an optional cumulative bound `cb`.
///
/// `cb`, when provided, must satisfy `cb.len() == x.len() + 1`, `cb[n] = 0`
/// and `cb[i] ≥ cb[i+1]`, with `cb[i]` a lower bound on the squared cost
/// still to be paid by positions `i..n` of either sequence (the UCR Suite
/// derives it from LB_Keogh's per-position contributions, which are
/// candidate-indexed for the EQ variant and query-indexed for EC). After
/// finishing row `i`, the algorithm abandons when
/// `min(row) + cb[max(i, band reach)] > ub_sq` — the band-reach offset
/// keeps the test sound for both indexings while still firing much
/// earlier than the plain row minimum.
///
/// # Panics
/// Panics when either input is empty or `cb` has the wrong length.
pub fn dtw_early_abandon_sq_with_cb(
    x: &[f64],
    y: &[f64],
    band: Band,
    ub_sq: f64,
    cb: Option<&[f64]>,
) -> f64 {
    dtw_early_abandon_sq_dynamic(x, y, band, ub_sq, cb, None)
}

/// [`dtw_early_abandon_sq_with_cb`] with a **live** bound: when `live` is
/// provided, it is re-read after every DP row and the effective squared
/// abandonment threshold becomes `min(ub_sq, live())`. This is how a
/// query-global pruning bound (`onex_api::SharedBound`) reaches into an
/// in-flight DTW — a tighter k-th best discovered by a concurrent worker
/// (another shard, another candidate length) aborts this computation
/// mid-DP instead of after it.
///
/// The live bound must be *monotonically tightening* across calls (each
/// read may be smaller than, never larger than sound): abandoning against
/// any value it returns must remain correct for the caller. Returns
/// `f64::INFINITY` once no alignment can beat the tightest threshold
/// observed, including a final check of the completed distance.
///
/// # Panics
/// Panics when either input is empty or `cb` has the wrong length.
pub fn dtw_early_abandon_sq_dynamic(
    x: &[f64],
    y: &[f64],
    band: Band,
    ub_sq: f64,
    cb: Option<&[f64]>,
    live: Option<&dyn Fn() -> f64>,
) -> f64 {
    let n = x.len();
    let m = y.len();
    assert!(n > 0 && m > 0, "DTW requires non-empty sequences");
    if let Some(cb) = cb {
        assert_eq!(cb.len(), n + 1, "cumulative bound must have n+1 entries");
    }

    // Two rows over columns 0..=m; column 0 is the virtual "before y" edge.
    // `d2` is the squared-diff scratch row the SIMD row kernel caches its
    // vectorised pass in.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    let mut d2 = vec![0.0; m + 1];
    prev[0] = 0.0;
    // The effective threshold only ever tightens: the static ub_sq folded
    // with every live reading observed so far (f64::min ignores NaN, so a
    // misbehaving live bound can loosen nothing).
    let mut bound_sq = ub_sq;

    for i in 1..=n {
        curr.iter_mut().for_each(|c| *c = f64::INFINITY);
        let (lo, hi) = band.row_range(i, n, m);
        if lo > hi {
            return f64::INFINITY; // band excludes the whole row: infeasible
        }
        let xi = x[i - 1];
        let row_min = crate::kernels::dtw_row(xi, y, lo, hi, &prev, &mut curr, &mut d2);
        // Outstanding-contribution tail. A partial path through row `i`
        // has consumed query positions 0..i and possibly candidate
        // positions up to `hi` (the band's forward reach), so only
        // contributions at positions ≥ max(i, hi) are guaranteed still
        // unpaid — whichever sequence the contributions are indexed by.
        // This is the UCR Suite's `cb[i + r + 1]` offset generalised to
        // any band; using `cb[i]` alone over-counts candidate-indexed
        // (LB_Keogh EQ) contributions and falsely abandons.
        let tail = cb.map_or(0.0, |cb| cb[i.max(hi).min(n)]);
        if let Some(live) = live {
            bound_sq = bound_sq.min(live());
        }
        if row_min + tail > bound_sq {
            return f64::INFINITY;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let out = prev[m];
    if out > bound_sq {
        f64::INFINITY
    } else {
        out
    }
}

/// DTW with warping-path recovery: returns `(distance, path)`.
///
/// Allocates the full `(n+1)·(m+1)` matrix, so use this for presentation
/// (the Results pane draws one path), not for scanning.
///
/// # Panics
/// Panics when either input is empty.
pub fn dtw_with_path(x: &[f64], y: &[f64], band: Band) -> (f64, WarpingPath) {
    let n = x.len();
    let m = y.len();
    assert!(n > 0 && m > 0, "DTW requires non-empty sequences");

    let cols = m + 1;
    let mut dp = vec![f64::INFINITY; (n + 1) * cols];
    dp[0] = 0.0;
    for i in 1..=n {
        let (lo, hi) = band.row_range(i, n, m);
        let xi = x[i - 1];
        for j in lo..=hi {
            let d = xi - y[j - 1];
            let up = dp[(i - 1) * cols + j];
            let left = dp[i * cols + j - 1];
            let diag = dp[(i - 1) * cols + j - 1];
            dp[i * cols + j] = d * d + up.min(left).min(diag);
        }
    }

    // Trace back from (n, m); prefer the diagonal on ties so paths stay as
    // short (and visually clean) as possible.
    let mut pairs = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        pairs.push((i as u32 - 1, j as u32 - 1));
        let diag = dp[(i - 1) * cols + j - 1];
        let up = dp[(i - 1) * cols + j];
        let left = dp[i * cols + j - 1];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    debug_assert!(i == 0 && j == 0, "traceback must reach the origin");
    pairs.reverse();
    (dp[n * cols + m].sqrt(), WarpingPath::new(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ed::ed;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn identical_sequences_are_zero() {
        let x = [1.0, 2.0, 3.0, 2.0];
        assert!(close(dtw(&x, &x, Band::Full), 0.0));
        assert!(close(dtw(&x, &x, Band::SakoeChiba(0)), 0.0));
    }

    #[test]
    fn known_small_case() {
        // x = [0, 1], y = [0, 0, 1]: warp matches both zeros to x[0].
        assert!(close(
            dtw_sq(&[0.0, 1.0], &[0.0, 0.0, 1.0], Band::Full),
            0.0
        ));
        // Shifted impulse aligns under warping but not under ED.
        let a = [0.0, 0.0, 1.0, 0.0];
        let b = [0.0, 1.0, 0.0, 0.0];
        assert!(close(dtw(&a, &b, Band::Full), 0.0));
        assert!(ed(&a, &b) > 1.0);
    }

    #[test]
    fn dtw_never_exceeds_ed_for_equal_lengths() {
        // The diagonal is always an admissible path, so DTW ≤ ED.
        let xs = [
            vec![1.0, 5.0, -2.0, 0.0, 3.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0],
            vec![2.0, 2.1, 2.2, 1.9, 2.0],
        ];
        let ys = [
            vec![0.0, 4.0, -1.0, 2.0, 2.0],
            vec![1.0, -1.0, 1.0, -1.0, 1.0],
            vec![2.0, 2.0, 2.0, 2.0, 2.0],
        ];
        for (x, y) in xs.iter().zip(&ys) {
            assert!(dtw(x, y, Band::Full) <= ed(x, y) + 1e-12);
        }
    }

    #[test]
    fn symmetry() {
        let x = [1.0, 3.0, 2.0, 5.0];
        let y = [2.0, 1.0, 4.0];
        assert!(close(dtw(&x, &y, Band::Full), dtw(&y, &x, Band::Full)));
        assert!(close(
            dtw(&x, &y, Band::SakoeChiba(2)),
            dtw(&y, &x, Band::SakoeChiba(2))
        ));
    }

    #[test]
    fn narrower_band_never_decreases_distance() {
        let x = [0.0, 1.0, 2.0, 1.0, 0.0, -1.0];
        let y = [1.0, 2.0, 1.0, 0.0, -1.0, 0.0];
        let full = dtw(&x, &y, Band::Full);
        let wide = dtw(&x, &y, Band::SakoeChiba(3));
        let narrow = dtw(&x, &y, Band::SakoeChiba(1));
        let none = dtw(&x, &y, Band::SakoeChiba(0));
        assert!(full <= wide + 1e-12);
        assert!(wide <= narrow + 1e-12);
        assert!(narrow <= none + 1e-12);
        // Radius 0 with equal lengths is exactly ED.
        assert!(close(none, ed(&x, &y)));
    }

    #[test]
    fn band_widens_for_unequal_lengths() {
        // SakoeChiba(0) would be infeasible for |x| ≠ |y|; radius() widens
        // it to the length difference so a path exists.
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 3.0];
        let d = dtw(&x, &y, Band::SakoeChiba(0));
        assert!(d.is_finite());
        assert_eq!(Band::SakoeChiba(0).radius(4, 2), 2);
        assert_eq!(Band::Full.radius(4, 2), 4);
    }

    #[test]
    fn from_fraction_rounds_up() {
        assert_eq!(Band::from_fraction(100, 0.05), Band::SakoeChiba(5));
        assert_eq!(Band::from_fraction(10, 0.01), Band::SakoeChiba(1));
        assert_eq!(Band::from_fraction(10, 0.0), Band::SakoeChiba(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_fraction_rejects_bad_input() {
        Band::from_fraction(10, 1.5);
    }

    #[test]
    fn early_abandon_agrees_with_exact_when_under_bound() {
        let x = [1.0, 2.0, 0.5, -1.0, 0.0];
        let y = [0.5, 2.5, 0.0, -1.5, 0.5];
        let exact = dtw(&x, &y, Band::Full);
        let ea = dtw_early_abandon(&x, &y, Band::Full, exact + 0.1);
        assert!(close(ea, exact));
        // Bound exactly at the distance must not abandon ("exceeds" test).
        let at = dtw_early_abandon(&x, &y, Band::Full, exact);
        assert!(close(at, exact));
    }

    #[test]
    fn early_abandon_fires_on_hopeless_candidates() {
        let x = vec![0.0; 32];
        let y = vec![100.0; 32];
        assert_eq!(dtw_early_abandon(&x, &y, Band::Full, 1.0), f64::INFINITY);
    }

    #[test]
    fn cb_tail_tightens_abandonment() {
        // Under a band of radius 0 (diagonal only), row i can have
        // consumed exactly column i, so a cb that still owes more than
        // the bound at the next position abandons instantly even though
        // the row minimum alone would not.
        let x = [0.0, 0.0, 0.0];
        let y = [0.0, 0.0, 0.0];
        let cb = [10.0, 10.0, 10.0, 0.0];
        let out = dtw_early_abandon_sq_with_cb(&x, &y, Band::SakoeChiba(0), 1.0, Some(&cb));
        assert_eq!(out, f64::INFINITY);
        // Zero cb reduces to the plain computation.
        let zero = [0.0; 4];
        let out2 = dtw_early_abandon_sq_with_cb(&x, &y, Band::SakoeChiba(0), 1.0, Some(&zero));
        assert!(close(out2, 0.0));
    }

    #[test]
    fn cb_tail_is_ignored_under_full_band() {
        // With no band, a partial path may already have consumed every
        // candidate position, so no tail is sound — the cb must not be
        // applied (this was a real false-dismissal bug caught by the UCR
        // agreement proptest).
        let x = [0.0, 0.0, 0.0];
        let y = [0.0, 0.0, 0.0];
        let cb = [10.0, 10.0, 10.0, 0.0];
        let out = dtw_early_abandon_sq_with_cb(&x, &y, Band::Full, 1.0, Some(&cb));
        assert!(close(out, 0.0));
    }

    #[test]
    fn live_bound_aborts_mid_dp() {
        use std::cell::Cell;
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let y: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2 + 1.0).cos()).collect();
        let exact = dtw_sq(&x, &y, Band::Full);
        // A live bound that starts loose and collapses to ~0 after a few
        // rows — the DP must abandon even though the static ub_sq never
        // would have.
        let rows = Cell::new(0u32);
        let live = || {
            rows.set(rows.get() + 1);
            if rows.get() > 4 {
                1e-12
            } else {
                f64::INFINITY
            }
        };
        let out =
            dtw_early_abandon_sq_dynamic(&x, &y, Band::Full, f64::INFINITY, None, Some(&live));
        assert_eq!(out, f64::INFINITY, "tightened live bound must abandon");
        assert!(rows.get() < 64, "abandoned mid-DP, not at the end");
        // A live bound that stays above the true distance changes nothing.
        let loose = || exact + 1.0;
        let out2 =
            dtw_early_abandon_sq_dynamic(&x, &y, Band::Full, f64::INFINITY, None, Some(&loose));
        assert!(close(out2, exact));
        // No live bound: identical to the static entry point.
        let out3 = dtw_early_abandon_sq_dynamic(&x, &y, Band::Full, f64::INFINITY, None, None);
        assert!(close(out3, exact));
    }

    #[test]
    fn live_bound_tightening_is_one_way() {
        // A live bound that *loosens* over time must not loosen the
        // effective threshold: once 0.5 was observed, later readings of
        // ∞ keep the DP abandoning against 0.5.
        use std::cell::Cell;
        let x = vec![0.0; 8];
        let y = vec![1.0; 8]; // true squared distance: 8
        let calls = Cell::new(0u32);
        let flaky = || {
            calls.set(calls.get() + 1);
            if calls.get() == 1 {
                0.5
            } else {
                f64::INFINITY
            }
        };
        let out =
            dtw_early_abandon_sq_dynamic(&x, &y, Band::Full, f64::INFINITY, None, Some(&flaky));
        assert_eq!(out, f64::INFINITY);
        // NaN readings are ignored rather than poisoning the threshold.
        let nan = || f64::NAN;
        let out2 =
            dtw_early_abandon_sq_dynamic(&x, &y, Band::Full, f64::INFINITY, None, Some(&nan));
        assert!(close(out2, 8.0));
    }

    #[test]
    #[should_panic(expected = "n+1 entries")]
    fn cb_length_is_checked() {
        dtw_early_abandon_sq_with_cb(&[1.0, 2.0], &[1.0], Band::Full, 1.0, Some(&[0.0]));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_input_panics() {
        dtw(&[], &[1.0], Band::Full);
    }

    #[test]
    fn path_is_valid_and_cost_matches_distance() {
        let x = [0.0, 1.0, 3.0, 2.0, 0.0];
        let y = [0.0, 2.0, 3.0, 1.0];
        let (d, p) = dtw_with_path(&x, &y, Band::Full);
        assert!(p.is_valid(x.len(), y.len()), "{p:?}");
        assert!(close(p.cost(&x, &y), d), "path cost equals DTW distance");
        assert!(close(d, dtw(&x, &y, Band::Full)), "agrees with two-row DP");
    }

    #[test]
    fn path_respects_band() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let (d, p) = dtw_with_path(&x, &y, Band::SakoeChiba(1));
        assert!(close(d, 0.0));
        for &(i, j) in p.pairs() {
            assert!(i.abs_diff(j) <= 1, "pair ({i},{j}) outside band");
        }
    }

    #[test]
    fn banded_two_row_matches_banded_path_variant() {
        let x = [0.3, 1.2, -0.5, 2.0, 0.0, 1.0, 0.7];
        let y = [0.0, 1.0, 0.0, 2.2, -0.3, 0.9];
        for band in [Band::Full, Band::SakoeChiba(2), Band::SakoeChiba(1)] {
            let a = dtw(&x, &y, band);
            let (b, _) = dtw_with_path(&x, &y, band);
            assert!(close(a, b), "band {band:?}: {a} vs {b}");
        }
    }

    #[test]
    fn itakura_row_ranges_are_well_formed() {
        let band = Band::Itakura;
        for (n, m) in [(8usize, 8usize), (10, 7), (7, 10), (5, 9), (1, 1)] {
            let mut prev_lo = 0usize;
            for i in 1..=n {
                let (lo, hi) = band.row_range(i, n, m);
                if lo <= hi {
                    assert!(lo >= 1 && hi <= m, "({n},{m}) row {i}: [{lo},{hi}]");
                    assert!(lo >= prev_lo, "lower edge is monotone");
                    prev_lo = lo;
                }
            }
            // Endpoints are always pinned when feasible.
            if m < 2 * n && n < 2 * m {
                assert_eq!(band.row_range(1, n, m).0, 1);
                assert_eq!(band.row_range(n, n, m).1, m);
            }
        }
    }

    #[test]
    fn itakura_between_ed_and_full_dtw() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.5).sin() * 2.0).collect();
        let y: Vec<f64> = (0..20)
            .map(|i| (i as f64 * 0.5 + 0.7).sin() * 2.0)
            .collect();
        let full = dtw(&x, &y, Band::Full);
        let ita = dtw(&x, &y, Band::Itakura);
        let none = ed(&x, &y);
        assert!(full <= ita + 1e-12, "constraining cannot decrease distance");
        assert!(ita <= none + 1e-12, "parallelogram contains the diagonal");
        // Symmetric for equal lengths (the parallelogram is symmetric).
        assert!((dtw(&x, &y, Band::Itakura) - dtw(&y, &x, Band::Itakura)).abs() < 1e-12);
    }

    #[test]
    fn itakura_identity_and_infeasible_lengths() {
        let x = [1.0, 2.0, 3.0, 2.0, 1.0, 0.0];
        assert!(dtw(&x, &x, Band::Itakura) < 1e-12);
        // m > 2n − 1: no admissible path.
        let short = [1.0, 2.0];
        let long = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5];
        assert!(dtw(&short, &long, Band::Itakura).is_infinite());
        assert!(dtw(&long, &short, Band::Itakura).is_infinite());
        // At m = 2n − 1 the discrete parallelogram pinches shut under the
        // standard step pattern (rows become disconnected), so even the
        // nominal boundary is infeasible…
        let three = [0.0, 1.0, 2.0];
        let five = [0.0, 0.5, 1.0, 1.5, 2.0];
        assert!(dtw(&three, &five, Band::Itakura).is_infinite());
        // …while a ratio comfortably below 2 is feasible.
        let four = [0.0, 1.0, 2.0, 3.0];
        let six = [0.0, 0.6, 1.2, 1.8, 2.4, 3.0];
        assert!(dtw(&four, &six, Band::Itakura).is_finite());
    }

    #[test]
    fn itakura_path_respects_parallelogram() {
        let x: Vec<f64> = (0..16).map(|i| ((i * i) % 7) as f64).collect();
        let y: Vec<f64> = (0..16).map(|i| ((i * 3) % 5) as f64).collect();
        let (d, p) = dtw_with_path(&x, &y, Band::Itakura);
        assert!(d.is_finite());
        assert!(p.is_valid(x.len(), y.len()));
        for &(i, j) in p.pairs() {
            let (lo, hi) = Band::Itakura.row_range(i as usize + 1, x.len(), y.len());
            let col = j as usize + 1;
            assert!(
                col >= lo && col <= hi,
                "cell ({i},{j}) outside parallelogram"
            );
        }
        let two_row = dtw(&x, &y, Band::Itakura);
        assert!((d - two_row).abs() < 1e-12);
    }

    #[test]
    fn constant_shift_costs_scale_with_path() {
        // x constant 0, y constant 1, same length n: every matched pair
        // costs 1, best path is the diagonal: DTW = √n.
        for n in [1usize, 4, 16] {
            let x = vec![0.0; n];
            let y = vec![1.0; n];
            assert!(close(dtw(&x, &y, Band::Full), (n as f64).sqrt()));
        }
    }
}
