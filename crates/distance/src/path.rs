use std::fmt;

/// A DTW warping path: the alignment `(i, j)` pairs between two sequences.
///
/// The paper's visual analytics hinge on this object (§3.4): the Multiple
/// Lines chart draws dotted links between warped points, so the engine
/// returns the path alongside every match. Pairs are stored in ascending
/// order from `(0, 0)` to `(n−1, m−1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpingPath {
    pairs: Vec<(u32, u32)>,
}

impl WarpingPath {
    /// Wrap a pair list. Callers are expected to produce valid paths; use
    /// [`WarpingPath::is_valid`] in tests.
    pub fn new(pairs: Vec<(u32, u32)>) -> Self {
        WarpingPath { pairs }
    }

    /// The trivial diagonal path for two sequences of equal length `n`.
    pub fn diagonal(n: usize) -> Self {
        WarpingPath {
            pairs: (0..n as u32).map(|i| (i, i)).collect(),
        }
    }

    /// The aligned index pairs in order.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Number of alignment pairs (path length).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True for the empty path.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Validity for sequences of lengths `n` and `m`: starts at `(0,0)`,
    /// ends at `(n−1, m−1)`, and each step advances by `(0,1)`, `(1,0)` or
    /// `(1,1)`.
    pub fn is_valid(&self, n: usize, m: usize) -> bool {
        if n == 0 || m == 0 {
            return self.pairs.is_empty();
        }
        let Some(&first) = self.pairs.first() else {
            return false;
        };
        let Some(&last) = self.pairs.last() else {
            return false;
        };
        if first != (0, 0) || last != (n as u32 - 1, m as u32 - 1) {
            return false;
        }
        self.pairs.windows(2).all(|w| {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            let di = i1.wrapping_sub(i0);
            let dj = j1.wrapping_sub(j0);
            (di == 0 && dj == 1) || (di == 1 && dj == 0) || (di == 1 && dj == 1)
        })
    }

    /// Cost of this path between `x` and `y` under the L2 step cost
    /// (square root of the summed squared differences along the path).
    /// By definition `DTW(x, y) ≤ path.cost(x, y)` for any valid path.
    pub fn cost(&self, x: &[f64], y: &[f64]) -> f64 {
        self.pairs
            .iter()
            .map(|&(i, j)| {
                let d = x[i as usize] - y[j as usize];
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Largest number of times any single index of the *second* sequence
    /// is matched — the warping multiplicity `W` in the group bound
    /// (DESIGN.md §2.2).
    pub fn max_multiplicity_right(&self) -> usize {
        let mut best = 0usize;
        let mut run = 0usize;
        let mut prev = u32::MAX;
        for &(_, j) in &self.pairs {
            if j == prev {
                run += 1;
            } else {
                run = 1;
                prev = j;
            }
            best = best.max(run);
        }
        best
    }
}

impl fmt::Display for WarpingPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path[{} pairs]", self.pairs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_is_valid_and_costs_like_ed() {
        let p = WarpingPath::diagonal(3);
        assert!(p.is_valid(3, 3));
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 2.0, 2.0];
        assert!((p.cost(&x, &y) - 1.0).abs() < 1e-12);
        assert_eq!(p.max_multiplicity_right(), 1);
    }

    #[test]
    fn validity_rejects_bad_paths() {
        assert!(!WarpingPath::new(vec![(0, 1), (1, 1)]).is_valid(2, 2)); // bad start
        assert!(!WarpingPath::new(vec![(0, 0)]).is_valid(2, 2)); // bad end
        assert!(!WarpingPath::new(vec![(0, 0), (2, 1)]).is_valid(3, 2)); // jump
        assert!(!WarpingPath::new(vec![(0, 0), (0, 0)]).is_valid(1, 1)); // no-op step
        assert!(WarpingPath::new(vec![]).is_valid(0, 0));
        assert!(!WarpingPath::new(vec![]).is_valid(1, 1));
    }

    #[test]
    fn multiplicity_counts_repeats() {
        let p = WarpingPath::new(vec![(0, 0), (1, 0), (2, 0), (3, 1)]);
        assert!(p.is_valid(4, 2));
        assert_eq!(p.max_multiplicity_right(), 3);
        assert_eq!(WarpingPath::new(vec![]).max_multiplicity_right(), 0);
    }
}
