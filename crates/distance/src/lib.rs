//! # onex-distance — the two distances whose "marriage" powers ONEX
//!
//! ONEX's central idea (paper §3.2) is to *construct* its base with the
//! cheap Euclidean distance and *explore* it with the robust-but-expensive
//! Dynamic Time Warping distance, justified by a triangle-inequality bridge
//! between the two. This crate provides both distances and the bridge:
//!
//! * [`mod@ed`] — Euclidean distance: plain, squared, early-abandoning, and
//!   length-normalised variants.
//! * [`mod@dtw`] — DTW with optional Sakoe–Chiba band, early abandonment with
//!   cumulative lower bounds (the UCR Suite trick), and warping-path
//!   recovery for the visual analytics layer.
//! * [`envelope`] — Lemire streaming min/max envelopes in O(n).
//! * [`lb`] — lower bounds for DTW: LB_Kim(FL) and LB_Keogh, both
//!   early-abandoning, with per-position cumulative bounds.
//! * [`bounds`] — the ED↔DTW bridge (DESIGN.md §2.2): `DTW ≤ ED` for equal
//!   lengths, and the group bound
//!   `|DTW(q,s) − DTW(q,r)| ≤ √W · ED(r,s)` that licenses exploring group
//!   representatives instead of raw data.
//! * [`mod@paa`] — Piecewise Aggregate Approximation and coarse-resolution
//!   DTW estimates.
//! * [`iddtw`] — Iterative Deepening DTW (paper reference \[3\]):
//!   coarse-to-fine nearest-neighbour search with a trained per-level
//!   error model.
//! * [`kernels`] — the shared inner loops behind all of the above, with
//!   runtime-feature-detected SIMD (SSE2/AVX2) and a scalar reference.
//! * [`sketch`] — quantised-PAA sketches and the L0 prefilter lower
//!   bound that rejects candidates before any f64 work.
//!
//! ## Conventions
//!
//! Every distance in this crate is the **square root of summed squared
//! differences** (the L2 family), so ED and DTW are directly comparable —
//! that comparability is exactly what the ONEX theorems need. `_sq`
//! variants expose the pre-root value for hot paths. All functions document
//! finite input as a precondition; NaN poisons results rather than
//! panicking, matching `f64` semantics.

// `kernels` needs `core::arch` intrinsics; unsafe is denied everywhere
// else and scoped to that module by an explicit allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod dtw;
pub mod ed;
pub mod envelope;
pub mod iddtw;
pub mod kernels;
pub mod lb;
pub mod paa;
mod path;
pub mod sketch;

pub use dtw::{dtw, dtw_early_abandon, dtw_sq, dtw_with_path, Band};
pub use ed::{ed, ed_early_abandon_sq, ed_sq};
pub use envelope::Envelope;
pub use iddtw::{IddtwModel, IddtwStats};
pub use kernels::KernelLevel;
pub use paa::{dtw_paa, paa};
pub use path::WarpingPath;
pub use sketch::{QuerySketch, SketchParams, SKETCH_STRIDE};

/// The infinite distance used as "no bound yet" by early-abandoning code.
pub const INF: f64 = f64::INFINITY;
