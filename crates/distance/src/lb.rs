//! Lower bounds for DTW.
//!
//! A lower bound that is cheap to compute lets the query processor discard
//! a candidate without ever running the O(n·m) DP — the paper's "early
//! pruning of unpromising candidates" (§3.3). All bounds here return
//! **squared** values so they compose with the squared DP and the UCR
//! cascade without intermediate square roots.
//!
//! Soundness: for every function `f` here and every pair it accepts,
//! `f(x, y) ≤ dtw_sq(x, y, band)` for the band the bound was built for.
//! Property tests in `tests/` hammer on this.

use crate::envelope::Envelope;

/// LB_Kim(FL): bound from the first and last points.
///
/// Any warping path must match `x[0]` with `y[0]` and `x[n−1]` with
/// `y[m−1]`, so those two squared differences always appear in the DTW
/// cost. The classic UCR refinement also folds in the second and
/// second-to-last pairs when that stays sound: the cheapest way a path can
/// cover `x[1]` is against `y[0]`, `y[1]` or `y[2]` (and symmetrically at
/// the end), so the minimum over those is also unavoidable — provided the
/// sequences are long enough that the corner pairs are distinct cells.
///
/// Works for unequal lengths. O(1).
///
/// # Panics
/// Panics on empty input.
pub fn lb_kim_fl_sq(x: &[f64], y: &[f64]) -> f64 {
    assert!(!x.is_empty() && !y.is_empty(), "LB_Kim of empty sequence");
    let n = x.len();
    let m = y.len();
    let sq = |a: f64, b: f64| (a - b) * (a - b);
    let mut lb = sq(x[0], y[0]);
    if n > 1 && m > 1 {
        lb += sq(x[n - 1], y[m - 1]);
    }
    // Second-point refinements need at least 4 points on each side so the
    // front and back corner regions cannot overlap on any path.
    if n >= 4 && m >= 4 {
        let front = sq(x[1], y[0]).min(sq(x[1], y[1])).min(sq(x[0], y[1]));
        lb += front;
        let back = sq(x[n - 2], y[m - 1])
            .min(sq(x[n - 2], y[m - 2]))
            .min(sq(x[n - 1], y[m - 2]));
        lb += back;
    }
    lb
}

/// LB_Keogh: squared distance from `x` to the envelope of the other
/// sequence, i.e. `Σ max(x_i − upper_i, lower_i − x_i, 0)²`.
///
/// Sound for equal-length sequences when `env` was built with the same
/// band radius used for DTW: a banded warping path can only match `x[i]`
/// against values inside `[lower[i], upper[i]]`.
///
/// Abandons (returns `f64::INFINITY`) once the partial sum exceeds
/// `ub_sq`.
///
/// # Panics
/// Panics when `x.len() != env.len()`.
pub fn lb_keogh_sq(x: &[f64], env: &Envelope, ub_sq: f64) -> f64 {
    assert_eq!(x.len(), env.len(), "LB_Keogh requires equal lengths");
    let mut acc = 0.0;
    for ((&v, &lo), &hi) in x.iter().zip(&env.lower).zip(&env.upper) {
        let d = if v > hi {
            v - hi
        } else if v < lo {
            lo - v
        } else {
            continue;
        };
        acc += d * d;
        if acc > ub_sq {
            return f64::INFINITY;
        }
    }
    acc
}

/// LB_Keogh with per-position contributions, for the UCR cascade.
///
/// Returns `(total, contrib)` where `contrib[i]` is position `i`'s squared
/// exceedance. The caller turns `contrib` into the suffix-sum cumulative
/// bound fed to [`crate::dtw::dtw_early_abandon_sq_with_cb`].
///
/// # Panics
/// Panics when `x.len() != env.len()`.
pub fn lb_keogh_with_contrib(x: &[f64], env: &Envelope) -> (f64, Vec<f64>) {
    assert_eq!(x.len(), env.len(), "LB_Keogh requires equal lengths");
    let mut contrib = vec![0.0; x.len()];
    let mut acc = 0.0;
    for (i, ((&v, &lo), &hi)) in x.iter().zip(&env.lower).zip(&env.upper).enumerate() {
        let d = if v > hi {
            v - hi
        } else if v < lo {
            lo - v
        } else {
            continue;
        };
        contrib[i] = d * d;
        acc += d * d;
    }
    (acc, contrib)
}

/// Suffix-sum a contribution vector into the `n+1`-entry cumulative bound
/// expected by the DTW early-abandonment hook: `cb[i] = Σ_{k≥i} contrib[k]`,
/// `cb[n] = 0`.
pub fn cumulative_bound(contrib: &[f64]) -> Vec<f64> {
    let n = contrib.len();
    let mut cb = vec![0.0; n + 1];
    for i in (0..n).rev() {
        cb[i] = cb[i + 1] + contrib[i];
    }
    cb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::{dtw_sq, Band};

    #[test]
    fn kim_fl_is_a_lower_bound() {
        let cases = [
            (vec![1.0, 5.0, 2.0, 0.0, 3.0], vec![0.0, 4.0, 1.0, 2.0, 2.0]),
            (vec![1.0, 2.0], vec![3.0, 4.0, 5.0]),
            (vec![0.0], vec![7.0]),
            (
                vec![-1.0, 0.0, 1.0, 2.0, 3.0, 4.0],
                vec![4.0, 3.0, 2.0, 1.0],
            ),
        ];
        for (x, y) in &cases {
            let lb = lb_kim_fl_sq(x, y);
            let d = dtw_sq(x, y, Band::Full);
            assert!(lb <= d + 1e-12, "lb {lb} > dtw {d} for {x:?} vs {y:?}");
        }
    }

    #[test]
    fn kim_fl_exact_for_single_points() {
        assert_eq!(lb_kim_fl_sq(&[2.0], &[5.0]), 9.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn kim_fl_rejects_empty() {
        lb_kim_fl_sq(&[], &[1.0]);
    }

    #[test]
    fn keogh_is_a_lower_bound_for_banded_dtw() {
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4).sin() * 2.0).collect();
        let y: Vec<f64> = (0..24)
            .map(|i| (i as f64 * 0.4 + 0.8).cos() * 2.0)
            .collect();
        for r in [0usize, 1, 3, 8, 24] {
            let env = Envelope::build(&y, r);
            let lb = lb_keogh_sq(&x, &env, f64::INFINITY);
            let d = dtw_sq(&x, &y, Band::SakoeChiba(r));
            assert!(lb <= d + 1e-9, "r={r}: lb {lb} > dtw {d}");
        }
    }

    #[test]
    fn keogh_zero_inside_envelope() {
        let y = [1.0, 2.0, 3.0, 2.0, 1.0];
        let env = Envelope::build(&y, 2);
        // y itself is inside its own envelope.
        assert_eq!(lb_keogh_sq(&y, &env, f64::INFINITY), 0.0);
    }

    #[test]
    fn keogh_early_abandons() {
        let y = [0.0; 16];
        let env = Envelope::build(&y, 1);
        let x = [10.0; 16];
        assert_eq!(lb_keogh_sq(&x, &env, 50.0), f64::INFINITY);
        // At the boundary it keeps going ("exceeds" semantics).
        let x1 = {
            let mut v = [0.0; 16];
            v[0] = 5.0;
            v
        };
        assert_eq!(lb_keogh_sq(&x1, &env, 25.0), 25.0);
    }

    #[test]
    fn contrib_sums_to_total_and_cb_is_suffix_sum() {
        let y = [0.0, 1.0, 0.0, -1.0, 0.0, 1.0];
        let x = [2.0, 1.0, -2.0, -1.0, 0.5, 3.0];
        let env = Envelope::build(&y, 1);
        let (total, contrib) = lb_keogh_with_contrib(&x, &env);
        assert!((total - contrib.iter().sum::<f64>()).abs() < 1e-12);
        assert!((total - lb_keogh_sq(&x, &env, f64::INFINITY)).abs() < 1e-12);
        let cb = cumulative_bound(&contrib);
        assert_eq!(cb.len(), x.len() + 1);
        assert_eq!(cb[x.len()], 0.0);
        assert!((cb[0] - total).abs() < 1e-12);
        for i in 0..x.len() {
            assert!(cb[i] + 1e-15 >= cb[i + 1], "cb non-increasing");
            assert!((cb[i] - cb[i + 1] - contrib[i]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn keogh_length_mismatch_panics() {
        let env = Envelope::build(&[1.0, 2.0], 1);
        lb_keogh_sq(&[1.0], &env, f64::INFINITY);
    }
}
