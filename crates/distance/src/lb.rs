//! Lower bounds for DTW.
//!
//! A lower bound that is cheap to compute lets the query processor discard
//! a candidate without ever running the O(n·m) DP — the paper's "early
//! pruning of unpromising candidates" (§3.3). All bounds here return
//! **squared** values so they compose with the squared DP and the UCR
//! cascade without intermediate square roots.
//!
//! Soundness: for every function `f` here and every pair it accepts,
//! `f(x, y) ≤ dtw_sq(x, y, band)` for the band the bound was built for.
//! Property tests in `tests/` hammer on this.

use crate::envelope::Envelope;
use crate::kernels::{self, EnvAffine};

/// LB_Kim(FL): bound from the first and last points.
///
/// Any warping path must match `x[0]` with `y[0]` and `x[n−1]` with
/// `y[m−1]`, so those two squared differences always appear in the DTW
/// cost. The classic UCR refinement also folds in the second and
/// second-to-last pairs when that stays sound: the cheapest way a path can
/// cover `x[1]` is against `y[0]`, `y[1]` or `y[2]` (and symmetrically at
/// the end), so the minimum over those is also unavoidable — provided the
/// sequences are long enough that the corner pairs are distinct cells.
///
/// Works for unequal lengths. O(1).
///
/// # Panics
/// Panics on empty input.
pub fn lb_kim_fl_sq(x: &[f64], y: &[f64]) -> f64 {
    assert!(!x.is_empty() && !y.is_empty(), "LB_Kim of empty sequence");
    let m = y.len();
    let (y1, ym2) = if m >= 4 { (y[1], y[m - 2]) } else { (0.0, 0.0) };
    lb_kim_fl_sq_corners(x, m, y[0], y1, ym2, y[m - 1], f64::INFINITY)
}

/// [`lb_kim_fl_sq`] given only the candidate side's four corner values —
/// the shared core both the ONEX cascade and the UCR Suite scan call, so
/// the UCR path can z-normalise just the corners instead of the whole
/// window. `y1`/`ym2` are only read when both lengths are ≥ 4 (pass
/// anything otherwise); abandons (returns `f64::INFINITY`) once the
/// partial bound exceeds `ub_sq`.
///
/// # Panics
/// Panics on an empty `x` or `m == 0`.
pub fn lb_kim_fl_sq_corners(
    x: &[f64],
    m: usize,
    y0: f64,
    y1: f64,
    ym2: f64,
    ym1: f64,
    ub_sq: f64,
) -> f64 {
    assert!(!x.is_empty() && m > 0, "LB_Kim of empty sequence");
    let n = x.len();
    let sq = |a: f64, b: f64| (a - b) * (a - b);
    let mut lb = sq(x[0], y0);
    if n > 1 && m > 1 {
        lb += sq(x[n - 1], ym1);
    }
    if lb > ub_sq {
        return f64::INFINITY;
    }
    // Second-point refinements need at least 4 points on each side so the
    // front and back corner regions cannot overlap on any path.
    if n >= 4 && m >= 4 {
        let front = sq(x[1], y0).min(sq(x[1], y1)).min(sq(x[0], y1));
        lb += front;
        if lb > ub_sq {
            return f64::INFINITY;
        }
        let back = sq(x[n - 2], ym1)
            .min(sq(x[n - 2], ym2))
            .min(sq(x[n - 1], ym2));
        lb += back;
        if lb > ub_sq {
            return f64::INFINITY;
        }
    }
    lb
}

/// LB_Keogh: squared distance from `x` to the envelope of the other
/// sequence, i.e. `Σ max(x_i − upper_i, lower_i − x_i, 0)²`.
///
/// Sound for equal-length sequences when `env` was built with the same
/// band radius used for DTW: a banded warping path can only match `x[i]`
/// against values inside `[lower[i], upper[i]]`.
///
/// Abandons (returns `f64::INFINITY`) once the partial sum exceeds
/// `ub_sq`.
///
/// # Panics
/// Panics when `x.len() != env.len()`.
pub fn lb_keogh_sq(x: &[f64], env: &Envelope, ub_sq: f64) -> f64 {
    assert_eq!(x.len(), env.len(), "LB_Keogh requires equal lengths");
    kernels::env_excess_sq(x, &env.lower, &env.upper, EnvAffine::IDENTITY, ub_sq)
}

/// LB_Keogh with per-position contributions, for the UCR cascade.
///
/// Resizes `contrib` to `x.len()` (reusing its allocation across
/// candidates) and fills `contrib[i]` with position `i`'s squared
/// exceedance, returning the total. The caller turns `contrib` into the
/// suffix-sum cumulative bound fed to
/// [`crate::dtw::dtw_early_abandon_sq_with_cb`].
///
/// # Panics
/// Panics when `x.len() != env.len()`.
pub fn lb_keogh_with_contrib(x: &[f64], env: &Envelope, contrib: &mut Vec<f64>) -> f64 {
    assert_eq!(x.len(), env.len(), "LB_Keogh requires equal lengths");
    contrib.clear();
    contrib.resize(x.len(), 0.0);
    kernels::env_excess_contrib(
        x,
        &env.lower,
        &env.upper,
        EnvAffine::IDENTITY,
        f64::INFINITY,
        contrib,
    )
}

/// The UCR "EQ" bound: LB_Keogh of the *z-normalised* candidate window
/// against the query's envelope, without materialising the normalised
/// window. `scale` is `1/σ` (pass `0` for a flat window, collapsing the
/// candidate to zeros). Fills `contrib` like [`lb_keogh_with_contrib`]
/// and abandons past `ub_sq` (tail of `contrib` is then unspecified).
///
/// # Panics
/// Panics when the window, envelope, and `contrib` lengths disagree.
pub fn lb_keogh_znorm_sq(
    window: &[f64],
    mean: f64,
    scale: f64,
    env: &Envelope,
    ub_sq: f64,
    contrib: &mut [f64],
) -> f64 {
    assert_eq!(window.len(), env.len(), "LB_Keogh requires equal lengths");
    kernels::env_excess_contrib(
        window,
        &env.lower,
        &env.upper,
        EnvAffine::znorm_x(mean, scale),
        ub_sq,
        contrib,
    )
}

/// The UCR "EC" bound: LB_Keogh of the query against a *z-normalised
/// window of the candidate's envelope* (raw `lower`/`upper` slices over
/// the full-series envelope), without materialising the normalised
/// envelope. `scale` is `1/σ` (pass `0` for a flat window, collapsing
/// the envelope to zeros). Fills `contrib` like
/// [`lb_keogh_with_contrib`] and abandons past `ub_sq`.
///
/// # Panics
/// Panics when the query, envelope-window, and `contrib` lengths
/// disagree.
pub fn lb_keogh_env_znorm_sq(
    query: &[f64],
    lower: &[f64],
    upper: &[f64],
    mean: f64,
    scale: f64,
    ub_sq: f64,
    contrib: &mut [f64],
) -> f64 {
    kernels::env_excess_contrib(
        query,
        lower,
        upper,
        EnvAffine::znorm_env(mean, scale),
        ub_sq,
        contrib,
    )
}

/// Suffix-sum a contribution vector into the `n+1`-entry cumulative bound
/// expected by the DTW early-abandonment hook: `cb[i] = Σ_{k≥i} contrib[k]`,
/// `cb[n] = 0`.
pub fn cumulative_bound(contrib: &[f64]) -> Vec<f64> {
    let n = contrib.len();
    let mut cb = vec![0.0; n + 1];
    for i in (0..n).rev() {
        cb[i] = cb[i + 1] + contrib[i];
    }
    cb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::{dtw_sq, Band};

    #[test]
    fn kim_fl_is_a_lower_bound() {
        let cases = [
            (vec![1.0, 5.0, 2.0, 0.0, 3.0], vec![0.0, 4.0, 1.0, 2.0, 2.0]),
            (vec![1.0, 2.0], vec![3.0, 4.0, 5.0]),
            (vec![0.0], vec![7.0]),
            (
                vec![-1.0, 0.0, 1.0, 2.0, 3.0, 4.0],
                vec![4.0, 3.0, 2.0, 1.0],
            ),
        ];
        for (x, y) in &cases {
            let lb = lb_kim_fl_sq(x, y);
            let d = dtw_sq(x, y, Band::Full);
            assert!(lb <= d + 1e-12, "lb {lb} > dtw {d} for {x:?} vs {y:?}");
        }
    }

    #[test]
    fn kim_fl_exact_for_single_points() {
        assert_eq!(lb_kim_fl_sq(&[2.0], &[5.0]), 9.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn kim_fl_rejects_empty() {
        lb_kim_fl_sq(&[], &[1.0]);
    }

    #[test]
    fn keogh_is_a_lower_bound_for_banded_dtw() {
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4).sin() * 2.0).collect();
        let y: Vec<f64> = (0..24)
            .map(|i| (i as f64 * 0.4 + 0.8).cos() * 2.0)
            .collect();
        for r in [0usize, 1, 3, 8, 24] {
            let env = Envelope::build(&y, r);
            let lb = lb_keogh_sq(&x, &env, f64::INFINITY);
            let d = dtw_sq(&x, &y, Band::SakoeChiba(r));
            assert!(lb <= d + 1e-9, "r={r}: lb {lb} > dtw {d}");
        }
    }

    #[test]
    fn keogh_zero_inside_envelope() {
        let y = [1.0, 2.0, 3.0, 2.0, 1.0];
        let env = Envelope::build(&y, 2);
        // y itself is inside its own envelope.
        assert_eq!(lb_keogh_sq(&y, &env, f64::INFINITY), 0.0);
    }

    #[test]
    fn keogh_early_abandons() {
        let y = [0.0; 16];
        let env = Envelope::build(&y, 1);
        let x = [10.0; 16];
        assert_eq!(lb_keogh_sq(&x, &env, 50.0), f64::INFINITY);
        // At the boundary it keeps going ("exceeds" semantics).
        let x1 = {
            let mut v = [0.0; 16];
            v[0] = 5.0;
            v
        };
        assert_eq!(lb_keogh_sq(&x1, &env, 25.0), 25.0);
    }

    #[test]
    fn contrib_sums_to_total_and_cb_is_suffix_sum() {
        let y = [0.0, 1.0, 0.0, -1.0, 0.0, 1.0];
        let x = [2.0, 1.0, -2.0, -1.0, 0.5, 3.0];
        let env = Envelope::build(&y, 1);
        let mut contrib = Vec::new();
        let total = lb_keogh_with_contrib(&x, &env, &mut contrib);
        assert!((total - contrib.iter().sum::<f64>()).abs() < 1e-12);
        assert!((total - lb_keogh_sq(&x, &env, f64::INFINITY)).abs() < 1e-12);
        let cb = cumulative_bound(&contrib);
        assert_eq!(cb.len(), x.len() + 1);
        assert_eq!(cb[x.len()], 0.0);
        assert!((cb[0] - total).abs() < 1e-12);
        for i in 0..x.len() {
            assert!(cb[i] + 1e-15 >= cb[i + 1], "cb non-increasing");
            assert!((cb[i] - cb[i + 1] - contrib[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn znorm_variants_match_materialised_normalisation() {
        let window = [3.0, 5.0, 4.0, 6.0, 2.0, 4.5, 3.5, 5.5];
        let n = window.len();
        let mean = window.iter().sum::<f64>() / n as f64;
        let var = window.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let scale = 1.0 / var.sqrt();
        let q = [0.2, -0.4, 0.9, -1.1, 0.0, 0.6, -0.3, 0.1];
        let env_q = Envelope::build(&q, 1);

        // EQ: z-normalising the window by hand must give the same bound.
        let zw: Vec<f64> = window.iter().map(|v| (v - mean) * scale).collect();
        let mut want_c = Vec::new();
        let want = lb_keogh_with_contrib(&zw, &env_q, &mut want_c);
        let mut got_c = vec![0.0; n];
        let got = lb_keogh_znorm_sq(&window, mean, scale, &env_q, f64::INFINITY, &mut got_c);
        assert!((got - want).abs() < 1e-9 * want.max(1.0));
        for (a, b) in got_c.iter().zip(&want_c) {
            assert!((a - b).abs() < 1e-9, "contrib {a} vs {b}");
        }

        // EC: z-normalising the envelope window by hand, likewise.
        let env_w = Envelope::build(&window, 1);
        let zlo: Vec<f64> = env_w.lower.iter().map(|v| (v - mean) * scale).collect();
        let zhi: Vec<f64> = env_w.upper.iter().map(|v| (v - mean) * scale).collect();
        let want_ec = kernels::env_excess_sq(&q, &zlo, &zhi, EnvAffine::IDENTITY, f64::INFINITY);
        let got_ec = lb_keogh_env_znorm_sq(
            &q,
            &env_w.lower,
            &env_w.upper,
            mean,
            scale,
            f64::INFINITY,
            &mut got_c,
        );
        assert!((got_ec - want_ec).abs() < 1e-9 * want_ec.max(1.0));
    }

    #[test]
    fn kim_corners_match_full_and_abandon() {
        let x = [1.0, 5.0, 2.0, 0.0, 3.0];
        let y = [0.0, 4.0, 1.0, 2.0, 2.0];
        let full = lb_kim_fl_sq(&x, &y);
        let m = y.len();
        let via = lb_kim_fl_sq_corners(&x, m, y[0], y[1], y[m - 2], y[m - 1], f64::INFINITY);
        assert_eq!(full, via);
        assert_eq!(
            lb_kim_fl_sq_corners(&x, m, y[0], y[1], y[m - 2], y[m - 1], full * 0.5),
            f64::INFINITY
        );
        // A bound met exactly does not abandon.
        assert_eq!(
            lb_kim_fl_sq_corners(&x, m, y[0], y[1], y[m - 2], y[m - 1], full),
            full
        );
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn keogh_length_mismatch_panics() {
        let env = Envelope::build(&[1.0, 2.0], 1);
        lb_keogh_sq(&[1.0], &env, f64::INFINITY);
    }
}
