//! Piecewise Aggregate Approximation (PAA) and coarse-resolution DTW.
//!
//! PAA replaces a series by per-segment means — the dimensionality
//! reduction behind iterative-deepening DTW ([`crate::iddtw`]) and a
//! close cousin of the DFT features used by the FRM baseline. A
//! length-n series at s segments costs O(n) to reduce and O(s²) to
//! compare under DTW, so coarse levels are orders of magnitude cheaper
//! than the raw computation.

use crate::dtw::{dtw_sq, Band};

/// PAA of `xs` at `segments` segments: segment `i` covers the index
/// range `[i·n/s, (i+1)·n/s)` and is summarised by its mean.
///
/// With `segments == xs.len()` this is the identity; with `segments == 1`
/// it is the global mean. Boundaries use integer arithmetic, so when `s`
/// does not divide `n` segment sizes differ by at most one.
///
/// # Panics
///
/// Panics if `segments` is zero or exceeds `xs.len()`.
pub fn paa(xs: &[f64], segments: usize) -> Vec<f64> {
    let n = xs.len();
    assert!(segments >= 1, "need at least one segment");
    assert!(segments <= n, "more segments than points");
    let mut out = Vec::with_capacity(segments);
    for i in 0..segments {
        let lo = i * n / segments;
        let hi = (i + 1) * n / segments;
        let sum: f64 = xs[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f64);
    }
    out
}

/// Coarse DTW estimate at a PAA resolution: DTW over the PAA sequences
/// with each squared step cost weighted by the mean segment length, so
/// the result is on the same scale as [`crate::dtw()`] on the raw series.
///
/// This is an **estimator**, not a bound: averaging can make two series
/// look closer or farther than they are (unlike the envelope-based
/// LB_Keogh in [`crate::lb`]). Iterative-deepening DTW compensates with
/// a learned error distribution — see [`crate::iddtw`].
///
/// # Panics
///
/// Panics under the same conditions as [`paa`] on either input.
pub fn dtw_paa(x: &[f64], y: &[f64], segments: usize, band: Band) -> f64 {
    let px = paa(x, segments.min(x.len()));
    let py = paa(y, segments.min(y.len()));
    let weight = (x.len() as f64 / px.len() as f64 + y.len() as f64 / py.len() as f64) / 2.0;
    (dtw_sq(&px, &py, band) * weight).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw;

    #[test]
    fn identity_at_full_resolution() {
        let xs = [1.0, 5.0, 2.0, 8.0];
        assert_eq!(paa(&xs, 4), xs.to_vec());
    }

    #[test]
    fn single_segment_is_mean() {
        let xs = [2.0, 4.0, 6.0];
        assert_eq!(paa(&xs, 1), vec![4.0]);
    }

    #[test]
    fn preserves_mean_when_divisible() {
        let xs: Vec<f64> = (0..12).map(|i| (i as f64 * 0.9).sin()).collect();
        let p = paa(&xs, 4);
        let m1: f64 = xs.iter().sum::<f64>() / 12.0;
        let m2: f64 = p.iter().sum::<f64>() / 4.0;
        assert!((m1 - m2).abs() < 1e-12);
    }

    #[test]
    fn uneven_lengths_are_covered() {
        // 7 points in 3 segments: (0..2), (2..4), (4..7).
        let xs = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        assert_eq!(paa(&xs, 3), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn constant_series_reduce_to_constant() {
        let xs = vec![7.0; 10];
        for s in 1..=10 {
            assert!(paa(&xs, s).iter().all(|&v| (v - 7.0).abs() < 1e-12));
        }
    }

    #[test]
    fn coarse_dtw_at_full_resolution_is_exact() {
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.4).sin()).collect();
        let y: Vec<f64> = (0..16).map(|i| (i as f64 * 0.4 + 0.8).sin()).collect();
        let exact = dtw(&x, &y, Band::Full);
        let coarse = dtw_paa(&x, &y, 16, Band::Full);
        assert!((exact - coarse).abs() < 1e-9);
    }

    #[test]
    fn coarse_dtw_tracks_exact_on_smooth_data() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin() * 3.0).collect();
        let y: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.2 + 0.5).sin() * 3.0)
            .collect();
        let exact = dtw(&x, &y, Band::Full);
        let coarse = dtw_paa(&x, &y, 16, Band::Full);
        // Smooth series: the estimate lands within a small factor. It can
        // overshoot because PAA smoothing removes the fine-grained
        // warping freedom that lets exact DTW absorb the phase shift.
        assert!(
            coarse < exact * 3.0 && coarse > exact * 0.25,
            "coarse {coarse} vs exact {exact}"
        );
    }

    #[test]
    #[should_panic(expected = "more segments than points")]
    fn rejects_oversampling() {
        paa(&[1.0, 2.0], 3);
    }
}
