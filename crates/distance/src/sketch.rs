//! Quantised-PAA sketches: the L0 prefilter tier of the pruning cascade.
//!
//! Every subsequence gets a fixed [`SKETCH_STRIDE`]-byte sketch — its
//! first/last values and per-segment min/max, quantised to `u8` levels —
//! stored contiguously per length group. At query time
//! [`QuerySketch::bound_sq`] turns one sketch into a sound squared DTW
//! lower bound using only the 24 cached bytes: no resolving of the raw
//! window, no O(n) floating-point pass. Most candidates die here, before
//! LB_Kim, LB_Keogh, or the DP ever see an `f64` of theirs.
//!
//! ## Soundness
//!
//! The candidate side is quantised **directionally**: segment minima
//! round *down* a level, maxima round *up* (verified post-hoc against
//! the raw value, so FP rounding in the quantiser can never flip the
//! direction). Dequantising therefore brackets the truth, and the two
//! parts of the bound each lower-bound squared DTW:
//!
//! * **Corner part** (LB_Kim shape): any warping path matches the
//!   query's first value against the candidate's first value, which lies
//!   inside the dequantised `[first_lo, first_hi]` interval — so the
//!   squared point-to-interval distance is unavoidable; likewise the
//!   last values (distinct DP cells whenever both lengths are ≥ 2, which
//!   ONEX's minimum subsequence length guarantees).
//! * **Segment part** (LB_Keogh shape): under a band of radius `r`, a
//!   candidate position in segment `i` can only be matched against query
//!   positions whose envelope (built at radius `r`) covers it; if the
//!   candidate's whole segment sits above the segment-wide envelope max
//!   `H_i` (or below the min `L_i`), every one of its `w_i` positions
//!   pays at least the squared gap.
//!
//! The two parts may double-count the corner cells, so they are combined
//! with `max`, not `+`. Appended values that fall outside the length
//! group's frozen quantiser range mark the sketch *invalid* (bound 0 —
//! never prunes), which keeps ingest sound without requantising the
//! group.

use crate::envelope::Envelope;

/// Number of PAA segments per sketch.
pub const SKETCH_SEGMENTS: usize = 8;

/// Bytes per sketch: 1 flag byte, 3 reserved, 4 corner levels,
/// [`SKETCH_SEGMENTS`] segment minima, [`SKETCH_SEGMENTS`] maxima.
pub const SKETCH_STRIDE: usize = 8 + 2 * SKETCH_SEGMENTS;

/// Highest quantisation level (levels are `0..=MAX_LEVEL`).
const MAX_LEVEL: i64 = u8::MAX as i64;

/// Flag bit: this sketch is a non-pruning placeholder (value out of the
/// quantiser's range, or non-finite).
const FLAG_INVALID: u8 = 1;

/// Byte offsets inside one sketch.
const OFF_FLAGS: usize = 0;
const OFF_FIRST_LO: usize = 4;
const OFF_FIRST_HI: usize = 5;
const OFF_LAST_LO: usize = 6;
const OFF_LAST_HI: usize = 7;
const OFF_SEG_MIN: usize = 8;
const OFF_SEG_MAX: usize = 8 + SKETCH_SEGMENTS;

/// The affine quantiser of one length group: level `l` represents the
/// value `vmin + l · step`. Frozen when the group first appears so
/// sketches stay comparable across appends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchParams {
    /// Value represented by level 0.
    pub vmin: f64,
    /// Value increment per level.
    pub step: f64,
}

impl SketchParams {
    /// Fit a quantiser to an observed value range, padded slightly so
    /// the observed extremes themselves quantise in-range. Degenerate
    /// ranges (empty data, non-finite extremes) fall back to a unit
    /// step around zero — every encode is then out-of-range and yields
    /// invalid (non-pruning) sketches, which is sound.
    pub fn fit(min: f64, max: f64) -> SketchParams {
        if !min.is_finite() || !max.is_finite() || min > max {
            return SketchParams {
                vmin: 0.0,
                step: 1.0,
            };
        }
        let pad = 1e-9 * (max - min).abs().max(1.0);
        let vmin = min - pad;
        let step = ((max + pad) - vmin) / MAX_LEVEL as f64;
        SketchParams {
            vmin,
            step: if step.is_finite() && step > 0.0 {
                step
            } else {
                1.0
            },
        }
    }

    /// The value level `l` dequantises to.
    #[inline]
    pub fn dequant(&self, level: u8) -> f64 {
        self.vmin + level as f64 * self.step
    }

    /// Largest level whose dequantised value is ≤ `v` (verified in f64,
    /// so `dequant(floor_level(v)) ≤ v` holds exactly). `None` when `v`
    /// is non-finite or out of range.
    fn floor_level(&self, v: f64) -> Option<u8> {
        if !v.is_finite() {
            return None;
        }
        let mut l = ((v - self.vmin) / self.step).floor() as i64;
        l = l.clamp(-1, MAX_LEVEL + 1);
        while l >= 0 && self.vmin + l as f64 * self.step > v {
            l -= 1;
        }
        while l < MAX_LEVEL && self.vmin + (l + 1) as f64 * self.step <= v {
            l += 1;
        }
        (0..=MAX_LEVEL).contains(&l).then_some(l as u8)
    }

    /// Smallest level whose dequantised value is ≥ `v` (verified:
    /// `dequant(ceil_level(v)) ≥ v` exactly). `None` when out of range.
    fn ceil_level(&self, v: f64) -> Option<u8> {
        if !v.is_finite() {
            return None;
        }
        let mut l = ((v - self.vmin) / self.step).ceil() as i64;
        l = l.clamp(-1, MAX_LEVEL + 1);
        while l <= MAX_LEVEL && self.vmin + l as f64 * self.step < v {
            l += 1;
        }
        while l > 0 && self.vmin + (l - 1) as f64 * self.step >= v {
            l -= 1;
        }
        (0..=MAX_LEVEL).contains(&l).then_some(l as u8)
    }
}

/// Half-open position range of segment `s` for a subsequence of length
/// `n` — the same partition on the query and candidate side.
#[inline]
fn segment_range(s: usize, n: usize) -> (usize, usize) {
    (s * n / SKETCH_SEGMENTS, (s + 1) * n / SKETCH_SEGMENTS)
}

/// Encode `values` into the [`SKETCH_STRIDE`] bytes at `out`. A value
/// outside the quantiser's range (possible for appended series — the
/// group's params are frozen) or non-finite yields the invalid
/// placeholder instead.
///
/// # Panics
/// Panics when `out` is not exactly [`SKETCH_STRIDE`] bytes.
pub fn encode_into(params: &SketchParams, values: &[f64], out: &mut [u8]) {
    assert_eq!(out.len(), SKETCH_STRIDE, "sketch slot has a fixed stride");
    out.fill(0);
    let n = values.len();
    let invalid = |out: &mut [u8]| out[OFF_FLAGS] = FLAG_INVALID;
    if n == 0 {
        return invalid(out);
    }
    let corners = [
        (OFF_FIRST_LO, OFF_FIRST_HI, values[0]),
        (OFF_LAST_LO, OFF_LAST_HI, values[n - 1]),
    ];
    for (off_lo, off_hi, v) in corners {
        match (params.floor_level(v), params.ceil_level(v)) {
            (Some(lo), Some(hi)) => {
                out[off_lo] = lo;
                out[off_hi] = hi;
            }
            _ => return invalid(out),
        }
    }
    for s in 0..SKETCH_SEGMENTS {
        let (a, b) = segment_range(s, n);
        if a >= b {
            // Empty segment (n < SKETCH_SEGMENTS): benign extremes; the
            // query side skips zero-weight segments.
            out[OFF_SEG_MIN + s] = 0;
            out[OFF_SEG_MAX + s] = u8::MAX;
            continue;
        }
        let seg = &values[a..b];
        let smin = seg.iter().cloned().fold(f64::INFINITY, f64::min);
        let smax = seg.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        match (params.floor_level(smin), params.ceil_level(smax)) {
            (Some(lo), Some(hi)) => {
                out[OFF_SEG_MIN + s] = lo;
                out[OFF_SEG_MAX + s] = hi;
            }
            _ => return invalid(out),
        }
    }
}

/// The query's precomputed side of the L0 bound for one length group:
/// segment-wide envelope extremes, segment weights, and the raw corner
/// values. Built once per [`crate::envelope::Envelope`] the cascade
/// already has; [`QuerySketch::bound_sq`] then costs a few dozen flops
/// per candidate over its 24 sketch bytes.
#[derive(Debug, Clone)]
pub struct QuerySketch {
    params: SketchParams,
    /// Per segment: (envelope max `H`, envelope min `L`, weight).
    segments: [(f64, f64, f64); SKETCH_SEGMENTS],
    q_first: f64,
    q_last: f64,
    len: usize,
}

impl QuerySketch {
    /// Build from the query and the envelope the LB_Keogh tier already
    /// built (same band radius — that is what makes the segment part
    /// sound). Candidates must have the same length as the query.
    ///
    /// # Panics
    /// Panics when the query is empty or the envelope length differs.
    pub fn new(query: &[f64], env: &Envelope, params: SketchParams) -> QuerySketch {
        let n = query.len();
        assert!(n > 0, "L0 sketch of an empty query");
        assert_eq!(env.len(), n, "envelope must cover the query");
        let mut segments = [(f64::NEG_INFINITY, f64::INFINITY, 0.0); SKETCH_SEGMENTS];
        for (s, slot) in segments.iter_mut().enumerate() {
            let (a, b) = segment_range(s, n);
            if a >= b {
                continue;
            }
            let h = env.upper[a..b]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            let l = env.lower[a..b]
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            *slot = (h, l, (b - a) as f64);
        }
        QuerySketch {
            params,
            segments,
            q_first: query[0],
            q_last: query[n - 1],
            len: n,
        }
    }

    /// Length of the query (and of every candidate this sketch bounds).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length query (never constructed; see `new`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sound squared DTW lower bound from one candidate sketch. Invalid
    /// sketches bound 0 (never prune).
    ///
    /// # Panics
    /// Panics when `sketch` is not exactly [`SKETCH_STRIDE`] bytes.
    pub fn bound_sq(&self, sketch: &[u8]) -> f64 {
        assert_eq!(sketch.len(), SKETCH_STRIDE, "sketch slot stride");
        if sketch[OFF_FLAGS] & FLAG_INVALID != 0 {
            return 0.0;
        }
        let p = &self.params;
        // Corner part: squared distance from each query corner to the
        // dequantised interval bracketing the candidate's corner value.
        let gap = |q: f64, lo: u8, hi: u8| (q - p.dequant(hi)).max(p.dequant(lo) - q).max(0.0);
        let d_first = gap(self.q_first, sketch[OFF_FIRST_LO], sketch[OFF_FIRST_HI]);
        let mut kim = d_first * d_first;
        if self.len > 1 {
            let d_last = gap(self.q_last, sketch[OFF_LAST_LO], sketch[OFF_LAST_HI]);
            kim += d_last * d_last;
        }
        // Segment part: weighted squared escape of the candidate's
        // dequantised [min, max] bracket from the segment-wide envelope.
        let mut seg_sq = 0.0;
        for (s, &(h, l, w)) in self.segments.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let c_lo = p.dequant(sketch[OFF_SEG_MIN + s]);
            let c_hi = p.dequant(sketch[OFF_SEG_MAX + s]);
            let e = (c_lo - h).max(l - c_hi).max(0.0);
            seg_sq += w * e * e;
        }
        // Both parts may charge the corner cells, so take the tighter
        // one rather than the unsound sum.
        kim.max(seg_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::{dtw_sq, Band};

    fn walk(n: usize, seed: u64) -> Vec<f64> {
        let mut v = Vec::with_capacity(n);
        let mut x = 0.0f64;
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            x += (state % 2000) as f64 / 1000.0 - 1.0;
            v.push(x);
        }
        v
    }

    fn fit_over(slices: &[&[f64]]) -> SketchParams {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in slices {
            for &v in *s {
                min = min.min(v);
                max = max.max(v);
            }
        }
        SketchParams::fit(min, max)
    }

    #[test]
    fn quantiser_brackets_values() {
        let p = SketchParams::fit(-3.0, 7.0);
        for v in [-3.0, -2.999, 0.0, 1.2345, 6.999, 7.0] {
            let lo = p.floor_level(v).unwrap();
            let hi = p.ceil_level(v).unwrap();
            assert!(p.dequant(lo) <= v, "floor {v}");
            assert!(p.dequant(hi) >= v, "ceil {v}");
            assert!(hi as i64 - lo as i64 <= 1, "adjacent levels for {v}");
        }
        assert!(p.floor_level(8.0).is_none(), "out of range");
        assert!(p.ceil_level(-4.0).is_none(), "out of range");
        assert!(p.floor_level(f64::NAN).is_none());
    }

    #[test]
    fn out_of_range_values_yield_non_pruning_sketch() {
        let p = SketchParams::fit(0.0, 1.0);
        let mut sk = [0u8; SKETCH_STRIDE];
        encode_into(&p, &[0.5, 99.0, 0.5, 0.5], &mut sk);
        assert_eq!(sk[OFF_FLAGS] & FLAG_INVALID, FLAG_INVALID);
        let q = [0.1, 0.2, 0.3, 0.4];
        let env = Envelope::build(&q, 1);
        let qs = QuerySketch::new(&q, &env, p);
        assert_eq!(qs.bound_sq(&sk), 0.0, "invalid sketches never prune");
    }

    #[test]
    fn bound_never_exceeds_banded_dtw_on_random_walks() {
        for n in [2usize, 5, 8, 16, 64, 96] {
            for seed in 0..12u64 {
                let q = walk(n, seed);
                let c = walk(n, seed + 100);
                let params = fit_over(&[&q, &c]);
                for r in [0usize, 1, n / 10 + 1, n] {
                    let env = Envelope::build(&q, r);
                    let qs = QuerySketch::new(&q, &env, params);
                    let mut sk = [0u8; SKETCH_STRIDE];
                    encode_into(&params, &c, &mut sk);
                    let lb = qs.bound_sq(&sk);
                    let d = dtw_sq(&q, &c, Band::SakoeChiba(r));
                    assert!(
                        lb <= d + 1e-9 * d.max(1.0),
                        "n={n} seed={seed} r={r}: L0 {lb} > dtw {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn bound_is_tight_enough_to_fire() {
        // A candidate far from the query must get a strictly positive
        // bound — otherwise the tier never prunes anything.
        let n = 64;
        let q: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let c: Vec<f64> = q.iter().map(|v| v + 50.0).collect();
        let params = fit_over(&[&q, &c]);
        let env = Envelope::build(&q, 4);
        let qs = QuerySketch::new(&q, &env, params);
        let mut sk = [0u8; SKETCH_STRIDE];
        encode_into(&params, &c, &mut sk);
        let lb = qs.bound_sq(&sk);
        assert!(lb > 1000.0, "distant candidate got a weak bound: {lb}");
        // And the query against itself must not be rejected.
        let mut own = [0u8; SKETCH_STRIDE];
        encode_into(&params, &q, &mut own);
        let self_lb = qs.bound_sq(&own);
        let self_d = dtw_sq(&q, &q, Band::SakoeChiba(4));
        assert!(self_lb <= self_d + 1e-9, "self bound {self_lb}");
    }

    #[test]
    fn degenerate_params_are_sound() {
        let p = SketchParams::fit(f64::NAN, 3.0);
        assert_eq!(p.step, 1.0);
        let mut sk = [0u8; SKETCH_STRIDE];
        // Constant data: range collapses but stays sound.
        let pc = SketchParams::fit(2.0, 2.0);
        encode_into(&pc, &[2.0, 2.0, 2.0], &mut sk);
        assert_eq!(sk[OFF_FLAGS] & FLAG_INVALID, 0);
        let q = [2.0, 2.0, 2.0];
        let env = Envelope::build(&q, 1);
        let qs = QuerySketch::new(&q, &env, pc);
        let lb = qs.bound_sq(&sk);
        assert!(lb <= 1e-9, "identical constants must not be pruned: {lb}");
    }
}
