//! Runtime-dispatched SIMD kernels for the distance hot loops.
//!
//! Every inner loop the pruning cascade spends its time in — squared-diff
//! accumulation (ED), envelope-exceedance accumulation (LB_Keogh and its
//! z-normalised UCR variants), the DTW row recurrence, and the envelope
//! min/max — lives here once, with a scalar reference implementation and
//! `core::arch::x86_64` SSE2/AVX2 paths selected **once** at startup via
//! [`level`] (CPUID feature detection, overridable with the
//! `ONEX_FORCE_SCALAR` environment variable for fallback testing).
//!
//! ## Exactness contract
//!
//! * [`dtw_row`] and [`sliding_minmax`] are **bit-exact** across levels:
//!   the row kernel only reassociates `min` with a common added constant
//!   (`min(a, b) + c == min(a + c, b + c)` exactly, since FP addition is
//!   monotone), and min/max of finite values is exact arithmetic.
//! * The accumulating kernels ([`sum_sq_diff`], [`sum_sq_diff_ea`],
//!   [`env_excess_sq`], …) sum in SIMD lanes and therefore round in a
//!   different order than the scalar reference — results agree to within
//!   a few ulps (property-tested at `1e-9` relative), and an
//!   early-abandon decision sitting exactly on that ulp boundary may
//!   differ between levels. Both outcomes are sound: the returned value
//!   is a correctly-rounded sum of the same terms either way.
//!
//! The `_at` variants take an explicit [`KernelLevel`] so benchmarks and
//! property tests can pin a path regardless of what [`level`] detected.
#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::sync::OnceLock;

/// Which instruction set the dispatched kernels run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelLevel {
    /// Portable scalar reference (always available, and the forced path
    /// under `ONEX_FORCE_SCALAR`).
    Scalar,
    /// 128-bit `core::arch::x86_64` path (2 doubles per op).
    Sse2,
    /// 256-bit `core::arch::x86_64` path (4 doubles per op).
    Avx2,
}

impl KernelLevel {
    /// Stable lowercase name (`"scalar"`, `"sse2"`, `"avx2"`) for
    /// reports, `/api/summary`, and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            KernelLevel::Scalar => "scalar",
            KernelLevel::Sse2 => "sse2",
            KernelLevel::Avx2 => "avx2",
        }
    }

    /// Every level this hardware can run, scalar first — what a bench
    /// sweeps, regardless of the `ONEX_FORCE_SCALAR` override honoured
    /// by [`level`].
    pub fn available() -> Vec<KernelLevel> {
        #[allow(unused_mut)]
        let mut v = vec![KernelLevel::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("sse2") {
                v.push(KernelLevel::Sse2);
            }
            if is_x86_feature_detected!("avx2") {
                v.push(KernelLevel::Avx2);
            }
        }
        v
    }
}

/// The level every dispatched kernel in this process uses, detected once
/// on first call: the widest supported x86-64 extension, unless the
/// `ONEX_FORCE_SCALAR` environment variable is set (to anything but `0`
/// or empty), which pins the scalar reference path.
pub fn level() -> KernelLevel {
    static LEVEL: OnceLock<KernelLevel> = OnceLock::new();
    *LEVEL.get_or_init(detect)
}

fn detect() -> KernelLevel {
    if std::env::var_os("ONEX_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0") {
        return KernelLevel::Scalar;
    }
    *KernelLevel::available()
        .last()
        .expect("scalar always present")
}

/// How many accumulated terms between early-abandon checks in the
/// accumulating kernels. Shared by every level so abandonment decisions
/// depend on the data, not the instruction set.
const EA_BLOCK: usize = 16;

// ---------------------------------------------------------------------
// Squared-diff accumulation (ED).
// ---------------------------------------------------------------------

/// `Σ (x_i − y_i)²` — the ED inner loop.
///
/// # Panics
/// Panics when lengths differ.
pub fn sum_sq_diff(x: &[f64], y: &[f64]) -> f64 {
    sum_sq_diff_ea_at(level(), x, y, f64::INFINITY)
}

/// [`sum_sq_diff`] that returns `f64::INFINITY` once a partial sum
/// *exceeds* `ub_sq` (checked every `EA_BLOCK` terms; a partial sum
/// equal to the bound keeps going).
///
/// # Panics
/// Panics when lengths differ.
pub fn sum_sq_diff_ea(x: &[f64], y: &[f64], ub_sq: f64) -> f64 {
    sum_sq_diff_ea_at(level(), x, y, ub_sq)
}

/// [`sum_sq_diff_ea`] on an explicit level (bench/property-test entry;
/// levels this build cannot run fall back to scalar).
///
/// # Panics
/// Panics when lengths differ.
pub fn sum_sq_diff_ea_at(l: KernelLevel, x: &[f64], y: &[f64], ub_sq: f64) -> f64 {
    assert_eq!(x.len(), y.len(), "ED requires equal lengths");
    match l {
        KernelLevel::Scalar => sum_sq_diff_scalar(x, y, ub_sq),
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Sse2 => unsafe { sum_sq_diff_sse2(x, y, ub_sq) },
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { sum_sq_diff_avx2(x, y, ub_sq) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => sum_sq_diff_scalar(x, y, ub_sq),
    }
}

fn sum_sq_diff_scalar(x: &[f64], y: &[f64], ub_sq: f64) -> f64 {
    let mut acc = 0.0;
    for (cx, cy) in x.chunks(EA_BLOCK).zip(y.chunks(EA_BLOCK)) {
        for (a, b) in cx.iter().zip(cy) {
            let d = a - b;
            acc += d * d;
        }
        if acc > ub_sq {
            return f64::INFINITY;
        }
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn sum_sq_diff_sse2(x: &[f64], y: &[f64], ub_sq: f64) -> f64 {
    use core::arch::x86_64::*;
    let n = x.len();
    let mut acc = 0.0f64;
    let mut i = 0;
    while i + EA_BLOCK <= n {
        let mut v = _mm_setzero_pd();
        let mut k = 0;
        while k < EA_BLOCK {
            let d = _mm_sub_pd(
                _mm_loadu_pd(x.as_ptr().add(i + k)),
                _mm_loadu_pd(y.as_ptr().add(i + k)),
            );
            v = _mm_add_pd(v, _mm_mul_pd(d, d));
            k += 2;
        }
        acc += hsum128(v);
        if acc > ub_sq {
            return f64::INFINITY;
        }
        i += EA_BLOCK;
    }
    while i < n {
        let d = x[i] - y[i];
        acc += d * d;
        i += 1;
    }
    if acc > ub_sq {
        return f64::INFINITY;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum_sq_diff_avx2(x: &[f64], y: &[f64], ub_sq: f64) -> f64 {
    use core::arch::x86_64::*;
    let n = x.len();
    let mut acc = 0.0f64;
    let mut i = 0;
    while i + EA_BLOCK <= n {
        let mut v = _mm256_setzero_pd();
        let mut k = 0;
        while k < EA_BLOCK {
            let d = _mm256_sub_pd(
                _mm256_loadu_pd(x.as_ptr().add(i + k)),
                _mm256_loadu_pd(y.as_ptr().add(i + k)),
            );
            v = _mm256_add_pd(v, _mm256_mul_pd(d, d));
            k += 4;
        }
        acc += hsum256(v);
        if acc > ub_sq {
            return f64::INFINITY;
        }
        i += EA_BLOCK;
    }
    while i < n {
        let d = x[i] - y[i];
        acc += d * d;
        i += 1;
    }
    if acc > ub_sq {
        return f64::INFINITY;
    }
    acc
}

// ---------------------------------------------------------------------
// Envelope exceedance (LB_Keogh and the UCR z-normalised variants).
// ---------------------------------------------------------------------

/// Affine views applied inside the envelope-exceedance kernels: the
/// sequence is read as `(x_i − x_sub) · x_mul` and the envelope as
/// `(e_i − e_sub) · e_mul` — the identity `(0, 1)` for the plain
/// LB_Keogh, the candidate's z-normalisation for the UCR EQ variant, and
/// the envelope's z-normalisation for the UCR EC variant. Using the
/// same subtract-then-multiply form as `znorm_with_moments` keeps the
/// bound consistent with the values the DTW stage will actually see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvAffine {
    /// Offset subtracted from each sequence value.
    pub x_sub: f64,
    /// Scale applied to each offset sequence value.
    pub x_mul: f64,
    /// Offset subtracted from each envelope value.
    pub e_sub: f64,
    /// Scale applied to each offset envelope value.
    pub e_mul: f64,
}

impl EnvAffine {
    /// No transformation on either side.
    pub const IDENTITY: EnvAffine = EnvAffine {
        x_sub: 0.0,
        x_mul: 1.0,
        e_sub: 0.0,
        e_mul: 1.0,
    };

    /// Z-normalise the sequence side with the given moments (`scale`
    /// should be `1/σ`, or `0` for a flat window — matching the
    /// `STD_FLOOR` convention of collapsing flat windows to zero).
    pub fn znorm_x(mean: f64, scale: f64) -> EnvAffine {
        EnvAffine {
            x_sub: mean,
            x_mul: scale,
            ..EnvAffine::IDENTITY
        }
    }

    /// Z-normalise the envelope side with the given moments.
    pub fn znorm_env(mean: f64, scale: f64) -> EnvAffine {
        EnvAffine {
            e_sub: mean,
            e_mul: scale,
            ..EnvAffine::IDENTITY
        }
    }
}

/// `Σ max(x'_i − upper'_i, lower'_i − x'_i, 0)²` under the affine views,
/// abandoning (returns `f64::INFINITY`) once a partial sum exceeds
/// `ub_sq` — the LB_Keogh inner loop.
///
/// # Panics
/// Panics when the three slices have different lengths.
pub fn env_excess_sq(x: &[f64], lower: &[f64], upper: &[f64], aff: EnvAffine, ub_sq: f64) -> f64 {
    env_excess_sq_at(level(), x, lower, upper, aff, ub_sq)
}

/// [`env_excess_sq`] on an explicit level.
///
/// # Panics
/// Panics when the three slices have different lengths.
pub fn env_excess_sq_at(
    l: KernelLevel,
    x: &[f64],
    lower: &[f64],
    upper: &[f64],
    aff: EnvAffine,
    ub_sq: f64,
) -> f64 {
    assert!(
        x.len() == lower.len() && x.len() == upper.len(),
        "LB_Keogh requires equal lengths"
    );
    match l {
        KernelLevel::Scalar => env_excess_scalar(x, lower, upper, aff, ub_sq, None),
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Sse2 => unsafe { env_excess_sse2(x, lower, upper, aff, ub_sq, None) },
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { env_excess_avx2(x, lower, upper, aff, ub_sq, None) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => env_excess_scalar(x, lower, upper, aff, ub_sq, None),
    }
}

/// [`env_excess_sq`] that also records each position's squared
/// exceedance in `contrib` (every position is written, zeros included),
/// for the cumulative bound the UCR cascade feeds into the DTW DP. On
/// an abandoned (`INFINITY`) return the tail of `contrib` is
/// unspecified — callers only use it for candidates that survive.
///
/// # Panics
/// Panics when the slices (including `contrib`) have different lengths.
pub fn env_excess_contrib(
    x: &[f64],
    lower: &[f64],
    upper: &[f64],
    aff: EnvAffine,
    ub_sq: f64,
    contrib: &mut [f64],
) -> f64 {
    assert!(
        x.len() == lower.len() && x.len() == upper.len() && x.len() == contrib.len(),
        "LB_Keogh requires equal lengths"
    );
    match level() {
        KernelLevel::Scalar => env_excess_scalar(x, lower, upper, aff, ub_sq, Some(contrib)),
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Sse2 => unsafe { env_excess_sse2(x, lower, upper, aff, ub_sq, Some(contrib)) },
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { env_excess_avx2(x, lower, upper, aff, ub_sq, Some(contrib)) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => env_excess_scalar(x, lower, upper, aff, ub_sq, Some(contrib)),
    }
}

fn env_excess_scalar(
    x: &[f64],
    lower: &[f64],
    upper: &[f64],
    aff: EnvAffine,
    ub_sq: f64,
    mut contrib: Option<&mut [f64]>,
) -> f64 {
    let mut acc = 0.0;
    let mut i = 0;
    let n = x.len();
    while i < n {
        let end = (i + EA_BLOCK).min(n);
        while i < end {
            let v = (x[i] - aff.x_sub) * aff.x_mul;
            let lo = (lower[i] - aff.e_sub) * aff.e_mul;
            let hi = (upper[i] - aff.e_sub) * aff.e_mul;
            let d = (v - hi).max(lo - v).max(0.0);
            let dd = d * d;
            if let Some(c) = contrib.as_deref_mut() {
                c[i] = dd;
            }
            acc += dd;
            i += 1;
        }
        if acc > ub_sq {
            return f64::INFINITY;
        }
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn env_excess_sse2(
    x: &[f64],
    lower: &[f64],
    upper: &[f64],
    aff: EnvAffine,
    ub_sq: f64,
    mut contrib: Option<&mut [f64]>,
) -> f64 {
    use core::arch::x86_64::*;
    let n = x.len();
    let (xs, xm) = (_mm_set1_pd(aff.x_sub), _mm_set1_pd(aff.x_mul));
    let (es, em) = (_mm_set1_pd(aff.e_sub), _mm_set1_pd(aff.e_mul));
    let zero = _mm_setzero_pd();
    let mut acc = 0.0f64;
    let mut i = 0;
    while i + EA_BLOCK <= n {
        let mut v = _mm_setzero_pd();
        let mut k = 0;
        while k < EA_BLOCK {
            let p = i + k;
            let xv = _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(x.as_ptr().add(p)), xs), xm);
            let lo = _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(lower.as_ptr().add(p)), es), em);
            let hi = _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(upper.as_ptr().add(p)), es), em);
            let d = _mm_max_pd(_mm_max_pd(_mm_sub_pd(xv, hi), _mm_sub_pd(lo, xv)), zero);
            let dd = _mm_mul_pd(d, d);
            if let Some(c) = contrib.as_deref_mut() {
                _mm_storeu_pd(c.as_mut_ptr().add(p), dd);
            }
            v = _mm_add_pd(v, dd);
            k += 2;
        }
        acc += hsum128(v);
        if acc > ub_sq {
            return f64::INFINITY;
        }
        i += EA_BLOCK;
    }
    while i < n {
        let xv = (x[i] - aff.x_sub) * aff.x_mul;
        let lo = (lower[i] - aff.e_sub) * aff.e_mul;
        let hi = (upper[i] - aff.e_sub) * aff.e_mul;
        let d = (xv - hi).max(lo - xv).max(0.0);
        let dd = d * d;
        if let Some(c) = contrib.as_deref_mut() {
            c[i] = dd;
        }
        acc += dd;
        i += 1;
    }
    if acc > ub_sq {
        return f64::INFINITY;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn env_excess_avx2(
    x: &[f64],
    lower: &[f64],
    upper: &[f64],
    aff: EnvAffine,
    ub_sq: f64,
    mut contrib: Option<&mut [f64]>,
) -> f64 {
    use core::arch::x86_64::*;
    let n = x.len();
    let (xs, xm) = (_mm256_set1_pd(aff.x_sub), _mm256_set1_pd(aff.x_mul));
    let (es, em) = (_mm256_set1_pd(aff.e_sub), _mm256_set1_pd(aff.e_mul));
    let zero = _mm256_setzero_pd();
    let mut acc = 0.0f64;
    let mut i = 0;
    while i + EA_BLOCK <= n {
        let mut v = _mm256_setzero_pd();
        let mut k = 0;
        while k < EA_BLOCK {
            let p = i + k;
            let xv = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(x.as_ptr().add(p)), xs), xm);
            let lo = _mm256_mul_pd(
                _mm256_sub_pd(_mm256_loadu_pd(lower.as_ptr().add(p)), es),
                em,
            );
            let hi = _mm256_mul_pd(
                _mm256_sub_pd(_mm256_loadu_pd(upper.as_ptr().add(p)), es),
                em,
            );
            let d = _mm256_max_pd(
                _mm256_max_pd(_mm256_sub_pd(xv, hi), _mm256_sub_pd(lo, xv)),
                zero,
            );
            let dd = _mm256_mul_pd(d, d);
            if let Some(c) = contrib.as_deref_mut() {
                _mm256_storeu_pd(c.as_mut_ptr().add(p), dd);
            }
            v = _mm256_add_pd(v, dd);
            k += 4;
        }
        acc += hsum256(v);
        if acc > ub_sq {
            return f64::INFINITY;
        }
        i += EA_BLOCK;
    }
    while i < n {
        let xv = (x[i] - aff.x_sub) * aff.x_mul;
        let lo = (lower[i] - aff.e_sub) * aff.e_mul;
        let hi = (upper[i] - aff.e_sub) * aff.e_mul;
        let d = (xv - hi).max(lo - xv).max(0.0);
        let dd = d * d;
        if let Some(c) = contrib.as_deref_mut() {
            c[i] = dd;
        }
        acc += dd;
        i += 1;
    }
    if acc > ub_sq {
        return f64::INFINITY;
    }
    acc
}

// ---------------------------------------------------------------------
// DTW row recurrence.
// ---------------------------------------------------------------------

/// One DP row of the two-row DTW:
/// `curr[j] = (xi − y[j−1])² + min(prev[j], curr[j−1], prev[j−1])` for
/// `j` in `lo..=hi` (1-based columns; `curr[lo−1]` is the carry-in,
/// which the caller must have reset to `∞` along with the rest of
/// `curr`). Returns the row minimum.
///
/// The SIMD path splits the recurrence into a vectorisable pass
/// (`d² + min(prev[j], prev[j−1])`, cached in `d2`) and a scalar carry
/// sweep folding `curr[j−1]`; because `min` distributes exactly over
/// adding a common constant, the result is **bit-identical** to the
/// scalar recurrence.
///
/// # Panics
/// Panics (in debug) when the slice lengths disagree or the column
/// range is out of bounds.
pub fn dtw_row(
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    prev: &[f64],
    curr: &mut [f64],
    d2: &mut [f64],
) -> f64 {
    dtw_row_at(level(), xi, y, lo, hi, prev, curr, d2)
}

/// [`dtw_row`] on an explicit level.
#[allow(clippy::too_many_arguments)]
pub fn dtw_row_at(
    l: KernelLevel,
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    prev: &[f64],
    curr: &mut [f64],
    d2: &mut [f64],
) -> f64 {
    debug_assert!(lo >= 1 && hi <= y.len() && lo <= hi);
    debug_assert!(prev.len() == y.len() + 1 && curr.len() == y.len() + 1);
    debug_assert!(d2.len() == y.len() + 1);
    match l {
        KernelLevel::Scalar => dtw_row_scalar(xi, y, lo, hi, prev, curr),
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Sse2 => unsafe { dtw_row_sse2(xi, y, lo, hi, prev, curr, d2) },
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { dtw_row_avx2(xi, y, lo, hi, prev, curr, d2) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => dtw_row_scalar(xi, y, lo, hi, prev, curr),
    }
}

fn dtw_row_scalar(xi: f64, y: &[f64], lo: usize, hi: usize, prev: &[f64], curr: &mut [f64]) -> f64 {
    let mut row_min = f64::INFINITY;
    for j in lo..=hi {
        let d = xi - y[j - 1];
        let best_prev = prev[j].min(curr[j - 1]).min(prev[j - 1]);
        let v = d * d + best_prev;
        curr[j] = v;
        if v < row_min {
            row_min = v;
        }
    }
    row_min
}

/// The scalar carry sweep shared by both SIMD row kernels: fold
/// `d²[j] + curr[j−1]` into the vectorised pass-one values.
fn dtw_row_carry(lo: usize, hi: usize, curr: &mut [f64], d2: &[f64]) -> f64 {
    let mut row_min = f64::INFINITY;
    for j in lo..=hi {
        let v = curr[j].min(d2[j] + curr[j - 1]);
        curr[j] = v;
        if v < row_min {
            row_min = v;
        }
    }
    row_min
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn dtw_row_sse2(
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    prev: &[f64],
    curr: &mut [f64],
    d2: &mut [f64],
) -> f64 {
    use core::arch::x86_64::*;
    let vxi = _mm_set1_pd(xi);
    let mut j = lo;
    while j + 2 <= hi + 1 {
        let d = _mm_sub_pd(vxi, _mm_loadu_pd(y.as_ptr().add(j - 1)));
        let dd = _mm_mul_pd(d, d);
        _mm_storeu_pd(d2.as_mut_ptr().add(j), dd);
        let p = _mm_loadu_pd(prev.as_ptr().add(j));
        let pm1 = _mm_loadu_pd(prev.as_ptr().add(j - 1));
        _mm_storeu_pd(curr.as_mut_ptr().add(j), _mm_add_pd(dd, _mm_min_pd(p, pm1)));
        j += 2;
    }
    while j <= hi {
        let d = xi - y[j - 1];
        let dd = d * d;
        d2[j] = dd;
        curr[j] = dd + prev[j].min(prev[j - 1]);
        j += 1;
    }
    dtw_row_carry(lo, hi, curr, d2)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dtw_row_avx2(
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    prev: &[f64],
    curr: &mut [f64],
    d2: &mut [f64],
) -> f64 {
    use core::arch::x86_64::*;
    let vxi = _mm256_set1_pd(xi);
    let mut j = lo;
    while j + 4 <= hi + 1 {
        let d = _mm256_sub_pd(vxi, _mm256_loadu_pd(y.as_ptr().add(j - 1)));
        let dd = _mm256_mul_pd(d, d);
        _mm256_storeu_pd(d2.as_mut_ptr().add(j), dd);
        let p = _mm256_loadu_pd(prev.as_ptr().add(j));
        let pm1 = _mm256_loadu_pd(prev.as_ptr().add(j - 1));
        _mm256_storeu_pd(
            curr.as_mut_ptr().add(j),
            _mm256_add_pd(dd, _mm256_min_pd(p, pm1)),
        );
        j += 4;
    }
    while j <= hi {
        let d = xi - y[j - 1];
        let dd = d * d;
        d2[j] = dd;
        curr[j] = dd + prev[j].min(prev[j - 1]);
        j += 1;
    }
    dtw_row_carry(lo, hi, curr, d2)
}

// ---------------------------------------------------------------------
// Sliding min/max (the Lemire envelope).
// ---------------------------------------------------------------------

/// `(lower, upper)` where `lower[i] = min(y[i−r ..= i+r])` and
/// `upper[i] = max(...)`, windows clamped to the sequence — the envelope
/// construction. The scalar path is Lemire's monotonic-deque algorithm;
/// the SIMD paths use the van Herk–Gil–Werman block prefix/suffix
/// decomposition, whose merge step (`ext(suffix[i], prefix[i+w−1])`)
/// vectorises. Min/max of finite values is exact, so all levels are
/// bit-identical.
pub fn sliding_minmax(y: &[f64], radius: usize) -> (Vec<f64>, Vec<f64>) {
    sliding_minmax_at(level(), y, radius)
}

/// [`sliding_minmax`] on an explicit level.
pub fn sliding_minmax_at(l: KernelLevel, y: &[f64], radius: usize) -> (Vec<f64>, Vec<f64>) {
    if y.is_empty() || radius == 0 {
        return (y.to_vec(), y.to_vec());
    }
    match l {
        KernelLevel::Scalar => sliding_minmax_deque(y, radius),
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Sse2 | KernelLevel::Avx2 => sliding_minmax_vhgw(l, y, radius),
        #[cfg(not(target_arch = "x86_64"))]
        _ => sliding_minmax_deque(y, radius),
    }
}

/// Lemire's streaming deques (the scalar reference).
fn sliding_minmax_deque(y: &[f64], radius: usize) -> (Vec<f64>, Vec<f64>) {
    let n = y.len();
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    // Monotonic deques of indices: front is the current window extremum.
    let mut maxq: VecDeque<usize> = VecDeque::new();
    let mut minq: VecDeque<usize> = VecDeque::new();
    for i in 0..n {
        // The window for output position `o = i - radius` is
        // [o - radius, o + radius] = [i - 2r, i]; push y[i] first, then
        // emit once i reaches the window end o + radius.
        while maxq.back().is_some_and(|&b| y[b] <= y[i]) {
            maxq.pop_back();
        }
        maxq.push_back(i);
        while minq.back().is_some_and(|&b| y[b] >= y[i]) {
            minq.pop_back();
        }
        minq.push_back(i);
        if i >= radius {
            let o = i - radius;
            upper.push(y[*maxq.front().expect("window non-empty")]);
            lower.push(y[*minq.front().expect("window non-empty")]);
            // Retire indices leaving the next window [o+1-r, ...].
            if maxq.front().is_some_and(|&f| f + radius <= o) {
                maxq.pop_front();
            }
            if minq.front().is_some_and(|&f| f + radius <= o) {
                minq.pop_front();
            }
        }
    }
    // Tail positions whose window is cut off by the end of the series.
    for o in n.saturating_sub(radius)..n {
        // Window [o - r, n): drop indices before o - r.
        while maxq.front().is_some_and(|&f| f + radius < o) {
            maxq.pop_front();
        }
        while minq.front().is_some_and(|&f| f + radius < o) {
            minq.pop_front();
        }
        upper.push(y[*maxq.front().expect("window non-empty")]);
        lower.push(y[*minq.front().expect("window non-empty")]);
    }
    debug_assert_eq!(lower.len(), n);
    debug_assert_eq!(upper.len(), n);
    (lower, upper)
}

/// Van Herk–Gil–Werman: pad with `±∞`, per-block prefix/suffix extrema,
/// then a vectorisable merge. O(n) with ~3 comparisons per element and
/// no branches in the merge.
#[cfg(target_arch = "x86_64")]
fn sliding_minmax_vhgw(l: KernelLevel, y: &[f64], radius: usize) -> (Vec<f64>, Vec<f64>) {
    let n = y.len();
    let w = 2 * radius + 1;
    let padded = n + 2 * radius;
    // Padding is the identity of each fold (+∞ for min, −∞ for max), so
    // clamped edge windows fall out of the same formula.
    let mut arr_min = vec![f64::INFINITY; padded];
    let mut arr_max = vec![f64::NEG_INFINITY; padded];
    arr_min[radius..radius + n].copy_from_slice(y);
    arr_max[radius..radius + n].copy_from_slice(y);

    let mut pre_min = vec![0.0; padded];
    let mut pre_max = vec![0.0; padded];
    let mut suf_min = vec![0.0; padded];
    let mut suf_max = vec![0.0; padded];
    let mut b = 0;
    while b < padded {
        let end = (b + w).min(padded);
        let (mut rmin, mut rmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for t in b..end {
            rmin = rmin.min(arr_min[t]);
            rmax = rmax.max(arr_max[t]);
            pre_min[t] = rmin;
            pre_max[t] = rmax;
        }
        let (mut rmin, mut rmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for t in (b..end).rev() {
            rmin = rmin.min(arr_min[t]);
            rmax = rmax.max(arr_max[t]);
            suf_min[t] = rmin;
            suf_max[t] = rmax;
        }
        b = end;
    }

    let mut lower = vec![0.0; n];
    let mut upper = vec![0.0; n];
    // out[i] covers arr[i .. i+w); it spans at most two blocks, so the
    // suffix of the first and the prefix of the second cover it exactly.
    unsafe {
        match l {
            KernelLevel::Avx2 => vhgw_merge_avx2(
                &suf_min, &suf_max, &pre_min, &pre_max, w, &mut lower, &mut upper,
            ),
            _ => vhgw_merge_sse2(
                &suf_min, &suf_max, &pre_min, &pre_max, w, &mut lower, &mut upper,
            ),
        }
    }
    (lower, upper)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn vhgw_merge_sse2(
    suf_min: &[f64],
    suf_max: &[f64],
    pre_min: &[f64],
    pre_max: &[f64],
    w: usize,
    lower: &mut [f64],
    upper: &mut [f64],
) {
    use core::arch::x86_64::*;
    let n = lower.len();
    let mut i = 0;
    while i + 2 <= n {
        let lo = _mm_min_pd(
            _mm_loadu_pd(suf_min.as_ptr().add(i)),
            _mm_loadu_pd(pre_min.as_ptr().add(i + w - 1)),
        );
        let hi = _mm_max_pd(
            _mm_loadu_pd(suf_max.as_ptr().add(i)),
            _mm_loadu_pd(pre_max.as_ptr().add(i + w - 1)),
        );
        _mm_storeu_pd(lower.as_mut_ptr().add(i), lo);
        _mm_storeu_pd(upper.as_mut_ptr().add(i), hi);
        i += 2;
    }
    while i < n {
        lower[i] = suf_min[i].min(pre_min[i + w - 1]);
        upper[i] = suf_max[i].max(pre_max[i + w - 1]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn vhgw_merge_avx2(
    suf_min: &[f64],
    suf_max: &[f64],
    pre_min: &[f64],
    pre_max: &[f64],
    w: usize,
    lower: &mut [f64],
    upper: &mut [f64],
) {
    use core::arch::x86_64::*;
    let n = lower.len();
    let mut i = 0;
    while i + 4 <= n {
        let lo = _mm256_min_pd(
            _mm256_loadu_pd(suf_min.as_ptr().add(i)),
            _mm256_loadu_pd(pre_min.as_ptr().add(i + w - 1)),
        );
        let hi = _mm256_max_pd(
            _mm256_loadu_pd(suf_max.as_ptr().add(i)),
            _mm256_loadu_pd(pre_max.as_ptr().add(i + w - 1)),
        );
        _mm256_storeu_pd(lower.as_mut_ptr().add(i), lo);
        _mm256_storeu_pd(upper.as_mut_ptr().add(i), hi);
        i += 4;
    }
    while i < n {
        lower[i] = suf_min[i].min(pre_min[i + w - 1]);
        upper[i] = suf_max[i].max(pre_max[i + w - 1]);
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Horizontal sums.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn hsum128(v: core::arch::x86_64::__m128d) -> f64 {
    use core::arch::x86_64::*;
    _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)))
}

#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn hsum256(v: core::arch::x86_64::__m256d) -> f64 {
    use core::arch::x86_64::*;
    let s = _mm_add_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
    _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiggle(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64 + seed as f64 * 0.7;
                (x * 0.31).sin() * 2.0 + (x * 0.07).cos() + (x * 1.7).sin() * 0.3
            })
            .collect()
    }

    #[test]
    fn level_is_cached_and_labelled() {
        let l = level();
        assert_eq!(l, level(), "detection is sticky");
        assert!(["scalar", "sse2", "avx2"].contains(&l.label()));
        let avail = KernelLevel::available();
        assert_eq!(avail[0], KernelLevel::Scalar);
        assert!(avail.contains(&l) || l == KernelLevel::Scalar);
    }

    #[test]
    fn sum_sq_diff_levels_agree() {
        for n in [0usize, 1, 3, 8, 16, 17, 31, 64, 129] {
            let x = wiggle(n, 1);
            let y = wiggle(n, 9);
            let want = sum_sq_diff_ea_at(KernelLevel::Scalar, &x, &y, f64::INFINITY);
            for l in KernelLevel::available() {
                let got = sum_sq_diff_ea_at(l, &x, &y, f64::INFINITY);
                assert!(
                    (got - want).abs() <= 1e-9 * want.max(1.0),
                    "{l:?} n={n}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn sum_sq_diff_abandons_like_scalar() {
        let x = vec![0.0; 64];
        let mut y = vec![0.0; 64];
        y[0] = 100.0;
        for l in KernelLevel::available() {
            assert_eq!(sum_sq_diff_ea_at(l, &x, &y, 1.0), f64::INFINITY, "{l:?}");
            // A bound met exactly does not abandon ("exceeds" semantics).
            assert_eq!(sum_sq_diff_ea_at(l, &x, &y, 10_000.0), 10_000.0, "{l:?}");
        }
    }

    #[test]
    fn env_excess_levels_agree() {
        for n in [1usize, 7, 16, 33, 120] {
            let x = wiggle(n, 3);
            let base = wiggle(n, 5);
            let lower: Vec<f64> = base.iter().map(|v| v - 0.3).collect();
            let upper: Vec<f64> = base.iter().map(|v| v + 0.3).collect();
            for aff in [
                EnvAffine::IDENTITY,
                EnvAffine::znorm_x(0.4, 1.7),
                EnvAffine::znorm_env(0.4, 1.7),
                EnvAffine::znorm_x(0.0, 0.0),
            ] {
                let want =
                    env_excess_sq_at(KernelLevel::Scalar, &x, &lower, &upper, aff, f64::INFINITY);
                for l in KernelLevel::available() {
                    let got = env_excess_sq_at(l, &x, &lower, &upper, aff, f64::INFINITY);
                    assert!(
                        (got - want).abs() <= 1e-9 * want.max(1.0),
                        "{l:?} n={n} {aff:?}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn env_excess_contrib_fills_every_position() {
        let x = wiggle(37, 2);
        let base = wiggle(37, 8);
        let lower: Vec<f64> = base.iter().map(|v| v - 0.2).collect();
        let upper: Vec<f64> = base.iter().map(|v| v + 0.2).collect();
        let mut contrib = vec![f64::NAN; 37];
        let total = env_excess_contrib(
            &x,
            &lower,
            &upper,
            EnvAffine::IDENTITY,
            f64::INFINITY,
            &mut contrib,
        );
        assert!(contrib.iter().all(|c| c.is_finite()), "zeros written too");
        let sum: f64 = contrib.iter().sum();
        assert!((total - sum).abs() <= 1e-9 * total.max(1.0));
    }

    #[test]
    fn dtw_row_is_bit_exact_across_levels() {
        for (m, lo, hi) in [
            (16usize, 1usize, 16usize),
            (33, 5, 29),
            (8, 2, 4),
            (5, 3, 3),
        ] {
            let y = wiggle(m, 4);
            let mut prev = wiggle(m + 1, 6);
            prev[0] = 0.0;
            let reference: Vec<f64> = {
                let mut curr = vec![f64::INFINITY; m + 1];
                dtw_row_scalar(0.37, &y, lo, hi, &prev, &mut curr);
                curr
            };
            for l in KernelLevel::available() {
                let mut curr = vec![f64::INFINITY; m + 1];
                let mut d2 = vec![0.0; m + 1];
                let rm = dtw_row_at(l, 0.37, &y, lo, hi, &prev, &mut curr, &mut d2);
                assert_eq!(curr, reference, "{l:?} row values must be bit-identical");
                let want_min = reference[lo..=hi]
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(rm, want_min, "{l:?} row min");
            }
        }
    }

    #[test]
    fn sliding_minmax_is_bit_exact_across_levels() {
        for n in [0usize, 1, 2, 5, 16, 47, 100] {
            let y = wiggle(n, 7);
            for r in 0..=n + 2 {
                let (want_lo, want_hi) = sliding_minmax_at(KernelLevel::Scalar, &y, r);
                for l in KernelLevel::available() {
                    let (lo, hi) = sliding_minmax_at(l, &y, r);
                    assert_eq!(lo, want_lo, "{l:?} n={n} r={r} lower");
                    assert_eq!(hi, want_hi, "{l:?} n={n} r={r} upper");
                }
            }
        }
    }
}
