//! Property-based tests for the distance substrate.
//!
//! These are the load-bearing invariants of ONEX: the base construction
//! and query pruning are only correct if every one of these holds for all
//! inputs, so we let proptest hunt for counterexamples.

use onex_distance::bounds::{
    dtw_lower_via_representative, dtw_upper_via_representative, warp_multiplicity,
};
use onex_distance::lb::{cumulative_bound, lb_keogh_sq, lb_keogh_with_contrib, lb_kim_fl_sq};
use onex_distance::{dtw, dtw_early_abandon, dtw_sq, dtw_with_path, ed, Band, Envelope};
use proptest::prelude::*;

const EPS: f64 = 1e-7;

fn series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 1..=max_len)
}

fn equal_pair(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-100.0f64..100.0, n),
            prop::collection::vec(-100.0f64..100.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dtw_is_symmetric((x, y) in (series(24), series(24))) {
        let a = dtw(&x, &y, Band::Full);
        let b = dtw(&y, &x, Band::Full);
        prop_assert!((a - b).abs() < EPS, "{a} vs {b}");
    }

    #[test]
    fn dtw_identity_is_zero(x in series(32)) {
        prop_assert!(dtw(&x, &x, Band::Full) < EPS);
    }

    #[test]
    fn dtw_le_ed_for_equal_lengths((x, y) in equal_pair(24)) {
        prop_assert!(dtw(&x, &y, Band::Full) <= ed(&x, &y) + EPS);
    }

    #[test]
    fn band_monotonicity((x, y) in equal_pair(20), r in 0usize..20) {
        let narrow = dtw(&x, &y, Band::SakoeChiba(r));
        let wide = dtw(&x, &y, Band::SakoeChiba(r + 2));
        let full = dtw(&x, &y, Band::Full);
        prop_assert!(full <= wide + EPS);
        prop_assert!(wide <= narrow + EPS);
    }

    #[test]
    fn early_abandon_is_consistent((x, y) in (series(20), series(20)), ub in 0.0f64..500.0) {
        let exact = dtw(&x, &y, Band::Full);
        let ea = dtw_early_abandon(&x, &y, Band::Full, ub);
        if exact <= ub {
            prop_assert!((ea - exact).abs() < EPS, "must not abandon below the bound");
        } else {
            prop_assert!(ea == f64::INFINITY || (ea - exact).abs() < EPS);
        }
    }

    #[test]
    fn path_cost_equals_distance((x, y) in (series(16), series(16))) {
        let (d, p) = dtw_with_path(&x, &y, Band::Full);
        prop_assert!(p.is_valid(x.len(), y.len()));
        prop_assert!((p.cost(&x, &y) - d).abs() < EPS);
        let two_row = dtw(&x, &y, Band::Full);
        prop_assert!((d - two_row).abs() < EPS);
    }

    #[test]
    fn banded_path_stays_in_band((x, y) in equal_pair(16), r in 0usize..6) {
        let (d, p) = dtw_with_path(&x, &y, Band::SakoeChiba(r));
        prop_assert!(d.is_finite());
        for &(i, j) in p.pairs() {
            prop_assert!((i as i64 - j as i64).unsigned_abs() as usize <= r);
        }
    }

    #[test]
    fn lb_kim_bounds_dtw((x, y) in (series(20), series(20))) {
        prop_assert!(lb_kim_fl_sq(&x, &y) <= dtw_sq(&x, &y, Band::Full) + EPS);
    }

    #[test]
    fn itakura_dominates_full((x, y) in equal_pair(24)) {
        let ita = dtw(&x, &y, Band::Itakura);
        let full = dtw(&x, &y, Band::Full);
        prop_assert!(full <= ita + EPS, "constraint can only increase distance");
        // Equal lengths are always feasible (the diagonal is admissible).
        prop_assert!(ita.is_finite());
        // Symmetry.
        prop_assert!((ita - dtw(&y, &x, Band::Itakura)).abs() < EPS);
    }

    #[test]
    fn itakura_path_is_valid_when_finite((x, y) in equal_pair(16)) {
        let (d, p) = dtw_with_path(&x, &y, Band::Itakura);
        prop_assert!(d.is_finite());
        prop_assert!(p.is_valid(x.len(), y.len()));
        prop_assert!((p.cost(&x, &y) - d).abs() < EPS);
    }

    #[test]
    fn lb_keogh_bounds_banded_dtw((x, y) in equal_pair(20), r in 0usize..8) {
        let env = Envelope::build(&y, r);
        let lb = lb_keogh_sq(&x, &env, f64::INFINITY);
        let d = dtw_sq(&x, &y, Band::SakoeChiba(r));
        prop_assert!(lb <= d + EPS, "r={r}: {lb} > {d}");
    }

    #[test]
    fn cb_plus_dtw_never_false_abandons((x, y) in equal_pair(16), r in 0usize..5) {
        // Feeding LB_Keogh's own cumulative bound into the DP must never
        // abandon a candidate whose true distance is within the bound.
        use onex_distance::dtw::dtw_early_abandon_sq_with_cb;
        let env = Envelope::build(&y, r);
        let mut contrib = Vec::new();
        lb_keogh_with_contrib(&x, &env, &mut contrib);
        let cb = cumulative_bound(&contrib);
        let exact = dtw_sq(&x, &y, Band::SakoeChiba(r));
        let out = dtw_early_abandon_sq_with_cb(&x, &y, Band::SakoeChiba(r), exact + 1.0, Some(&cb));
        prop_assert!((out - exact).abs() < EPS, "false abandon: {out} vs {exact}");
    }

    #[test]
    fn envelope_brackets_sequence(y in series(48), r in 0usize..12) {
        let env = Envelope::build(&y, r);
        prop_assert!(env.contains(&y));
    }

    #[test]
    fn group_bound_triangle(
        q in series(16),
        (r, s) in equal_pair(16),
        band_r in 0usize..6,
    ) {
        for band in [Band::Full, Band::SakoeChiba(band_r)] {
            let w = warp_multiplicity(q.len(), r.len(), band);
            let dqr = dtw(&q, &r, band);
            let dqs = dtw(&q, &s, band);
            let ers = ed(&r, &s);
            prop_assert!(
                dqs <= dtw_upper_via_representative(dqr, ers, w) + EPS,
                "upper bound violated: band={band:?} dqs={dqs} dqr={dqr} ers={ers} w={w}"
            );
            prop_assert!(
                dqs >= dtw_lower_via_representative(dqr, ers, w) - EPS,
                "lower bound violated: band={band:?}"
            );
        }
    }

    #[test]
    fn ed_triangle_inequality((x, y) in equal_pair(24), z in series(24)) {
        if z.len() == x.len() {
            prop_assert!(ed(&x, &z) <= ed(&x, &y) + ed(&y, &z) + EPS);
        }
    }
}

// ---------------------------------------------------------------------
// SIMD kernels and the L0 sketch tier.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The accumulating kernels agree across every available level to
    /// the documented relative tolerance (lane sums reassociate).
    #[test]
    fn kernel_sums_agree_across_levels((x, y) in equal_pair(96), ub in 0.0f64..1e6) {
        use onex_distance::kernels::{sum_sq_diff_ea_at, KernelLevel};
        let want = sum_sq_diff_ea_at(KernelLevel::Scalar, &x, &y, f64::INFINITY);
        for l in KernelLevel::available() {
            let got = sum_sq_diff_ea_at(l, &x, &y, f64::INFINITY);
            prop_assert!((got - want).abs() <= 1e-9 * want.max(1.0), "{l:?}");
            // With a bound: either both abandon, or both agree — an
            // ulp-boundary flip would show as one INF and one ≈ub.
            let a = sum_sq_diff_ea_at(KernelLevel::Scalar, &x, &y, ub);
            let b = sum_sq_diff_ea_at(l, &x, &y, ub);
            if a.is_infinite() || b.is_infinite() {
                prop_assert!(want + 1e-9 * want.max(1.0) >= ub, "{l:?} abandoned under the bound");
            } else {
                prop_assert!((a - b).abs() <= 1e-9 * want.max(1.0));
            }
        }
    }

    /// The envelope-exceedance kernel agrees across levels.
    #[test]
    fn kernel_env_excess_agrees_across_levels((x, y) in equal_pair(96), r in 0usize..8) {
        use onex_distance::kernels::{env_excess_sq_at, EnvAffine, KernelLevel};
        let env = Envelope::build(&y, r);
        let want = env_excess_sq_at(
            KernelLevel::Scalar, &x, &env.lower, &env.upper, EnvAffine::IDENTITY, f64::INFINITY);
        for l in KernelLevel::available() {
            let got = env_excess_sq_at(
                l, &x, &env.lower, &env.upper, EnvAffine::IDENTITY, f64::INFINITY);
            prop_assert!((got - want).abs() <= 1e-9 * want.max(1.0), "{l:?}: {got} vs {want}");
        }
    }

    /// The DTW row kernel and the envelope min/max are bit-exact across
    /// levels — the whole-DP distance must be *identical*, not close.
    #[test]
    fn dtw_and_envelope_are_bit_exact_across_levels((x, y) in equal_pair(48), r in 0usize..10) {
        use onex_distance::kernels::{sliding_minmax_at, KernelLevel};
        let (want_lo, want_hi) = sliding_minmax_at(KernelLevel::Scalar, &y, r);
        for l in KernelLevel::available() {
            let (lo, hi) = sliding_minmax_at(l, &y, r);
            prop_assert_eq!(&lo, &want_lo, "{:?} lower", l);
            prop_assert_eq!(&hi, &want_hi, "{:?} upper", l);
        }
        // dtw_sq dispatches through the row kernel; verify it against an
        // explicit scalar row recurrence.
        let got = dtw_sq(&x, &y, Band::SakoeChiba(r));
        let reference = {
            let (n, m) = (x.len(), y.len());
            let band = Band::SakoeChiba(r);
            let mut prev = vec![f64::INFINITY; m + 1];
            let mut curr = vec![f64::INFINITY; m + 1];
            prev[0] = 0.0;
            let mut infeasible = false;
            for i in 1..=n {
                curr.iter_mut().for_each(|c| *c = f64::INFINITY);
                let (lo, hi) = band.row_range(i, n, m);
                if lo > hi {
                    infeasible = true;
                    break;
                }
                for j in lo..=hi {
                    let d = x[i - 1] - y[j - 1];
                    curr[j] = d * d + prev[j].min(curr[j - 1]).min(prev[j - 1]);
                }
                std::mem::swap(&mut prev, &mut curr);
            }
            if infeasible { f64::INFINITY } else { prev[m] }
        };
        prop_assert!(
            got == reference || (got.is_infinite() && reference.is_infinite()),
            "dtw row kernel must be bit-exact: {got} vs {reference}"
        );
    }

    /// L0 sketch bound never exceeds true banded DTW (the tier's
    /// soundness contract) on arbitrary equal-length pairs.
    #[test]
    fn l0_sketch_bound_is_sound((x, y) in equal_pair(64), r in 0usize..12) {
        use onex_distance::{sketch, QuerySketch, SketchParams, SKETCH_STRIDE};
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in x.iter().chain(&y) {
            min = min.min(*v);
            max = max.max(*v);
        }
        let params = SketchParams::fit(min, max);
        let env = Envelope::build(&x, r);
        let qs = QuerySketch::new(&x, &env, params);
        let mut sk = [0u8; SKETCH_STRIDE];
        sketch::encode_into(&params, &y, &mut sk);
        let lb = qs.bound_sq(&sk);
        let d = dtw_sq(&x, &y, Band::SakoeChiba(r));
        prop_assert!(lb <= d + 1e-9 * d.max(1.0), "L0 {lb} > dtw {d} (r={r})");
    }

    /// Satellite guard for the SIMD row rewrite: early-abandoning DTW
    /// with an infinite (or never-tightening live) bound is *exactly*
    /// plain `dtw_sq`, and a bound collapsed to 0 mid-flight still
    /// returns `INFINITY` unless the true distance is itself ~0.
    #[test]
    fn early_abandon_with_infinite_bound_is_plain_dtw((x, y) in equal_pair(32), r in 0usize..10) {
        use onex_distance::dtw::dtw_early_abandon_sq_dynamic;
        for band in [Band::Full, Band::SakoeChiba(r)] {
            let exact = dtw_sq(&x, &y, band);
            let ea = dtw_early_abandon_sq_dynamic(&x, &y, band, f64::INFINITY, None, None);
            prop_assert!(
                ea == exact || (ea.is_infinite() && exact.is_infinite()),
                "infinite static bound must be exact: {ea} vs {exact}"
            );
            let never = || f64::INFINITY;
            let ea_live = dtw_early_abandon_sq_dynamic(&x, &y, band, f64::INFINITY, None, Some(&never));
            prop_assert!(
                ea_live == exact || (ea_live.is_infinite() && exact.is_infinite()),
                "never-tightening live bound must be exact: {ea_live} vs {exact}"
            );
            let zero = || 0.0;
            let collapsed = dtw_early_abandon_sq_dynamic(&x, &y, band, f64::INFINITY, None, Some(&zero));
            if exact > 0.0 {
                prop_assert!(collapsed.is_infinite(), "zero bound must abandon: {collapsed}");
            } else {
                prop_assert!(collapsed <= 0.0 || collapsed.is_infinite());
            }
        }
    }
}

// ---------------------------------------------------------------------
// PAA / iterative-deepening DTW (paper reference [3]).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// PAA at full resolution is the identity; at one segment, the mean.
    #[test]
    fn paa_endpoints(x in series(24)) {
        let full = onex_distance::paa(&x, x.len());
        for (a, b) in full.iter().zip(&x) {
            prop_assert!((a - b).abs() < EPS);
        }
        let one = onex_distance::paa(&x, 1);
        let mean: f64 = x.iter().sum::<f64>() / x.len() as f64;
        prop_assert!((one[0] - mean).abs() < EPS);
    }

    /// Every PAA value lies within the min/max of the points it covers —
    /// segment means cannot escape the data range.
    #[test]
    fn paa_values_within_range(x in series(32), s in 1usize..8) {
        let s = s.min(x.len());
        let p = onex_distance::paa(&x, s);
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in p {
            prop_assert!(v >= lo - EPS && v <= hi + EPS);
        }
    }

    /// Coarse DTW at full resolution equals exact DTW.
    #[test]
    fn dtw_paa_full_resolution_exact((x, y) in equal_pair(16)) {
        let exact = dtw(&x, &y, Band::Full);
        let coarse = onex_distance::dtw_paa(&x, &y, x.len().max(y.len()), Band::Full);
        prop_assert!((exact - coarse).abs() < EPS, "{exact} vs {coarse}");
    }

    /// IDDTW with quantile 1.0, trained on the exact (query, candidate)
    /// pairs it will search, always returns the brute-force nearest
    /// neighbour's distance.
    #[test]
    fn iddtw_exact_when_fully_trained(
        q in prop::collection::vec(-10.0f64..10.0, 8..20),
        cands in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 8..20), 2..8),
    ) {
        let pairs: Vec<(Vec<f64>, Vec<f64>)> =
            cands.iter().map(|c| (q.clone(), c.clone())).collect();
        let model = onex_distance::IddtwModel::train(&pairs, &[2, 4], 1.0, Band::Full);
        let (_, got, _) = model
            .nearest(&q, cands.iter().map(|v| v.as_slice()))
            .unwrap();
        let want = cands
            .iter()
            .map(|c| dtw(&q, c, Band::Full))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got - want).abs() < EPS, "iddtw {got} brute {want}");
    }
}
