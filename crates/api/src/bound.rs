//! A query-global pruning bound shared across search workers.
//!
//! [`BestK`](crate::BestK) gives every scan a *local* k-th-best threshold,
//! but a fan-out query (one searcher per shard, or one pass per candidate
//! length) wants more: the moment any worker proves "the k-th best answer
//! is at most `b`", every other worker should prune against `b` too.
//! [`SharedBound`] is that channel — a lock-free, monotonically
//! *tightening* `f64` threshold built on a single atomic word.
//!
//! Soundness of sharing rests on one observation: if some worker holds
//! `k` candidates whose worst key is `b`, then the merged top-k over all
//! workers has a k-th best key ≤ `b` — so any candidate with key ≥ `b`
//! can at most *tie* at the merged k-boundary, never displace an answer.
//! Publishing local k-th-best values therefore never loses a strictly
//! better match; which of several exactly tied windows is reported may
//! change (the documented "exact up to distance ties" contract).

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free, monotonically tightening pruning threshold.
///
/// Starts at `+∞` ("nothing can be ruled out") and only ever decreases:
/// [`SharedBound::tighten`] publishes a new upper bound on the k-th best
/// key, and [`SharedBound::get`] reads the tightest value published so
/// far. All operations use relaxed atomics — a stale read is merely a
/// *looser* (still sound) bound, so no ordering stronger than the
/// monotone CAS is needed.
///
/// ```
/// use onex_api::SharedBound;
///
/// let bound = SharedBound::new();
/// assert!(bound.get().is_infinite());
/// bound.tighten(3.0);
/// bound.tighten(5.0); // looser: ignored
/// assert_eq!(bound.get(), 3.0);
/// bound.tighten(1.5);
/// assert_eq!(bound.get(), 1.5);
/// ```
#[derive(Debug)]
pub struct SharedBound {
    /// IEEE-754 bits of the current bound. Non-negative floats compare
    /// identically as floats and as sign-magnitude integers, but we CAS
    /// on the decoded `f64` anyway so the invariant is explicit.
    bits: AtomicU64,
}

impl SharedBound {
    /// A bound that rules nothing out yet (`+∞`).
    pub fn new() -> Self {
        SharedBound {
            bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// The tightest value published so far (`+∞` until the first
    /// [`SharedBound::tighten`]).
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Publish `value` as an upper bound on the k-th best key. Values
    /// looser than the current bound are ignored (the bound is monotone),
    /// as are NaN and negative values — a bound must stay a sound,
    /// non-negative threshold no matter what a worker feeds it. Returns
    /// the bound in effect after the call.
    pub fn tighten(&self, value: f64) -> f64 {
        // NaN or negative: never publish.
        if value.is_nan() || value < 0.0 {
            return self.get();
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(current) <= value {
                return f64::from_bits(current);
            }
            match self.bits.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return value,
                Err(observed) => current = observed,
            }
        }
    }

    /// Whether any worker has published a finite bound yet.
    #[inline]
    pub fn is_tightened(&self) -> bool {
        self.get().is_finite()
    }
}

impl Default for SharedBound {
    fn default() -> Self {
        SharedBound::new()
    }
}

impl Clone for SharedBound {
    /// Cloning snapshots the current bound into an independent threshold
    /// (subsequent tightenings are not shared — share via `Arc` for that).
    fn clone(&self) -> Self {
        SharedBound {
            bits: AtomicU64::new(self.get().to_bits()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_unbounded_and_only_tightens() {
        let b = SharedBound::new();
        assert!(b.get().is_infinite());
        assert!(!b.is_tightened());
        assert_eq!(b.tighten(4.0), 4.0);
        assert_eq!(b.tighten(7.0), 4.0, "loosening is ignored");
        assert_eq!(b.tighten(2.5), 2.5);
        assert_eq!(b.get(), 2.5);
        assert!(b.is_tightened());
    }

    #[test]
    fn rejects_nan_and_negative_values() {
        let b = SharedBound::new();
        b.tighten(3.0);
        assert_eq!(b.tighten(f64::NAN), 3.0);
        assert_eq!(b.tighten(-1.0), 3.0);
        assert_eq!(b.get(), 3.0);
        // Zero is a legal (maximally tight, short of ties) bound.
        assert_eq!(b.tighten(0.0), 0.0);
    }

    #[test]
    fn clone_snapshots_without_sharing() {
        let a = SharedBound::new();
        a.tighten(5.0);
        let b = a.clone();
        assert_eq!(b.get(), 5.0);
        a.tighten(1.0);
        assert_eq!(b.get(), 5.0, "clones are independent");
    }

    #[test]
    fn concurrent_tightening_converges_to_the_minimum() {
        let bound = Arc::new(SharedBound::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let bound = Arc::clone(&bound);
                std::thread::spawn(move || {
                    // Each thread publishes a descending ramp; the global
                    // minimum across all threads is 1.0.
                    for i in (0..100u64).rev() {
                        bound.tighten(1.0 + (i * 8 + t) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bound.get(), 1.0);
    }
}
