use crate::OnexError;

/// Distance semantics a backend answers queries under. The four engines
/// the ONEX demo compares occupy four different points of this ladder —
/// the whole point of experiments E5/E10/E11 — so the unified trait keeps
/// the semantics explicit instead of pretending the numbers are
/// interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Metric {
    /// Raw-scale Euclidean distance over fixed-length windows (FRM \[4\]).
    RawEuclidean,
    /// Raw-scale DTW over indexed subsequences (ONEX itself).
    RawDtw,
    /// Z-normalised, band-constrained DTW (UCR Suite \[6\]).
    ZNormalizedDtw,
    /// Unconstrained subsequence DTW with free endpoints (SPRING \[7\],
    /// EBSM \[1\]).
    SubsequenceDtw,
}

impl Metric {
    /// Human-readable label (used by the server's JSON payloads and the
    /// bench tables).
    pub fn label(&self) -> &'static str {
        match self {
            Metric::RawEuclidean => "raw ED",
            Metric::RawDtw => "raw DTW",
            Metric::ZNormalizedDtw => "z-norm DTW",
            Metric::SubsequenceDtw => "subsequence DTW",
        }
    }
}

/// What a backend can and cannot do — capability introspection so generic
/// drivers (the bench harness, the server's `?backend=` route) adapt
/// without downcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Distance semantics of reported [`BackendMatch::distance`] values.
    pub metric: Metric,
    /// Whether answers are exact under the backend's own metric (EBSM is
    /// the approximate one; ONEX is exact under the `Seed` policy).
    pub exact: bool,
    /// Whether matches may have a length different from the query's.
    pub multi_length: bool,
    /// Whether the backend can monitor unbounded streams (see
    /// [`StreamingSearch`]).
    pub streaming: bool,
    /// Whether `k_best` reports at most one match per stored series
    /// (engines built around per-series best-window scans).
    pub one_match_per_series: bool,
    /// Whether answers may be served from a result cache (a decorator
    /// like `CachedSearch`). Cached answers are bit-identical replays of
    /// a prior computation — work counters included — never approximations.
    pub cached: bool,
}

/// One answer of a [`SimilaritySearch::k_best`] query: a window of a
/// stored series, identified positionally so it resolves against any
/// representation of the collection (a `Dataset`, plain vectors, ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendMatch {
    /// Index of the series in the backend's collection (load order).
    pub series: u32,
    /// Start offset of the matched window.
    pub start: usize,
    /// Length of the matched window in samples.
    pub len: usize,
    /// Distance to the query under the backend's [`Metric`].
    pub distance: f64,
}

impl BackendMatch {
    /// End offset (exclusive).
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Backend-neutral work counters for one query. Each engine maps its
/// native accounting (group scans, lower-bound cascades, R-tree visits,
/// embedding refinements) onto these three, so generic drivers can
/// compare effort across engines.
///
/// `examined` and `pruned` are **disjoint** candidate sets: a candidate
/// is either dismissed by a filter (pruned) or actually evaluated
/// (examined), never both — so `pruned / (examined + pruned)` is a
/// meaningful cross-engine prune rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Candidates that survived every filter and were actually evaluated.
    pub examined: usize,
    /// Candidates dismissed by a filter before any distance computation.
    pub pruned: usize,
    /// Full distance computations started (DTW DP runs, ED verifications).
    pub distance_computations: usize,
    /// Where the pruning happened, per cascade tier. Backends without a
    /// tiered cascade leave this at zero; when populated, the tier prune
    /// counts it covers are a breakdown of (a subset of) `pruned`.
    pub tiers: TierPrunes,
}

/// Per-tier breakdown of a backend's lower-bound cascade: how many
/// candidates each tier rejected, plus how many surviving DTW runs
/// abandoned mid-DP. Tiers a backend does not implement stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierPrunes {
    /// Rejected by the quantised L0 sketch prefilter (before any f64
    /// data was resolved).
    pub l0: u64,
    /// Rejected by an LB_Kim-style corner bound.
    pub kim: u64,
    /// Rejected by an LB_Keogh-style envelope bound.
    pub keogh: u64,
    /// DTW computations that abandoned early instead of completing.
    pub dtw_abandoned: u64,
}

impl std::ops::AddAssign for TierPrunes {
    fn add_assign(&mut self, rhs: TierPrunes) {
        self.l0 += rhs.l0;
        self.kim += rhs.kim;
        self.keogh += rhs.keogh;
        self.dtw_abandoned += rhs.dtw_abandoned;
    }
}

impl BackendStats {
    /// Total effort proxy: examined candidates plus distance computations.
    /// Monotone in `k` for every backend in the workspace — the
    /// conformance suite asserts this.
    pub fn work(&self) -> usize {
        self.examined + self.distance_computations
    }
}

impl std::ops::AddAssign for BackendStats {
    fn add_assign(&mut self, rhs: BackendStats) {
        self.examined += rhs.examined;
        self.pruned += rhs.pruned;
        self.distance_computations += rhs.distance_computations;
        self.tiers += rhs.tiers;
    }
}

/// How much of a partitioned collection actually answered a query.
///
/// Single-process backends always see their whole collection, so they
/// leave [`SearchOutcome::coverage`] at `None`; a distributed fan-out
/// fills it in so callers can tell a complete answer from a degraded one
/// (some shard slots had no live replica) *typed*, instead of inferring
/// it from a shorter match list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Shard slots that contributed their partition to this answer.
    pub shards_answered: u32,
    /// Shard slots the collection is partitioned over.
    pub shards_total: u32,
}

impl Coverage {
    /// Full coverage over `total` shards — every slot answered.
    pub fn full(total: u32) -> Self {
        Coverage {
            shards_answered: total,
            shards_total: total,
        }
    }

    /// Whether part of the collection is missing from the answer
    /// (`shards_answered < shards_total`).
    pub fn degraded(&self) -> bool {
        self.shards_answered < self.shards_total
    }
}

/// What a distributed fan-out does when a shard slot cannot answer
/// (every replica dead or erroring): the caller's availability/
/// completeness trade-off, made explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradePolicy {
    /// Strict: any failed shard slot fails the whole query with that
    /// slot's typed error (the historical all-or-nothing behaviour).
    Fail,
    /// Available: answer over whatever shards survive — even one — and
    /// report the gap through [`Coverage`].
    Partial,
    /// Middle ground: answer if at least `q` shard slots contributed,
    /// otherwise fail with the first slot error. `Quorum(total)` is
    /// `Fail`; `Quorum(1)` is `Partial` (except that zero survivors
    /// always fail, under every policy).
    Quorum(u32),
}

impl DegradePolicy {
    /// Minimum number of answering shard slots (out of `total`) this
    /// policy demands before an answer may be returned.
    pub fn required(&self, total: u32) -> u32 {
        match self {
            DegradePolicy::Fail => total,
            DegradePolicy::Partial => 1.min(total),
            DegradePolicy::Quorum(q) => (*q).clamp(1, total.max(1)).min(total),
        }
    }

    /// Stable human-readable label (server JSON, bench tables).
    pub fn label(&self) -> &'static str {
        match self {
            DegradePolicy::Fail => "fail",
            DegradePolicy::Partial => "partial",
            DegradePolicy::Quorum(_) => "quorum",
        }
    }
}

/// A completed query: the matches (best first) and the work they cost.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchOutcome {
    /// Up to `k` matches, sorted by ascending distance (ascending
    /// length-normalised distance for multi-length backends).
    pub matches: Vec<BackendMatch>,
    /// Per-query work counters.
    pub stats: BackendStats,
    /// Shard coverage of the answer — `None` for backends that always
    /// see their whole collection, `Some` for distributed fan-outs (see
    /// [`Coverage`]).
    pub coverage: Option<Coverage>,
}

impl SearchOutcome {
    /// The best match, if any.
    pub fn best(&self) -> Option<&BackendMatch> {
        self.matches.first()
    }

    /// Whether this answer is missing part of the collection (see
    /// [`Coverage::degraded`]); `false` when coverage is untracked.
    pub fn degraded(&self) -> bool {
        self.coverage.is_some_and(|c| c.degraded())
    }
}

/// The unified similarity-search surface every engine in the workspace
/// implements: ONEX's grouping-based engine and the baselines it is
/// demonstrated against (UCR Suite, FRM/ST-index, EBSM, SPRING).
///
/// The contract, which `tests/backend_conformance.rs` checks for every
/// implementation:
///
/// * a query cut verbatim from a stored series comes back with distance
///   ≈ 0 as the best match;
/// * `k_best` returns at most `k` matches, sorted best-first, all
///   referring to distinct windows;
/// * [`BackendStats::work`] is monotone non-decreasing in `k`;
/// * an empty query, `k == 0`, or a non-finite sample yields
///   `Err(OnexError::InvalidQuery)` — never a panic.
pub trait SimilaritySearch {
    /// Short stable identifier (`"onex"`, `"ucrsuite"`, `"frm"`,
    /// `"ebsm"`, `"spring"`), used by the server's `?backend=` parameter
    /// and the bench tables.
    fn name(&self) -> &'static str;

    /// What this backend can do and what its distances mean.
    fn capabilities(&self) -> Capabilities;

    /// The `k` most similar stored windows, best first.
    ///
    /// # Errors
    /// [`OnexError::InvalidQuery`] when `k == 0`, the query is empty or
    /// contains non-finite values, or the query violates a backend
    /// length constraint.
    fn k_best(&self, query: &[f64], k: usize) -> Result<SearchOutcome, OnexError>;

    /// The single best match (`k_best` with `k = 1`).
    ///
    /// # Errors
    /// Same conditions as [`SimilaritySearch::k_best`].
    fn best_match(&self, query: &[f64]) -> Result<SearchOutcome, OnexError> {
        self.k_best(query, 1)
    }

    /// The data epoch this backend currently answers from (see
    /// [`Epoch`](crate::Epoch)). Mutable backends bump it on every
    /// committed ingest, so decorators (result caches, epoch-pinned
    /// fan-outs) can detect staleness without exclusive access; the
    /// default — for backends over immutable collections — is a constant
    /// `0`.
    fn epoch(&self) -> crate::Epoch {
        0
    }
}

/// One reported stream subsequence (mirrors SPRING's match shape without
/// depending on the spring crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamMatch {
    /// Index of the first covered stream point.
    pub start: usize,
    /// Index of the last covered stream point (inclusive).
    pub end: usize,
    /// Distance under the backend's metric (root scale).
    pub distance: f64,
}

/// Extension for backends that can monitor a stored series as if it were
/// an unbounded stream, reporting every disjoint subsequence within
/// `epsilon` of the pattern (SPRING's stream-monitoring question).
pub trait StreamingSearch: SimilaritySearch {
    /// All disjoint matches of `pattern` within `epsilon` over series
    /// `target` of the backend's collection.
    ///
    /// # Errors
    /// [`OnexError::InvalidQuery`] for an empty/non-finite pattern or a
    /// negative/NaN `epsilon`; [`OnexError::UnknownSeries`] when `target`
    /// is out of range.
    fn monitor(
        &self,
        target: u32,
        pattern: &[f64],
        epsilon: f64,
    ) -> Result<Vec<StreamMatch>, OnexError>;
}

/// Shared argument validation for `k_best` implementations: rejects
/// `k == 0`, empty queries and non-finite samples with
/// [`OnexError::InvalidQuery`].
pub fn validate_query(query: &[f64], k: usize) -> Result<(), OnexError> {
    if k == 0 {
        return Err(OnexError::invalid_query("k must be positive"));
    }
    if query.is_empty() {
        return Err(OnexError::invalid_query("query must be non-empty"));
    }
    if let Some(i) = query.iter().position(|v| !v.is_finite()) {
        return Err(OnexError::invalid_query(format!(
            "query sample {i} is not finite"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_query_catches_the_panic_cases() {
        assert!(matches!(
            validate_query(&[1.0], 0),
            Err(OnexError::InvalidQuery(_))
        ));
        assert!(matches!(
            validate_query(&[], 1),
            Err(OnexError::InvalidQuery(_))
        ));
        assert!(matches!(
            validate_query(&[1.0, f64::NAN], 1),
            Err(OnexError::InvalidQuery(_))
        ));
        assert!(validate_query(&[1.0, 2.0], 3).is_ok());
    }

    #[test]
    fn outcome_helpers() {
        let mut o = SearchOutcome::default();
        assert!(o.best().is_none());
        o.matches.push(BackendMatch {
            series: 2,
            start: 5,
            len: 8,
            distance: 0.25,
        });
        assert_eq!(o.best().unwrap().end(), 13);
        let mut s = BackendStats {
            examined: 3,
            pruned: 1,
            distance_computations: 2,
            tiers: TierPrunes {
                l0: 1,
                kim: 0,
                keogh: 0,
                dtw_abandoned: 1,
            },
        };
        s += BackendStats {
            examined: 1,
            pruned: 0,
            distance_computations: 1,
            tiers: TierPrunes {
                l0: 2,
                kim: 1,
                keogh: 3,
                dtw_abandoned: 0,
            },
        };
        assert_eq!(s.work(), 7);
        assert_eq!(s.tiers.l0, 3);
        assert_eq!(s.tiers.kim, 1);
        assert_eq!(s.tiers.keogh, 3);
        assert_eq!(s.tiers.dtw_abandoned, 1);
    }

    #[test]
    fn coverage_flags_degradation_exactly_when_partial() {
        assert!(!Coverage::full(4).degraded());
        assert!(Coverage {
            shards_answered: 3,
            shards_total: 4
        }
        .degraded());
        let mut o = SearchOutcome::default();
        assert!(!o.degraded(), "untracked coverage is not degraded");
        o.coverage = Some(Coverage {
            shards_answered: 1,
            shards_total: 2,
        });
        assert!(o.degraded());
        o.coverage = Some(Coverage::full(2));
        assert!(!o.degraded());
    }

    #[test]
    fn degrade_policy_required_counts() {
        assert_eq!(DegradePolicy::Fail.required(4), 4);
        assert_eq!(DegradePolicy::Partial.required(4), 1);
        assert_eq!(DegradePolicy::Partial.required(0), 0);
        assert_eq!(DegradePolicy::Quorum(3).required(4), 3);
        // A quorum larger than the fleet clamps to Fail semantics, and a
        // zero quorum still demands one survivor.
        assert_eq!(DegradePolicy::Quorum(9).required(4), 4);
        assert_eq!(DegradePolicy::Quorum(0).required(4), 1);
        for p in [
            DegradePolicy::Fail,
            DegradePolicy::Partial,
            DegradePolicy::Quorum(2),
        ] {
            assert!(!p.label().is_empty());
        }
    }

    #[test]
    fn metric_labels_are_distinct() {
        let labels = [
            Metric::RawEuclidean.label(),
            Metric::RawDtw.label(),
            Metric::ZNormalizedDtw.label(),
            Metric::SubsequenceDtw.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
