use std::fmt;

/// The workspace-wide error type: every fallible public operation across
/// the ONEX crates reports failures through this enum, so callers match
/// on variants instead of parsing strings and servers map variants to
/// protocol status codes mechanically.
///
/// The demo's client–server architecture is the forcing function: a
/// server surviving millions of users' malformed requests must be able to
/// tell "your query is bad" (4xx) apart from "your artefacts do not
/// belong together" (conflict) and "the disk failed" (5xx) without
/// guessing from prose.
#[derive(Debug)]
#[non_exhaustive]
pub enum OnexError {
    /// A build- or run-time configuration violated a documented
    /// constraint (non-positive threshold, zero stride, band fraction out
    /// of range, ...).
    InvalidConfig(String),
    /// A query violated a precondition: empty query, `k == 0`, a
    /// non-finite sample, or a length the backend cannot serve.
    InvalidQuery(String),
    /// Two artefacts that must describe the same data do not — e.g. a
    /// persisted base re-attached to a dataset with a different number of
    /// series, or a base extended under a different configuration.
    DatasetMismatch(String),
    /// A request referenced a series name that is not in the dataset.
    UnknownSeries(String),
    /// The operation is not supported by this backend (capability
    /// mismatch rather than a malformed request).
    Unsupported(String),
    /// Stored or received data failed validation: parse errors, corrupt
    /// persisted artefacts, violated structural invariants.
    InvalidData(String),
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// An internal invariant broke on the server side — e.g. a
    /// construction worker panicked. Never the caller's fault (a 5xx in
    /// HTTP terms); carried as an error so one poisoned computation
    /// cannot abort a process serving other requests.
    Internal(String),
    /// Talking to a remote peer failed: the peer is unreachable, a frame
    /// failed to decode, the protocol versions disagree, the connection
    /// died mid-exchange, or a deadline passed. Distinct from
    /// [`OnexError::Io`] because the *fault domain* differs — the local
    /// process is healthy, a dependency is not — which is exactly the
    /// 502-vs-500 distinction HTTP draws.
    Network(NetworkError),
    /// A persisted artefact (base segment file) failed to load or
    /// validate: bad magic, unsupported format version, checksum
    /// mismatch, malformed layout. Distinct from [`OnexError::Io`]
    /// (the read itself succeeded; the *bytes* are wrong) and from
    /// [`OnexError::InvalidData`] (which covers request payloads): the
    /// typed [`StorageErrorKind`] lets callers tell "upgrade your
    /// binary" from "your file is corrupt" without parsing prose.
    Storage(StorageError),
}

/// What went wrong with a persisted artefact — the typed payload of
/// [`OnexError::Storage`].
#[derive(Debug)]
pub struct StorageError {
    /// The failure class.
    pub kind: StorageErrorKind,
    /// Human-readable context (section name, offset, expected/actual
    /// checksums, ...).
    pub detail: String,
}

impl StorageError {
    /// Construct a typed storage failure.
    pub fn new(kind: StorageErrorKind, detail: impl Into<String>) -> Self {
        StorageError {
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.detail)
    }
}

/// Failure classes of [`StorageError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StorageErrorKind {
    /// The file does not start with an ONEX base magic — it is not a
    /// base file at all.
    BadMagic,
    /// The file declares a format version this binary cannot read.
    UnsupportedVersion,
    /// A checksum over the file (v1) or one of its sections (v2) did not
    /// match — the bytes were damaged after writing.
    ChecksumMismatch,
    /// The bytes decoded but violate the format's structural rules:
    /// out-of-bounds section, overlapping directory entries, truncated
    /// record, impossible count.
    Corrupt,
}

impl StorageErrorKind {
    /// Stable human-readable label for the class.
    pub fn label(&self) -> &'static str {
        match self {
            StorageErrorKind::BadMagic => "bad magic",
            StorageErrorKind::UnsupportedVersion => "unsupported format version",
            StorageErrorKind::ChecksumMismatch => "checksum mismatch",
            StorageErrorKind::Corrupt => "corrupt base file",
        }
    }
}

/// What went wrong on the wire — the typed payload of
/// [`OnexError::Network`], so callers can distinguish "retry elsewhere"
/// (unreachable, timeout) from "never retry" (version mismatch) without
/// parsing prose.
#[derive(Debug)]
pub struct NetworkError {
    /// The failure class.
    pub kind: NetworkErrorKind,
    /// Human-readable context (peer address, frame offset, ...).
    pub detail: String,
}

impl NetworkError {
    /// Construct a typed network failure.
    pub fn new(kind: NetworkErrorKind, detail: impl Into<String>) -> Self {
        NetworkError {
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.detail)
    }
}

/// Failure classes of [`NetworkError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum NetworkErrorKind {
    /// The peer could not be reached (connect refused/timed out, even
    /// after the configured reconnect attempts).
    Unreachable,
    /// The peer was reached but a response deadline passed.
    Timeout,
    /// The connection closed mid-exchange (EOF inside a frame, or before
    /// an expected reply).
    Closed,
    /// Bytes arrived but did not decode: bad checksum, oversized or
    /// truncated frame, unknown message kind, malformed payload.
    Decode,
    /// The peer speaks a different protocol version (or is not an ONEX
    /// peer at all). Never retried — reconnecting cannot fix it.
    VersionMismatch,
}

impl NetworkErrorKind {
    /// Stable human-readable label for the class.
    pub fn label(&self) -> &'static str {
        match self {
            NetworkErrorKind::Unreachable => "peer unreachable",
            NetworkErrorKind::Timeout => "network timeout",
            NetworkErrorKind::Closed => "connection closed",
            NetworkErrorKind::Decode => "frame decode failure",
            NetworkErrorKind::VersionMismatch => "protocol version mismatch",
        }
    }
}

impl OnexError {
    /// Shorthand constructor for [`OnexError::InvalidQuery`].
    pub fn invalid_query(msg: impl Into<String>) -> Self {
        OnexError::InvalidQuery(msg.into())
    }

    /// Shorthand constructor for [`OnexError::InvalidConfig`].
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        OnexError::InvalidConfig(msg.into())
    }

    /// Whether the failure is the caller's fault (a 4xx in HTTP terms):
    /// everything except [`OnexError::Io`] and [`OnexError::Internal`].
    pub fn is_client_error(&self) -> bool {
        self.http_status() < 500
    }

    /// The HTTP status this error maps to — the single source of truth
    /// the server's error responses are derived from.
    ///
    /// The match is deliberately **exhaustive** (no `_` arm). The enum is
    /// `#[non_exhaustive]` for downstream crates, but within this crate
    /// the compiler still demands every variant, so adding a variant
    /// without deciding its status is a compile error rather than a
    /// silent 500 — the failure mode a catch-all arm would reintroduce.
    pub fn http_status(&self) -> u16 {
        match self {
            OnexError::InvalidConfig(_) => 400,
            OnexError::InvalidQuery(_) => 400,
            OnexError::Unsupported(_) => 400,
            OnexError::UnknownSeries(_) => 404,
            OnexError::DatasetMismatch(_) => 409,
            OnexError::InvalidData(_) => 422,
            OnexError::Io(_) => 500,
            OnexError::Internal(_) => 500,
            // A passed deadline is 504 Gateway Timeout — the dependency
            // was reached but did not answer in time — while every other
            // network fault is 502 Bad Gateway. The kind match is as
            // exhaustive as the variant match, for the same reason.
            OnexError::Network(e) => match e.kind {
                NetworkErrorKind::Timeout => 504,
                NetworkErrorKind::Unreachable
                | NetworkErrorKind::Closed
                | NetworkErrorKind::Decode
                | NetworkErrorKind::VersionMismatch => 502,
            },
            // A damaged or foreign base file is unprocessable content
            // (422) — the server is healthy, the artefact it was handed
            // is not — matching the InvalidData classification above.
            OnexError::Storage(_) => 422,
        }
    }

    /// Shorthand constructor for [`OnexError::Network`].
    pub fn network(kind: NetworkErrorKind, detail: impl Into<String>) -> Self {
        OnexError::Network(NetworkError::new(kind, detail))
    }

    /// Shorthand constructor for [`OnexError::Storage`].
    pub fn storage(kind: StorageErrorKind, detail: impl Into<String>) -> Self {
        OnexError::Storage(StorageError::new(kind, detail))
    }
}

impl fmt::Display for OnexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnexError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            OnexError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            OnexError::DatasetMismatch(msg) => write!(f, "dataset mismatch: {msg}"),
            OnexError::UnknownSeries(name) => write!(f, "unknown series {name:?}"),
            OnexError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            OnexError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            OnexError::Io(e) => write!(f, "i/o error: {e}"),
            OnexError::Internal(msg) => write!(f, "internal error: {msg}"),
            OnexError::Network(e) => write!(f, "network error: {e}"),
            OnexError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for OnexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OnexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OnexError {
    fn from(e: std::io::Error) -> Self {
        OnexError::Io(e)
    }
}

impl From<onex_tseries::Error> for OnexError {
    fn from(e: onex_tseries::Error) -> Self {
        use onex_tseries::Error as E;
        match e {
            E::Io(io) => OnexError::Io(io),
            E::UnknownSeries(name) => OnexError::UnknownSeries(name),
            e @ E::OutOfBounds { .. } => OnexError::InvalidQuery(e.to_string()),
            e @ E::Parse { .. } => OnexError::InvalidData(e.to_string()),
            e @ E::InvalidArgument(_) => OnexError::InvalidQuery(e.to_string()),
            other => OnexError::InvalidData(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_category() {
        assert!(OnexError::invalid_query("empty query")
            .to_string()
            .contains("invalid query"));
        assert!(OnexError::invalid_config("st must be positive")
            .to_string()
            .contains("invalid configuration"));
        assert!(OnexError::UnknownSeries("MA".into())
            .to_string()
            .contains("\"MA\""));
    }

    #[test]
    fn io_round_trips_source() {
        use std::error::Error as _;
        let e = OnexError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(!e.is_client_error());
        assert!(OnexError::invalid_query("x").is_client_error());
    }

    #[test]
    fn internal_errors_are_server_faults() {
        let e = OnexError::Internal("worker panicked".into());
        assert!(!e.is_client_error());
        assert!(e.to_string().contains("internal error"));
    }

    /// Enumerates **every** variant's status. Both this function and
    /// [`OnexError::http_status`] match without a wildcard arm, so a new
    /// variant fails the build in two places until its status — and this
    /// test's expectation — are written down.
    fn expected_status(e: &OnexError) -> u16 {
        match e {
            OnexError::InvalidConfig(_) => 400,
            OnexError::InvalidQuery(_) => 400,
            OnexError::Unsupported(_) => 400,
            OnexError::UnknownSeries(_) => 404,
            OnexError::DatasetMismatch(_) => 409,
            OnexError::InvalidData(_) => 422,
            OnexError::Io(_) => 500,
            OnexError::Internal(_) => 500,
            OnexError::Network(n) => match n.kind {
                NetworkErrorKind::Timeout => 504,
                _ => 502,
            },
            OnexError::Storage(_) => 422,
        }
    }

    #[test]
    fn every_variant_has_a_decided_http_status() {
        let all = [
            OnexError::InvalidConfig("c".into()),
            OnexError::InvalidQuery("q".into()),
            OnexError::DatasetMismatch("m".into()),
            OnexError::UnknownSeries("s".into()),
            OnexError::Unsupported("u".into()),
            OnexError::InvalidData("d".into()),
            OnexError::Io(std::io::Error::other("io")),
            OnexError::Internal("i".into()),
            OnexError::network(NetworkErrorKind::Unreachable, "no shard at :9999"),
            OnexError::network(NetworkErrorKind::Timeout, "cluster reply deadline"),
            OnexError::storage(StorageErrorKind::ChecksumMismatch, "section CONFIG"),
        ];
        for e in &all {
            let status = e.http_status();
            assert_eq!(status, expected_status(e), "{e}");
            assert!((400..=599).contains(&status), "{e}: {status}");
            assert_eq!(e.is_client_error(), status < 500, "{e}");
        }
        // Status classes partition exactly as documented.
        assert_eq!(OnexError::UnknownSeries("x".into()).http_status(), 404);
        assert_eq!(OnexError::DatasetMismatch("x".into()).http_status(), 409);
        assert_eq!(OnexError::InvalidData("x".into()).http_status(), 422);
    }

    #[test]
    fn network_errors_are_gateway_faults_not_client_faults() {
        for kind in [
            NetworkErrorKind::Unreachable,
            NetworkErrorKind::Timeout,
            NetworkErrorKind::Closed,
            NetworkErrorKind::Decode,
            NetworkErrorKind::VersionMismatch,
        ] {
            let e = OnexError::network(kind, "peer 127.0.0.1:7001");
            // Deadlines are 504 Gateway Timeout; every other wire fault
            // is 502 Bad Gateway. Both are gateway-side, never 4xx.
            let want = if kind == NetworkErrorKind::Timeout {
                504
            } else {
                502
            };
            assert_eq!(e.http_status(), want, "{e}");
            assert!(!e.is_client_error(), "{e}");
            assert!(e.to_string().contains("network error"), "{e}");
            assert!(e.to_string().contains(kind.label()), "{e}");
        }
    }

    #[test]
    fn storage_errors_are_unprocessable_content_not_server_faults() {
        for kind in [
            StorageErrorKind::BadMagic,
            StorageErrorKind::UnsupportedVersion,
            StorageErrorKind::ChecksumMismatch,
            StorageErrorKind::Corrupt,
        ] {
            let e = OnexError::storage(kind, "base.onexseg");
            assert_eq!(e.http_status(), 422, "{e}");
            assert!(e.is_client_error(), "{e}");
            assert!(e.to_string().contains("storage error"), "{e}");
            assert!(e.to_string().contains(kind.label()), "{e}");
        }
        // The I/O half of a failed load stays OnexError::Io → 500: the
        // 500/422 split distinguishes "the disk failed" from "the bytes
        // are wrong".
        assert_eq!(
            OnexError::from(std::io::Error::other("disk")).http_status(),
            500
        );
    }

    #[test]
    fn tseries_errors_map_to_typed_variants() {
        use onex_tseries::Error as E;
        assert!(matches!(
            OnexError::from(E::UnknownSeries("zz".into())),
            OnexError::UnknownSeries(_)
        ));
        assert!(matches!(
            OnexError::from(E::OutOfBounds {
                series: "a".into(),
                start: 9,
                len: 9,
                available: 4
            }),
            OnexError::InvalidQuery(_)
        ));
        assert!(matches!(
            OnexError::from(E::Parse {
                line: 2,
                message: "bad float".into()
            }),
            OnexError::InvalidData(_)
        ));
        assert!(matches!(
            OnexError::from(E::Io(std::io::Error::other("x"))),
            OnexError::Io(_)
        ));
    }
}
