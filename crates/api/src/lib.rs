//! # onex-api — the blessed ONEX query surface
//!
//! The ONEX demo's pitch (SIGMOD'17) is one query surface over multiple
//! engines: the grouping-based ONEX base against the UCR Suite \[6\], the
//! FRM/ST-index \[4\], EBSM \[1\] and SPRING \[7\]. This crate is that surface,
//! reduced to its two load-bearing abstractions:
//!
//! * [`SimilaritySearch`] — the backend trait: `k_best` / `best_match`,
//!   capability introspection ([`Capabilities`], [`Metric`]) and
//!   per-query work accounting ([`BackendStats`]). A streaming-capable
//!   extension, [`StreamingSearch`], covers SPRING-style monitors.
//! * [`OnexError`] — the workspace-wide typed error every fallible public
//!   operation returns, replacing ad-hoc stringly-typed results and
//!   panics on malformed queries.
//!
//! Two small pruning primitives back every top-k search: [`BestK`], the
//! bounded best-k accumulator, and [`SharedBound`], the lock-free
//! monotone threshold that lets concurrent workers (per-shard searchers,
//! per-length passes) share one query-global k-th-best bound.
//!
//! Live ingest rides on one more primitive: [`Versioned`], the
//! epoch-stamped snapshot cell whose [`ReadTxn`]/[`WriteTxn`] pair lets
//! queries pin an immutable base while appends build the next epoch off
//! to the side and publish it atomically
//! ([`SimilaritySearch::epoch`] exposes the pinned counter).
//!
//! The crate sits at the bottom of the workspace dependency graph (only
//! `onex-tseries` below it), so every engine crate can speak the shared
//! vocabulary without cycles. Concrete adapters live in
//! `onex_core::backends`; the facade crate re-exports everything here as
//! the stable entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bound;
mod error;
mod search;
mod topk;
mod tx;

pub use bound::SharedBound;
pub use error::{NetworkError, NetworkErrorKind, OnexError, StorageError, StorageErrorKind};
pub use search::{
    validate_query, BackendMatch, BackendStats, Capabilities, Coverage, DegradePolicy, Metric,
    SearchOutcome, SimilaritySearch, StreamMatch, StreamingSearch, TierPrunes,
};
pub use topk::BestK;
pub use tx::{Epoch, ReadTxn, Versioned, WriteTxn};
