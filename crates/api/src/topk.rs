//! Bounded best-`k` accumulation — the shared machinery behind every
//! backend's top-k search (UCR Suite window scans, FRM's incremental
//! nearest-neighbour traversal, ...).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Total-ordered f64 heap key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A bounded best-`k` accumulator: a max-heap of at most `k`
/// `(key, payload)` entries whose root is the current k-th best key,
/// exposed as the pruning bound a search threads through its scan.
///
/// ```
/// use onex_api::BestK;
///
/// let mut acc: BestK<&'static str> = BestK::new(2);
/// assert!(acc.bound().is_infinite()); // underfull: nothing provably out
/// acc.offer(3.0, "far");
/// acc.offer(1.0, "near");
/// acc.offer(2.0, "mid"); // evicts "far"
/// assert_eq!(acc.bound(), 2.0);
/// assert_eq!(acc.into_sorted(), vec![(1.0, "near"), (2.0, "mid")]);
/// ```
#[derive(Debug, Clone)]
pub struct BestK<P> {
    k: usize,
    heap: BinaryHeap<(OrdF64, P)>,
}

impl<P: Ord> BestK<P> {
    /// Accumulator keeping the `k` entries with the smallest keys
    /// (`k` must be positive).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        BestK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Current pruning bound: the k-th best key, or infinity while fewer
    /// than `k` entries have been kept (nothing can be ruled out yet).
    pub fn bound(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().expect("heap non-empty").0 .0
        }
    }

    /// Keep `(key, payload)` if it beats the current k-th best, evicting
    /// the worst entry when over capacity. Returns the updated bound.
    pub fn offer(&mut self, key: f64, payload: P) -> f64 {
        if key < self.bound() {
            self.heap.push((OrdF64(key), payload));
            if self.heap.len() > self.k {
                self.heap.pop();
            }
        }
        self.bound()
    }

    /// Number of entries currently kept (≤ `k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The kept entries, ascending by `(key, payload)` — deterministic
    /// even under key ties.
    pub fn into_sorted(self) -> Vec<(f64, P)> {
        let mut out: Vec<(f64, P)> = self.heap.into_iter().map(|(k, p)| (k.0, p)).collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_smallest_and_reports_the_bound() {
        let mut acc: BestK<usize> = BestK::new(3);
        for (i, key) in [5.0, 1.0, 4.0, 2.0, 3.0, 0.5].into_iter().enumerate() {
            acc.offer(key, i);
        }
        assert_eq!(acc.len(), 3);
        assert_eq!(acc.bound(), 2.0);
        let sorted = acc.into_sorted();
        assert_eq!(
            sorted.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![0.5, 1.0, 2.0]
        );
    }

    #[test]
    fn underfull_bound_is_infinite_and_ties_break_by_payload() {
        let mut acc: BestK<u32> = BestK::new(4);
        assert!(acc.bound().is_infinite());
        assert!(acc.is_empty());
        acc.offer(1.0, 7);
        acc.offer(1.0, 3);
        assert!(acc.bound().is_infinite(), "still underfull");
        assert_eq!(acc.into_sorted(), vec![(1.0, 3), (1.0, 7)]);
    }

    #[test]
    fn entries_at_or_above_the_bound_are_rejected() {
        let mut acc: BestK<u32> = BestK::new(1);
        acc.offer(1.0, 0);
        let bound = acc.offer(1.0, 1); // equal key: not an improvement
        assert_eq!(bound, 1.0);
        assert_eq!(acc.into_sorted(), vec![(1.0, 0)]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_is_rejected() {
        let _ = BestK::<u32>::new(0);
    }
}
