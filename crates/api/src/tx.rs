//! Snapshot-versioned state cells: the epoch/transaction layer behind
//! live ingest.
//!
//! A [`Versioned<T>`] holds one immutable, epoch-stamped value behind an
//! `Arc`. Readers open a [`ReadTxn`] — an `Arc` clone pinning the value
//! published at some epoch — and keep using it for as long as they like;
//! nothing a writer does can change what a pinned snapshot sees. Writers
//! open a [`WriteTxn`], which clones the current value into a private
//! working copy ("build aside"), mutate that copy off to the side, and
//! either [`WriteTxn::commit`] — publishing the copy atomically under the
//! next epoch — or drop the transaction, which discards the copy and
//! leaves the published value untouched. There is no partially-updated
//! intermediate state for anyone to observe, by construction.
//!
//! The concurrency contract:
//!
//! * **Readers never block on writers.** Opening a read transaction takes
//!   the publish lock only long enough to clone an `Arc` — never while a
//!   writer is building (writers build outside that lock and re-take it
//!   only for the pointer swap).
//! * **Writers serialise.** A second `write()` blocks until the first
//!   transaction commits or drops, so epochs advance one at a time and a
//!   committed epoch `e+1` is always derived from epoch `e`.
//! * **Failure is a no-op.** Any error path that drops the transaction
//!   without committing leaves the current epoch — value and counter —
//!   exactly as it was.
//!
//! Epochs are monotone (`u64`, starting at 0) and stamp every published
//! value, so caches can compare "the epoch I filled at" against "the
//! epoch the backend answers from" ([`SimilaritySearch::epoch`]) and
//! invalidate exactly when data actually changed.
//!
//! [`SimilaritySearch::epoch`]: crate::SimilaritySearch::epoch

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Monotone version counter of a [`Versioned`] cell. Epoch 0 is the
/// initially-published value; every committed write transaction bumps it
/// by one.
pub type Epoch = u64;

/// An immutable value stamped with the epoch it was published under.
#[derive(Debug)]
struct Pinned<T> {
    epoch: Epoch,
    value: T,
}

/// A snapshot-versioned cell: one published `(epoch, value)` pair, read
/// without blocking, replaced atomically by serialized writers — the
/// full read/write/rollback contract is documented on [`Versioned::read`]
/// and [`Versioned::write`].
pub struct Versioned<T> {
    /// The currently-published snapshot. Held only momentarily — by
    /// readers to clone the `Arc`, by committing writers to swap it.
    current: Mutex<Arc<Pinned<T>>>,
    /// Writer serialisation: held for a write transaction's whole
    /// lifetime, so at most one next-epoch build is in flight.
    writer: Mutex<()>,
}

/// Recover the guard from a poisoned mutex. The cell's invariant — the
/// published `Arc` is always a complete, committed snapshot — holds even
/// if a panic unwound through a lock holder, because mutation never
/// happens in place: readers only clone, writers only swap in a fully
/// built value.
fn relock<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

impl<T> Versioned<T> {
    /// Publish `value` as epoch 0.
    pub fn new(value: T) -> Self {
        Versioned {
            current: Mutex::new(Arc::new(Pinned { epoch: 0, value })),
            writer: Mutex::new(()),
        }
    }

    /// Open a read transaction pinning the currently-published epoch.
    /// Never blocks on an in-progress write (only on another reader's or
    /// committer's momentary `Arc` clone/swap).
    pub fn read(&self) -> ReadTxn<T> {
        let guard = relock(self.current.lock());
        ReadTxn {
            pinned: Arc::clone(&guard),
        }
    }

    /// The currently-published epoch.
    pub fn epoch(&self) -> Epoch {
        relock(self.current.lock()).epoch
    }
}

impl<T: Clone> Versioned<T> {
    /// Open a write transaction: blocks until any in-flight writer
    /// finishes, then clones the current value into a private working
    /// copy. Mutate via [`WriteTxn::value_mut`], then
    /// [`WriteTxn::commit`] to publish — or drop to roll back.
    pub fn write(&self) -> WriteTxn<'_, T> {
        let guard = relock(self.writer.lock());
        let base = self.read();
        WriteTxn {
            cell: self,
            _writer: guard,
            base_epoch: base.epoch(),
            working: base.deref().clone(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Versioned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pinned = relock(self.current.lock());
        f.debug_struct("Versioned")
            .field("epoch", &pinned.epoch)
            .field("value", &pinned.value)
            .finish()
    }
}

/// A read transaction: an owned pin on one published snapshot. Clones
/// share the pin; the snapshot stays alive (and immutable) for as long
/// as any pin does, regardless of how many epochs are published after.
pub struct ReadTxn<T> {
    pinned: Arc<Pinned<T>>,
}

impl<T> ReadTxn<T> {
    /// The epoch this transaction pinned.
    pub fn epoch(&self) -> Epoch {
        self.pinned.epoch
    }
}

impl<T> Clone for ReadTxn<T> {
    fn clone(&self) -> Self {
        ReadTxn {
            pinned: Arc::clone(&self.pinned),
        }
    }
}

impl<T> Deref for ReadTxn<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.pinned.value
    }
}

impl<T: fmt::Debug> fmt::Debug for ReadTxn<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadTxn")
            .field("epoch", &self.pinned.epoch)
            .field("value", &self.pinned.value)
            .finish()
    }
}

/// A write transaction: an exclusive build-aside working copy of the
/// cell's value. Published only by [`commit`](WriteTxn::commit);
/// dropping the transaction first discards every change.
pub struct WriteTxn<'a, T> {
    cell: &'a Versioned<T>,
    _writer: MutexGuard<'a, ()>,
    base_epoch: Epoch,
    working: T,
}

impl<T> WriteTxn<'_, T> {
    /// The epoch this transaction's working copy was cloned from (the
    /// commit will publish `base_epoch() + 1`).
    pub fn base_epoch(&self) -> Epoch {
        self.base_epoch
    }

    /// The working copy, read-only.
    pub fn value(&self) -> &T {
        &self.working
    }

    /// The working copy, mutable. Changes are invisible to readers until
    /// [`commit`](WriteTxn::commit).
    pub fn value_mut(&mut self) -> &mut T {
        &mut self.working
    }

    /// Publish the working copy atomically as the next epoch and return
    /// that epoch. Readers that already hold a [`ReadTxn`] keep their
    /// pinned snapshot; new reads see the committed value.
    pub fn commit(self) -> Epoch {
        let epoch = self.base_epoch + 1;
        let next = Arc::new(Pinned {
            epoch,
            value: self.working,
        });
        *relock(self.cell.current.lock()) = next;
        epoch
    }
}

impl<T: fmt::Debug> fmt::Debug for WriteTxn<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriteTxn")
            .field("base_epoch", &self.base_epoch)
            .field("working", &self.working)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_publishes_the_next_epoch() {
        let cell = Versioned::new(vec![1, 2]);
        assert_eq!(cell.epoch(), 0);
        let mut txn = cell.write();
        assert_eq!(txn.base_epoch(), 0);
        txn.value_mut().push(3);
        // Readers opened mid-transaction still see epoch 0.
        let pinned = cell.read();
        assert_eq!((pinned.epoch(), pinned.len()), (0, 2));
        assert_eq!(txn.commit(), 1);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(*cell.read(), vec![1, 2, 3]);
        // The pre-commit pin is unaffected by the publish.
        assert_eq!(*pinned, vec![1, 2]);
    }

    #[test]
    fn dropping_a_write_txn_rolls_back() {
        let cell = Versioned::new(String::from("stable"));
        {
            let mut txn = cell.write();
            txn.value_mut().push_str("-scratch");
            assert_eq!(txn.value(), "stable-scratch");
        }
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.read(), "stable");
        // The writer lock was released: a fresh transaction can commit.
        let mut txn = cell.write();
        txn.value_mut().push_str("-v1");
        txn.commit();
        assert_eq!((cell.epoch(), cell.read().as_str()), (1, "stable-v1"));
    }

    #[test]
    fn reads_do_not_block_while_a_writer_builds() {
        let cell = Arc::new(Versioned::new(0u64));
        let txn = cell.write(); // writer "building" — holds the writer lock
        let cell2 = Arc::clone(&cell);
        // A reader on another thread must complete while the write
        // transaction is still open.
        let handle = std::thread::spawn(move || {
            let pin = cell2.read();
            (pin.epoch(), *pin)
        });
        assert_eq!(handle.join().unwrap(), (0, 0));
        drop(txn);
    }

    #[test]
    fn writers_serialise_and_epochs_stay_monotone() {
        let cell = Arc::new(Versioned::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        let mut txn = cell.write();
                        *txn.value_mut() += 1;
                        txn.commit();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // No lost updates: every commit derived from the previous epoch.
        let pin = cell.read();
        assert_eq!((pin.epoch(), *pin), (100, 100));
    }

    #[test]
    fn pins_keep_old_epochs_alive_across_many_publishes() {
        let cell = Versioned::new(0usize);
        let pins: Vec<ReadTxn<usize>> = (0..5)
            .map(|i| {
                let pin = cell.read();
                let mut txn = cell.write();
                *txn.value_mut() = i + 1;
                txn.commit();
                pin
            })
            .collect();
        for (i, pin) in pins.iter().enumerate() {
            assert_eq!((pin.epoch(), **pin), (i as Epoch, i));
        }
        assert_eq!(cell.epoch(), 5);
    }

    #[test]
    fn debug_impls_render_the_epoch() {
        let cell = Versioned::new(7u8);
        assert!(format!("{cell:?}").contains("epoch: 0"));
        assert!(format!("{:?}", cell.read()).contains("epoch: 0"));
        assert!(format!("{:?}", cell.write()).contains("base_epoch: 0"));
    }
}
