//! # onex-storage — segment format v2
//!
//! The container every ONEX base file (format v2) is stored in: a
//! page-aligned, fixed-stride, little-endian segment with a version
//! header, a section directory, and a 64-bit FNV-1a checksum per
//! section. Offsets are chosen so that every section can be borrowed
//! zero-copy from one `Vec<u8>` — or, later, an mmap — without any
//! decode-time allocation: [`Segment::section`] hands out `&[u8]`
//! slices, and the layers above decode fixed-stride records from them
//! on demand.
//!
//! The crate knows nothing about what the sections *mean* — section IDs
//! and record layouts belong to `onex_grouping::persist`. What it owns
//! is the contract a hostile or damaged file is validated against
//! before anything trusts it:
//!
//! * magic + version are checked first ([`MAGIC`], [`VERSION`]);
//! * the directory is bounds-checked against the file length *before*
//!   it is materialised (the same never-allocate-on-hostile-input rule
//!   `onex_net` enforces on frames);
//! * every directory entry must be page-aligned, in ascending offset
//!   order, non-overlapping, and inside the file;
//! * every section's checksum is verified at open — one linear hash
//!   pass over the bytes, no per-record allocation.
//!
//! [`Reader`] is the bounded little-endian field reader the format
//! decoders above are built on; its [`Reader::counted`] method
//! validates a count against the remaining bytes before the caller
//! allocates anything sized by it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod reader;
mod segment;

pub use reader::Reader;
pub use segment::{SectionInfo, Segment, SegmentBuilder, MAGIC, PAGE, VERSION};

/// 64-bit FNV-1a over `bytes` — the checksum function of both the v1
/// stream format and the v2 segment directory/sections.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Append a `u8` to an encode buffer.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32` to an encode buffer.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64` to an encode buffer.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian IEEE-754 `f64` to an encode buffer.
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn put_helpers_encode_little_endian() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0x0102_0304);
        put_u64(&mut out, 0x0a0b_0c0d_0e0f_1011);
        put_f64(&mut out, 1.5);
        assert_eq!(out.len(), 1 + 4 + 8 + 8);
        assert_eq!(out[0], 7);
        assert_eq!(&out[1..5], &[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(f64::from_le_bytes(out[13..21].try_into().unwrap()), 1.5);
    }
}
