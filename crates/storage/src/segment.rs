//! The segment container: header, section directory, page-aligned
//! payload sections, one FNV-1a checksum per section.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! 0   magic            [u8; 8]    "ONEXSEG2"
//! 8   version          u32        2
//! 12  section_count    u32
//! 16  directory_fnv    u64        FNV-1a over the directory bytes
//! 24  directory        32 B/entry id u32 | reserved u32 | offset u64
//!                                 | len u64 | section_fnv u64
//! ..  zero padding to the next 4096-byte boundary
//! ..  sections, each starting on a 4096-byte boundary,
//!     zero-padded up to the next boundary
//! ```
//!
//! Every structural rule is validated at [`Segment::from_bytes`] —
//! magic, version, directory bounds (checked against the file length
//! *before* the directory is materialised), per-entry alignment and
//! ordering, and every section checksum — so [`Segment::section`] can
//! be infallible and zero-copy afterwards.

use std::path::Path;

use onex_api::{OnexError, StorageErrorKind};

use crate::fnv1a64;

/// File magic of segment format v2 (v1 base files start `ONEXBASE`).
pub const MAGIC: [u8; 8] = *b"ONEXSEG2";

/// Format version written into the header.
pub const VERSION: u32 = 2;

/// Section alignment: every section starts on a `PAGE`-byte boundary,
/// so a future mmap-backed reader can hand out aligned slices directly.
pub const PAGE: usize = 4096;

/// Fixed size of the header before the directory.
const HEADER: usize = 24;

/// Fixed stride of one directory entry.
const DIR_ENTRY: usize = 32;

/// Upper bound on `section_count` — far above any real base file, low
/// enough that a hostile header cannot size a meaningful allocation.
const MAX_SECTIONS: usize = 1 << 16;

/// One validated directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Caller-assigned section identifier (layouts above define these).
    pub id: u32,
    /// Byte offset of the section payload in the file (page-aligned).
    pub offset: u64,
    /// Payload length in bytes (excludes alignment padding).
    pub len: u64,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
}

/// Accumulates sections and serialises them into one segment buffer.
#[derive(Debug, Default)]
pub struct SegmentBuilder {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SegmentBuilder {
    /// Start an empty segment.
    pub fn new() -> SegmentBuilder {
        SegmentBuilder::default()
    }

    /// Append a section. Sections are laid out in insertion order.
    ///
    /// # Panics
    /// If `id` was already added — duplicate section IDs would make
    /// [`Segment::section`] ambiguous, and the save paths that feed
    /// this builder control their IDs statically.
    pub fn section(&mut self, id: u32, bytes: Vec<u8>) -> &mut SegmentBuilder {
        assert!(
            self.sections.iter().all(|(existing, _)| *existing != id),
            "duplicate section id {id}"
        );
        self.sections.push((id, bytes));
        self
    }

    /// Serialise: compute offsets and checksums, emit header +
    /// directory + page-aligned sections.
    pub fn finish(self) -> Vec<u8> {
        let dir_end = HEADER + self.sections.len() * DIR_ENTRY;
        let mut offset = dir_end.next_multiple_of(PAGE);
        let mut directory = Vec::with_capacity(self.sections.len() * DIR_ENTRY);
        for (id, bytes) in &self.sections {
            directory.extend_from_slice(&id.to_le_bytes());
            directory.extend_from_slice(&0u32.to_le_bytes());
            directory.extend_from_slice(&(offset as u64).to_le_bytes());
            directory.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            directory.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
            offset = (offset + bytes.len()).next_multiple_of(PAGE);
        }

        let mut out = Vec::with_capacity(offset);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&directory).to_le_bytes());
        out.extend_from_slice(&directory);
        for (_, bytes) in &self.sections {
            out.resize(out.len().next_multiple_of(PAGE), 0);
            out.extend_from_slice(bytes);
        }
        out
    }
}

/// A validated, immutable segment: owns the file bytes once and hands
/// out borrowed slices per section.
#[derive(Debug)]
pub struct Segment {
    data: Vec<u8>,
    directory: Vec<SectionInfo>,
}

impl Segment {
    /// Read and validate a segment file.
    ///
    /// # Errors
    /// [`OnexError::Io`] if the file cannot be read;
    /// [`OnexError::Storage`] if the bytes are not a valid v2 segment.
    pub fn open(path: impl AsRef<Path>) -> Result<Segment, OnexError> {
        Segment::from_bytes(std::fs::read(path)?)
    }

    /// Validate `data` as a v2 segment and take ownership of it.
    ///
    /// One linear pass: header, directory structure, then every
    /// section's checksum. No allocation is sized by file-declared
    /// counts before the bytes backing them are proven to exist.
    ///
    /// # Errors
    /// [`OnexError::Storage`] describing the first violated rule.
    pub fn from_bytes(data: Vec<u8>) -> Result<Segment, OnexError> {
        let fail = |kind, detail: String| Err(OnexError::storage(kind, detail));
        if data.len() < HEADER {
            return fail(
                StorageErrorKind::Corrupt,
                format!("file is {} bytes, header needs {HEADER}", data.len()),
            );
        }
        if data[..8] != MAGIC {
            return fail(
                StorageErrorKind::BadMagic,
                format!("file starts {:?}, not {:?}", &data[..8], MAGIC),
            );
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return fail(
                StorageErrorKind::UnsupportedVersion,
                format!("file declares version {version}, this binary reads {VERSION}"),
            );
        }
        let count = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) as usize;
        // Bound the directory against both the hard cap and the actual
        // file length before materialising anything sized by `count`.
        let dir_bytes = count
            .checked_mul(DIR_ENTRY)
            .filter(|_| count <= MAX_SECTIONS);
        let dir_end = dir_bytes.and_then(|b| b.checked_add(HEADER));
        let dir_end = match dir_end {
            Some(end) if end <= data.len() => end,
            _ => {
                return fail(
                    StorageErrorKind::Corrupt,
                    format!(
                        "directory declares {count} sections but the file is {} bytes",
                        data.len()
                    ),
                )
            }
        };
        let declared = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes"));
        let actual = fnv1a64(&data[HEADER..dir_end]);
        if declared != actual {
            return fail(
                StorageErrorKind::ChecksumMismatch,
                format!("directory: expected {declared:#018x}, computed {actual:#018x}"),
            );
        }

        let mut directory = Vec::with_capacity(count);
        let mut prev_end = dir_end as u64;
        for i in 0..count {
            let e = &data[HEADER + i * DIR_ENTRY..HEADER + (i + 1) * DIR_ENTRY];
            let info = SectionInfo {
                id: u32::from_le_bytes(e[0..4].try_into().expect("4 bytes")),
                offset: u64::from_le_bytes(e[8..16].try_into().expect("8 bytes")),
                len: u64::from_le_bytes(e[16..24].try_into().expect("8 bytes")),
                checksum: u64::from_le_bytes(e[24..32].try_into().expect("8 bytes")),
            };
            if !info.offset.is_multiple_of(PAGE as u64) {
                return fail(
                    StorageErrorKind::Corrupt,
                    format!(
                        "section {} offset {} is not page-aligned",
                        info.id, info.offset
                    ),
                );
            }
            // Ascending offsets past the previous section's end rule out
            // both overlap and a section inside the directory.
            if info.offset < prev_end {
                return fail(
                    StorageErrorKind::Corrupt,
                    format!(
                        "section {} at offset {} overlaps bytes up to {prev_end}",
                        info.id, info.offset
                    ),
                );
            }
            let end = match info.offset.checked_add(info.len) {
                Some(end) if end <= data.len() as u64 => end,
                _ => {
                    return fail(
                        StorageErrorKind::Corrupt,
                        format!(
                            "section {} ({} bytes at {}) runs past the {}-byte file",
                            info.id,
                            info.len,
                            info.offset,
                            data.len()
                        ),
                    )
                }
            };
            if directory.iter().any(|s: &SectionInfo| s.id == info.id) {
                return fail(
                    StorageErrorKind::Corrupt,
                    format!("duplicate section id {}", info.id),
                );
            }
            let payload = &data[info.offset as usize..end as usize];
            let computed = fnv1a64(payload);
            if computed != info.checksum {
                return fail(
                    StorageErrorKind::ChecksumMismatch,
                    format!(
                        "section {}: expected {:#018x}, computed {computed:#018x}",
                        info.id, info.checksum
                    ),
                );
            }
            prev_end = end;
            directory.push(info);
        }
        Ok(Segment { data, directory })
    }

    /// The payload of section `id`, if the directory lists it.
    /// Zero-copy: borrows from the segment's buffer.
    pub fn section(&self, id: u32) -> Option<&[u8]> {
        self.directory
            .iter()
            .find(|s| s.id == id)
            .map(|s| &self.data[s.offset as usize..(s.offset + s.len) as usize])
    }

    /// The validated directory, in file order.
    pub fn directory(&self) -> &[SectionInfo] {
        &self.directory
    }

    /// The whole validated file image — what `ShipBase` puts on the
    /// wire and what re-saving writes back out.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = SegmentBuilder::new();
        b.section(1, vec![1, 2, 3, 4]);
        b.section(7, (0u16..5000).flat_map(|v| v.to_le_bytes()).collect());
        b.section(3, Vec::new());
        b.finish()
    }

    #[test]
    fn round_trips_sections_byte_identically() {
        let seg = Segment::from_bytes(sample()).unwrap();
        assert_eq!(seg.section(1).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(seg.section(7).unwrap().len(), 10_000);
        assert_eq!(seg.section(3).unwrap(), &[] as &[u8]);
        assert!(seg.section(99).is_none());
        assert_eq!(seg.directory().len(), 3);
    }

    #[test]
    fn sections_are_page_aligned_and_deterministic() {
        let bytes = sample();
        assert_eq!(bytes, sample(), "serialisation is deterministic");
        let seg = Segment::from_bytes(bytes).unwrap();
        for s in seg.directory() {
            assert_eq!(s.offset % PAGE as u64, 0, "section {}", s.id);
        }
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let good = sample();

        let mut bad = good.clone();
        bad[0] = b'X';
        let err = Segment::from_bytes(bad).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");

        let mut bad = good.clone();
        bad[8] = 99;
        let err = Segment::from_bytes(bad).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        for cut in [0, HEADER - 1, HEADER + 5, good.len() - 1] {
            assert!(
                Segment::from_bytes(good[..cut].to_vec()).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rejects_directory_and_section_corruption() {
        let good = sample();
        let seg = Segment::from_bytes(good.clone()).unwrap();
        let payload_at = seg.directory()[1].offset as usize;

        // Flip a payload byte → that section's checksum fails.
        let mut bad = good.clone();
        bad[payload_at] ^= 0x40;
        let err = Segment::from_bytes(bad).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Flip a directory byte → the directory checksum fails.
        let mut bad = good.clone();
        bad[HEADER + 2] ^= 0x01;
        let err = Segment::from_bytes(bad).unwrap_err();
        assert!(err.to_string().contains("directory"), "{err}");

        // A hostile section count cannot drive an allocation: it is
        // rejected against the file length first.
        let mut bad = good;
        bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Segment::from_bytes(bad).unwrap_err();
        assert!(err.to_string().contains("sections"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate section id")]
    fn builder_panics_on_duplicate_id() {
        let mut b = SegmentBuilder::new();
        b.section(4, vec![1]);
        b.section(4, vec![2]);
    }
}
