//! Bounded little-endian field reader for format decoders.
//!
//! Same discipline as `onex_net::proto::Reader`, specialised for
//! persisted artefacts: every method bounds-checks before touching
//! bytes and reports [`OnexError::Storage`] with the reader's context
//! label, and [`Reader::counted`] validates a file-declared count
//! against the bytes that could possibly back it *before* the caller
//! sizes any allocation from it.

use onex_api::{OnexError, StorageErrorKind};

/// A cursor over a byte slice that refuses to read past the end.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Which artefact/section is being decoded — prefixes every error.
    context: &'static str,
}

impl<'a> Reader<'a> {
    /// Start reading `bytes`; `context` names the artefact in errors
    /// (e.g. `"v1 base"`, `"section GROUPS"`).
    pub fn new(bytes: &'a [u8], context: &'static str) -> Reader<'a> {
        Reader {
            bytes,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn corrupt(&self, what: &str) -> OnexError {
        OnexError::storage(
            StorageErrorKind::Corrupt,
            format!("{}: {} at offset {}", self.context, what, self.pos),
        )
    }

    /// Take the next `n` bytes as a borrowed slice.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], OnexError> {
        if self.remaining() < n {
            return Err(self.corrupt(&format!(
                "truncated: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, OnexError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, OnexError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, OnexError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a little-endian IEEE-754 `f64`.
    pub fn f64(&mut self) -> Result<f64, OnexError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `u32` element count whose elements occupy `unit` bytes
    /// each, validating `count × unit` against the remaining bytes
    /// *before* returning — so a hostile count can never size an
    /// allocation larger than the file that declared it.
    pub fn counted(&mut self, unit: usize) -> Result<usize, OnexError> {
        let count = self.u32()? as usize;
        let need = count
            .checked_mul(unit)
            .ok_or_else(|| self.corrupt("element count overflows"))?;
        if need > self.remaining() {
            return Err(self.corrupt(&format!(
                "declared {count} elements × {unit} bytes but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Assert every byte has been consumed — trailing garbage is
    /// corruption, not padding.
    pub fn finish(self) -> Result<(), OnexError> {
        if self.remaining() != 0 {
            return Err(self.corrupt(&format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fields_in_order_and_rejects_overrun() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&2.5f64.to_le_bytes());
        bytes.push(9);
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.u8().unwrap(), 9);
        assert!(r.u8().is_err());
    }

    #[test]
    fn counted_rejects_counts_the_bytes_cannot_back() {
        // Declares 1000 elements of 8 bytes but carries none.
        let bytes = 1000u32.to_le_bytes();
        let mut r = Reader::new(&bytes, "test");
        let err = r.counted(8).unwrap_err();
        assert!(err.to_string().contains("1000 elements"), "{err}");
        assert!(matches!(err, OnexError::Storage(_)), "{err}");

        // A count the remaining bytes do back is accepted.
        let mut ok = Vec::from(2u32.to_le_bytes());
        ok.extend_from_slice(&[0u8; 16]);
        let mut r = Reader::new(&ok, "test");
        assert_eq!(r.counted(8).unwrap(), 2);
    }

    #[test]
    fn counted_rejects_multiplication_overflow() {
        let bytes = u32::MAX.to_le_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert!(r.counted(usize::MAX / 2).is_err());
    }

    #[test]
    fn finish_flags_trailing_garbage() {
        let bytes = [1u8, 2, 3];
        let mut r = Reader::new(&bytes, "test");
        r.take(2).unwrap();
        let err = r.finish().unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
