//! The load-bearing correctness claim of the engine: under the `Seed`
//! representative policy (certified group radii), the two-phase group
//! search returns *exactly* the same best match as a brute-force scan of
//! the indexed subsequence space — all pruning layers are sound.
//!
//! Under the paper's `Centroid` policy the result is allowed to deviate
//! (that is the accuracy/compaction trade-off experiment E6/E9 measures),
//! but the deviation must stay small on benign data; the second half of
//! this file pins that.

use onex_core::{exhaustive, LengthSelection, Onex, QueryOptions};
use onex_distance::Band;
use onex_grouping::{BaseConfig, RepresentativePolicy};
use onex_tseries::gen::{random_walk_dataset, sine_mix_dataset, SyntheticConfig};
use onex_tseries::Dataset;
use proptest::prelude::*;

fn engine(
    ds: &Dataset,
    st: f64,
    min_len: usize,
    max_len: usize,
    policy: RepresentativePolicy,
) -> Onex {
    let cfg = BaseConfig {
        policy,
        ..BaseConfig::new(st, min_len, max_len)
    };
    let (e, _) = Onex::build(ds.clone(), cfg).unwrap();
    e
}

fn all_lengths(e: &Onex) -> Vec<usize> {
    e.base().lengths().collect()
}

#[test]
fn seed_policy_matches_brute_force_on_walks() {
    let ds = random_walk_dataset(SyntheticConfig {
        series: 8,
        len: 48,
        seed: 17,
    });
    let e = engine(&ds, 1.0, 8, 16, RepresentativePolicy::Seed);
    let opts = QueryOptions::default();
    // Queries cut from the data at several lengths and offsets.
    for (sid, start, len) in [(0u32, 3usize, 8usize), (2, 10, 12), (5, 0, 16), (7, 20, 10)] {
        let query = ds
            .series(sid)
            .unwrap()
            .subsequence(start, len)
            .unwrap()
            .to_vec();
        let (m, _) = e.best_match(&query, &opts).unwrap();
        let m = m.expect("match exists");
        let truth = exhaustive::scan_best(&ds, &query, &[len], 1, &opts, true)
            .unwrap()
            .expect("scan finds something");
        assert!(
            (m.distance - truth.distance).abs() < 1e-9,
            "q=({sid},{start},{len}): engine {} vs truth {} ({:?} vs {:?})",
            m.distance,
            truth.distance,
            m.subseq,
            truth.subseq
        );
    }
}

#[test]
fn seed_policy_matches_brute_force_across_lengths() {
    let ds = sine_mix_dataset(
        SyntheticConfig {
            series: 6,
            len: 40,
            seed: 23,
        },
        3,
        0.3,
    );
    let e = engine(&ds, 0.8, 6, 12, RepresentativePolicy::Seed);
    let lengths = all_lengths(&e);
    let opts = QueryOptions::default().lengths(LengthSelection::Range(6, 12));
    let query = ds.series(1).unwrap().subsequence(5, 9).unwrap().to_vec();
    let (m, _) = e.best_match(&query, &opts).unwrap();
    let m = m.expect("match exists");
    let truth = exhaustive::scan_best(&ds, &query, &lengths, 1, &opts, true)
        .unwrap()
        .unwrap();
    assert!(
        (m.normalized - truth.normalized).abs() < 1e-9,
        "engine {} vs truth {}",
        m.normalized,
        truth.normalized
    );
}

#[test]
fn seed_policy_k_best_matches_brute_force() {
    let ds = random_walk_dataset(SyntheticConfig {
        series: 6,
        len: 40,
        seed: 29,
    });
    let e = engine(&ds, 1.2, 10, 10, RepresentativePolicy::Seed);
    let opts = QueryOptions::default();
    let query = ds.series(3).unwrap().subsequence(12, 10).unwrap().to_vec();
    let k = 7;
    let (matches, _) = e.k_best(&query, k, &opts).unwrap();
    let truth = exhaustive::scan_k(&ds, &query, &[10], 1, &opts, k, true).unwrap();
    assert_eq!(matches.len(), truth.len());
    for (m, t) in matches.iter().zip(&truth) {
        assert!(
            (m.distance - t.distance).abs() < 1e-9,
            "k-best distances diverge: {} vs {}",
            m.distance,
            t.distance
        );
    }
}

#[test]
fn pruning_toggles_do_not_change_results_under_seed() {
    let ds = random_walk_dataset(SyntheticConfig {
        series: 5,
        len: 36,
        seed: 31,
    });
    let e = engine(&ds, 1.0, 8, 12, RepresentativePolicy::Seed);
    let query = ds.series(0).unwrap().subsequence(7, 10).unwrap().to_vec();
    let with = QueryOptions::default();
    let without = QueryOptions::default().without_pruning();
    let (m1, s1) = e.best_match(&query, &with).unwrap();
    let (m2, s2) = e.best_match(&query, &without).unwrap();
    let (m1, m2) = (m1.unwrap(), m2.unwrap());
    assert!((m1.distance - m2.distance).abs() < 1e-9);
    assert!(
        s1.members_examined <= s2.members_examined,
        "pruning may only reduce work: {} vs {}",
        s1.members_examined,
        s2.members_examined
    );
}

#[test]
fn banded_queries_are_also_exact_under_seed() {
    let ds = random_walk_dataset(SyntheticConfig {
        series: 6,
        len: 40,
        seed: 37,
    });
    let e = engine(&ds, 1.0, 10, 10, RepresentativePolicy::Seed);
    let query = ds.series(2).unwrap().subsequence(4, 10).unwrap().to_vec();
    for band in [Band::SakoeChiba(1), Band::SakoeChiba(3)] {
        let opts = QueryOptions::with_band(band);
        let (m, _) = e.best_match(&query, &opts).unwrap();
        let truth = exhaustive::scan_best(&ds, &query, &[10], 1, &opts, true)
            .unwrap()
            .unwrap();
        assert!(
            (m.unwrap().distance - truth.distance).abs() < 1e-9,
            "band {band:?}"
        );
    }
}

#[test]
fn centroid_policy_stays_close_to_truth() {
    let ds = random_walk_dataset(SyntheticConfig {
        series: 8,
        len: 48,
        seed: 41,
    });
    let e = engine(&ds, 1.0, 10, 14, RepresentativePolicy::Centroid);
    let opts = QueryOptions::default();
    let mut worst_ratio: f64 = 1.0;
    for (sid, start, len) in [(0u32, 5usize, 10usize), (3, 8, 12), (6, 0, 14)] {
        let query = ds
            .series(sid)
            .unwrap()
            .subsequence(start, len)
            .unwrap()
            .to_vec();
        let (m, _) = e.best_match(&query, &opts).unwrap();
        let truth = exhaustive::scan_best(&ds, &query, &[len], 1, &opts, true)
            .unwrap()
            .unwrap();
        let found = m.unwrap().distance;
        if truth.distance > 1e-12 {
            worst_ratio = worst_ratio.max(found / truth.distance);
        } else {
            assert!(found < 1e-9, "exact zero must be found");
        }
    }
    // The paper reports ONEX as highly accurate though approximate; on
    // benign synthetic data the found distance stays within a small factor
    // of the optimum.
    assert!(
        worst_ratio < 1.5,
        "centroid deviation too large: {worst_ratio}"
    );
}

#[test]
fn regression_suffix_radius_break() {
    // Found by proptest: the phase-2 stop test must use the *suffix
    // maximum* radius, not the current group's radius — radii are not
    // monotone along the lower-bound-sorted order, so a later group with
    // a larger radius can still contain the true best member.
    let ds = random_walk_dataset(SyntheticConfig {
        series: 4,
        len: 30,
        seed: 701,
    });
    let e = engine(&ds, 1.7977270279648634, 6, 12, RepresentativePolicy::Seed);
    let query = ds.series(0).unwrap().subsequence(2, 7).unwrap().to_vec();
    let (m, _) = e.best_match(&query, &QueryOptions::default()).unwrap();
    assert!(
        m.unwrap().distance < 1e-9,
        "exact self-window must be found"
    );
}

#[test]
fn top_groups_mode_is_a_good_approximation() {
    // The paper's best-group-only scan: never better than exact, usually
    // equal when the query's group is the nearest one, and always within
    // the bridge bound DTW(q, rep_best) + √W·radius of the optimum.
    let ds = random_walk_dataset(SyntheticConfig {
        series: 8,
        len: 48,
        seed: 53,
    });
    let e = engine(&ds, 1.2, 10, 10, RepresentativePolicy::Seed);
    for start in [0usize, 7, 19, 30] {
        let query = ds
            .series(1)
            .unwrap()
            .subsequence(start, 10)
            .unwrap()
            .to_vec();
        let exact_opts = QueryOptions::default();
        let approx_opts = QueryOptions::default().top_groups(1);
        let (exact, se) = e.best_match(&query, &exact_opts).unwrap();
        let (approx, sa) = e.best_match(&query, &approx_opts).unwrap();
        let (exact, approx) = (exact.unwrap(), approx.unwrap());
        assert!(
            approx.distance + 1e-9 >= exact.distance,
            "approximation cannot beat the optimum"
        );
        assert!(
            sa.members_examined + sa.members_lb_pruned
                <= se.members_examined + se.members_lb_pruned,
            "top-1 scans at most as many members"
        );
        // Self-window queries land in their own group, so top-1 is exact.
        assert!(
            approx.distance < 1e-9,
            "query cut from the data finds itself: {}",
            approx.distance
        );
    }
}

#[test]
fn wider_top_groups_monotonically_improve() {
    let ds = random_walk_dataset(SyntheticConfig {
        series: 10,
        len: 60,
        seed: 59,
    });
    let e = engine(&ds, 1.0, 12, 12, RepresentativePolicy::Seed);
    // A query that is NOT a member: perturb a window.
    let mut query = ds.series(2).unwrap().subsequence(9, 12).unwrap().to_vec();
    for (i, v) in query.iter_mut().enumerate() {
        *v += 0.8 * ((i as f64) * 1.3).sin();
    }
    let (exact, _) = e.best_match(&query, &QueryOptions::default()).unwrap();
    let exact = exact.unwrap().distance;
    let mut last = f64::INFINITY;
    for g in [1usize, 2, 4, 64] {
        let (m, _) = e
            .best_match(&query, &QueryOptions::default().top_groups(g))
            .unwrap();
        let d = m.unwrap().distance;
        assert!(d <= last + 1e-9, "more groups cannot hurt: g={g}");
        assert!(d + 1e-9 >= exact, "never better than exact");
        last = d;
    }
    // Scanning every group is the exact result again.
    assert!(
        (last - exact).abs() < 1e-9,
        "g=#groups degenerates to exact"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomised version of the headline exactness claim.
    #[test]
    fn seed_exactness_randomised(
        seed in 0u64..1000,
        st in 0.4f64..2.0,
        qlen in 6usize..12,
    ) {
        let ds = random_walk_dataset(SyntheticConfig {
            series: 4,
            len: 30,
            seed,
        });
        let e = engine(&ds, st, 6, 12, RepresentativePolicy::Seed);
        let opts = QueryOptions::default();
        let query = ds.series(0).unwrap().subsequence(2, qlen).unwrap().to_vec();
        let (m, _) = e.best_match(&query, &opts).unwrap();
        let truth = exhaustive::scan_best(&ds, &query, &[qlen], 1, &opts, true).unwrap();
        match (m, truth) {
            (Some(m), Some(t)) => prop_assert!(
                (m.distance - t.distance).abs() < 1e-9,
                "engine {} truth {}", m.distance, t.distance
            ),
            (None, None) => {}
            (m, t) => prop_assert!(false, "presence mismatch: {m:?} vs {t:?}"),
        }
    }
}
