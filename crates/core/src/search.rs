//! The two-phase group search shared by best-match and k-similar queries.
//!
//! Phase 1 ranks every group of a candidate length by the DTW distance
//! between the query and the group representative. Phase 2 walks groups in
//! that order and scans their members, with three sound pruning layers
//! (paper §3.3 "optimization strategies ranging from indexing of time
//! series using bounding envelopes to early pruning of unpromising
//! candidates"):
//!
//! 1. **Group pruning** via the ED↔DTW bridge: a group whose
//!    representative distance minus `√W · radius` cannot beat the current
//!    k-th best contains no useful member.
//! 2. **LB_Keogh** on each member against the query envelope (equal
//!    lengths only).
//! 3. **Early-abandoning DTW** seeded with the current k-th best.
//!
//! Soundness of (1) relies on the radius being certified, which holds
//! under the `Seed` representative policy; under `Centroid` the radius is
//! the observed insertion maximum and pruning is near-exact (the paper's
//! own accuracy regime). `tests/exactness.rs` verifies the `Seed` claim
//! against the exhaustive scan.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use onex_distance::bounds::warp_multiplicity;
use onex_distance::dtw::dtw_early_abandon_sq_with_cb;
use onex_distance::lb::{lb_keogh_sq, lb_kim_fl_sq};
use onex_distance::{dtw_with_path, Envelope};
use onex_grouping::{GroupId, OnexBase};
use onex_tseries::{Dataset, SubseqRef};

use crate::options::ScanBreadth;
use crate::{LengthSelection, Match, QueryOptions, QueryStats};

/// Total-ordered f64 for heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A candidate in the k-best heap, ordered by *descending* normalised
/// distance so the heap top is the worst kept candidate.
struct HeapEntry {
    normalized: f64,
    distance: f64,
    subseq: SubseqRef,
    group: GroupId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.normalized == other.normalized && self.subseq == other.subseq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.normalized
            .total_cmp(&other.normalized)
            .then_with(|| self.subseq.cmp(&other.subseq))
    }
}

/// Cross-length ranking value: per-sample RMS-style normalisation, the
/// query-side counterpart of `BaseConfig::length_normalized`.
#[inline]
pub(crate) fn normalize(distance: f64, query_len: usize, candidate_len: usize) -> f64 {
    distance / (query_len.max(candidate_len) as f64).sqrt()
}

pub(crate) struct Searcher<'a> {
    dataset: &'a Dataset,
    base: &'a OnexBase,
    query: &'a [f64],
    opts: &'a QueryOptions,
    pub stats: QueryStats,
}

impl<'a> Searcher<'a> {
    pub fn new(
        dataset: &'a Dataset,
        base: &'a OnexBase,
        query: &'a [f64],
        opts: &'a QueryOptions,
    ) -> Self {
        Searcher {
            dataset,
            base,
            query,
            opts,
            stats: QueryStats::default(),
        }
    }

    /// Candidate lengths in the order they are searched (nearest the query
    /// length first, so bounds tighten as early as possible).
    pub fn candidate_lengths(&self) -> Vec<usize> {
        let n = self.query.len();
        match self.opts.lengths {
            LengthSelection::Exact => {
                if self.base.groups_for_len(n).is_empty() {
                    Vec::new()
                } else {
                    vec![n]
                }
            }
            LengthSelection::Nearest(k) => self.base.nearest_lengths(n, k),
            LengthSelection::Range(lo, hi) => {
                let mut lens: Vec<usize> = self
                    .base
                    .lengths()
                    .filter(|&l| l >= lo && l <= hi)
                    .collect();
                lens.sort_by_key(|&l| (l.abs_diff(n), l));
                lens
            }
        }
    }

    /// Run the search and return up to `k` matches, best first. The
    /// caller ([`crate::Onex::k_best`]) has already validated `k` and the
    /// query through `onex_api::validate_query`, so malformed input never
    /// reaches this hot path.
    pub fn run(&mut self, k: usize) -> Vec<Match> {
        debug_assert!(k > 0 && !self.query.is_empty(), "caller validates input");
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);

        for len in self.candidate_lengths() {
            self.search_length(len, k, &mut heap);
        }

        heap.into_sorted_vec()
            .into_iter()
            .map(|e| self.materialize(e))
            .collect()
    }

    /// The current pruning bound at a given candidate length, on the raw
    /// DTW scale: a candidate can only matter if it beats the k-th best
    /// normalised distance.
    fn raw_bound(&self, heap: &BinaryHeap<HeapEntry>, k: usize, len: usize) -> f64 {
        if heap.len() < k {
            f64::INFINITY
        } else {
            let kth = heap.peek().expect("heap non-empty").normalized;
            kth * (self.query.len().max(len) as f64).sqrt()
        }
    }

    fn search_length(&mut self, len: usize, k: usize, heap: &mut BinaryHeap<HeapEntry>) {
        let n = self.query.len();
        let groups = self.base.groups_for_len(len);
        if groups.is_empty() {
            return;
        }
        let band = self.opts.band;
        let mult = warp_multiplicity(n, len, band);
        let sqrt_w = (mult as f64).sqrt();

        // Query envelope for LB_Keogh (equal lengths only; also used to
        // rank groups cheaply in phase 1).
        let env_q = (self.opts.lb_keogh && len == n)
            .then(|| Envelope::build(self.query, band.radius(n, len)));

        // Phase 1: rank groups by a cheap *lower bound* on the
        // representative distance — LB_KimFL always, strengthened by
        // LB_Keogh at equal lengths. Ascending lower bound is an
        // optimistic-first order, and because it bounds the true distance
        // from below it also licenses a sound early `break` in phase 2.
        let mut ranked: Vec<(usize, f64)> = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                let mut lb_sq = lb_kim_fl_sq(self.query, g.representative());
                if let Some(env) = &env_q {
                    lb_sq = lb_sq.max(lb_keogh_sq(g.representative(), env, f64::INFINITY));
                }
                (gi, lb_sq.sqrt())
            })
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));

        if let ScanBreadth::TopGroups(g) = self.opts.breadth {
            self.search_top_groups(len, k, g.max(1), heap, &ranked, &env_q);
            return;
        }

        // Suffix maximum of group radii in ranked order: the sound cut-off
        // for stopping the scan outright. (Radii vary per group, so the
        // per-group prune threshold `bound + √W·radius` is NOT monotone
        // along the lb-sorted order — the stop test must use the largest
        // radius still ahead.)
        let mut suffix_max_radius = vec![0.0f64; ranked.len()];
        let mut acc: f64 = 0.0;
        for (i, &(gi, _)) in ranked.iter().enumerate().rev() {
            acc = acc.max(groups[gi].radius());
            suffix_max_radius[i] = acc;
        }

        // Phase 2: evaluate groups lazily in optimistic order. The bound
        // tightens after the very first member scan, so most later
        // representatives abandon their DTW within a few rows — the
        // paper's "early pruning of unpromising candidates".
        for (rank_idx, &(gi, lb_rep)) in ranked.iter().enumerate() {
            let g = &groups[gi];
            self.stats.groups_examined += 1;
            let bound = self.raw_bound(heap, k, len);
            if self.opts.prune_groups && bound.is_finite() {
                // Every remaining group has lb ≥ lb_rep and radius ≤ the
                // suffix max, so none can hold a member below the bound.
                if lb_rep >= bound + sqrt_w * suffix_max_radius[rank_idx] {
                    self.stats.groups_pruned += ranked.len() - rank_idx;
                    break;
                }
            }
            // A member can only beat `bound` if the representative is
            // within bound + √W·radius (ED↔DTW bridge, DESIGN.md §2.2).
            let prune_at = if self.opts.prune_groups && bound.is_finite() {
                bound + sqrt_w * g.radius()
            } else {
                f64::INFINITY
            };
            if lb_rep >= prune_at {
                self.stats.groups_pruned += 1;
                continue;
            }
            let d_rep_sq = dtw_early_abandon_sq_with_cb(
                self.query,
                g.representative(),
                band,
                prune_at * prune_at,
                None,
            );
            if d_rep_sq.is_infinite() {
                self.stats.dtw_abandoned += 1;
                self.stats.groups_pruned += 1;
                continue;
            }
            self.stats.dtw_completed += 1;
            let d_rep = d_rep_sq.sqrt();
            let bound = self.raw_bound(heap, k, len);
            if self.opts.prune_groups && d_rep - sqrt_w * g.radius() >= bound {
                self.stats.groups_pruned += 1;
                continue;
            }
            self.scan_members(len, k, gi, heap, &env_q);
        }
    }

    /// The paper's §3.2 approximation: rank all representatives by DTW
    /// (lower-bound-assisted, early-abandoning against the current g-th
    /// best representative), then scan members of only the `g` best
    /// groups. Much cheaper when groups are large, at the cost of missing
    /// a best match that hides in a group with a slightly worse
    /// representative.
    fn search_top_groups(
        &mut self,
        len: usize,
        k: usize,
        g: usize,
        heap: &mut BinaryHeap<HeapEntry>,
        ranked: &[(usize, f64)],
        env_q: &Option<Envelope>,
    ) {
        let band = self.opts.band;
        let groups = self.base.groups_for_len(len);
        // Top-g representatives by actual DTW. `selection` is a max-heap
        // on distance so the root is the current g-th best.
        let mut selection: BinaryHeap<(OrdF64, usize)> = BinaryHeap::with_capacity(g + 1);
        for &(gi, lb_rep) in ranked {
            self.stats.groups_examined += 1;
            let gth = if selection.len() >= g {
                selection.peek().expect("non-empty").0 .0
            } else {
                f64::INFINITY
            };
            if lb_rep >= gth {
                // Sorted by lb ascending: nothing later can enter the
                // selection either.
                self.stats.groups_pruned += 1;
                break;
            }
            let d_sq = dtw_early_abandon_sq_with_cb(
                self.query,
                groups[gi].representative(),
                band,
                gth * gth,
                None,
            );
            if d_sq.is_infinite() {
                self.stats.dtw_abandoned += 1;
                self.stats.groups_pruned += 1;
                continue;
            }
            self.stats.dtw_completed += 1;
            selection.push((OrdF64(d_sq.sqrt()), gi));
            if selection.len() > g {
                selection.pop();
            }
        }
        // Scan the selected groups, nearest representative first.
        let mut chosen: Vec<(OrdF64, usize)> = selection.into_vec();
        chosen.sort();
        for (_, gi) in chosen {
            self.scan_members(len, k, gi, heap, env_q);
        }
    }

    /// Scan one group's members into the k-best heap with LB_Keogh and
    /// early-abandoning DTW.
    fn scan_members(
        &mut self,
        len: usize,
        k: usize,
        gi: usize,
        heap: &mut BinaryHeap<HeapEntry>,
        env_q: &Option<Envelope>,
    ) {
        let n = self.query.len();
        let band = self.opts.band;
        let g = &self.base.groups_for_len(len)[gi];
        let group_id = GroupId {
            len: len as u32,
            index: gi as u32,
        };
        for &member in g.members() {
            if !self.opts.admits(member) {
                continue;
            }
            let values = self
                .dataset
                .resolve(member)
                .expect("base members resolve against their dataset");
            let bound = self.raw_bound(heap, k, len);
            let bound_sq = if bound.is_finite() {
                bound * bound
            } else {
                f64::INFINITY
            };
            if let Some(env) = env_q {
                if lb_keogh_sq(values, env, bound_sq).is_infinite() {
                    self.stats.members_lb_pruned += 1;
                    continue;
                }
            }
            self.stats.members_examined += 1;
            let d_sq = dtw_early_abandon_sq_with_cb(self.query, values, band, bound_sq, None);
            if d_sq.is_infinite() {
                self.stats.dtw_abandoned += 1;
                self.stats.members_abandoned += 1;
                continue;
            }
            self.stats.dtw_completed += 1;
            let distance = d_sq.sqrt();
            let normalized = normalize(distance, n, len);
            // Strict improvement over the k-th keeps ties deterministic
            // (first discovered wins).
            if heap.len() < k || normalized < heap.peek().expect("heap non-empty").normalized {
                heap.push(HeapEntry {
                    normalized,
                    distance,
                    subseq: member,
                    group: group_id,
                });
                if heap.len() > k {
                    heap.pop();
                }
            }
        }
    }

    fn materialize(&self, e: HeapEntry) -> Match {
        let values = self
            .dataset
            .resolve(e.subseq)
            .expect("base members resolve against their dataset");
        let (_, path) = dtw_with_path(self.query, values, self.opts.band);
        let series_name = self
            .dataset
            .series(e.subseq.series)
            .expect("member series exists")
            .name()
            .to_owned();
        Match {
            subseq: e.subseq,
            series_name,
            distance: e.distance,
            normalized: e.normalized,
            group: e.group,
            path,
        }
    }
}
