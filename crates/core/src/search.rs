//! The two-phase group search shared by best-match and k-similar queries.
//!
//! Phase 1 ranks every group of a candidate length by the DTW distance
//! between the query and the group representative. Phase 2 walks groups in
//! that order and scans their members, with three sound pruning layers
//! (paper §3.3 "optimization strategies ranging from indexing of time
//! series using bounding envelopes to early pruning of unpromising
//! candidates"):
//!
//! 1. **Group pruning** via the ED↔DTW bridge: a group whose
//!    representative distance minus `√W · radius` cannot beat the current
//!    k-th best contains no useful member.
//! 2. **L0 sketch prefilter** on each member: a lower bound computed from
//!    the member's quantised-PAA sketch ([`onex_grouping::sketch`]) —
//!    rejected candidates never even have their f64 data resolved.
//! 3. **LB_Kim** (four touched points) then **LB_Keogh** on each member
//!    against the query envelope (equal lengths only).
//! 4. **Early-abandoning DTW** seeded with the current k-th best.
//!
//! Every prune threshold flows through one **query-global bound**: the
//! k-th best *normalised* distance known so far, kept in a
//! [`SharedBound`] alongside the local heap. The searcher consults it
//! before each group and member (so a tight bound discovered at one
//! candidate length prunes all later lengths), feeds it *live* into the
//! early-abandoning DP (so it can abort mid-computation), and publishes
//! every improvement back. When several searchers share one bound — the
//! sharded engine runs one per shard — a discovery by any of them
//! immediately shrinks all the others' searches; results stay exact up
//! to distance ties (see `onex_api::bound` for the soundness argument).
//!
//! Soundness of (1) relies on the radius being certified, which holds
//! under the `Seed` representative policy; under `Centroid` the radius is
//! the observed insertion maximum and pruning is near-exact (the paper's
//! own accuracy regime). `tests/exactness.rs` verifies the `Seed` claim
//! against the exhaustive scan.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use onex_api::SharedBound;
use onex_distance::bounds::warp_multiplicity;
use onex_distance::dtw::dtw_early_abandon_sq_dynamic;
use onex_distance::lb::{lb_keogh_sq, lb_kim_fl_sq};
use onex_distance::{dtw_with_path, Envelope, QuerySketch, SKETCH_STRIDE};
use onex_grouping::{GroupId, OnexBase};
use onex_tseries::{Dataset, SubseqRef};

use crate::options::ScanBreadth;
use crate::{LengthSelection, Match, QueryOptions, QueryStats};

/// Total-ordered f64 for heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A candidate in the k-best heap, ordered by *descending* normalised
/// distance so the heap top is the worst kept candidate.
struct HeapEntry {
    normalized: f64,
    distance: f64,
    subseq: SubseqRef,
    group: GroupId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.normalized == other.normalized && self.subseq == other.subseq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.normalized
            .total_cmp(&other.normalized)
            .then_with(|| self.subseq.cmp(&other.subseq))
    }
}

/// Cross-length ranking value: per-sample RMS-style normalisation, the
/// query-side counterpart of `BaseConfig::length_normalized`.
#[inline]
pub fn normalize(distance: f64, query_len: usize, candidate_len: usize) -> f64 {
    distance / (query_len.max(candidate_len) as f64).sqrt()
}

/// Everything about one candidate length that is a pure function of the
/// query and the options, computed **once per length** instead of per
/// group/member visit: the normalisation factor (previously a `sqrt` per
/// bound check), the warp multiplicity `√W`, and the query envelope for
/// LB_Keogh.
struct LengthPlan {
    len: usize,
    /// `√(max(query_len, len))` — converts the normalised bound back to
    /// the raw DTW scale at this length.
    norm: f64,
    /// `√W` of the ED↔DTW bridge at this length pair.
    sqrt_w: f64,
    /// Query envelope for LB_Keogh (equal lengths only; also used to
    /// rank groups cheaply in phase 1).
    env_q: Option<Envelope>,
    /// Query-side L0 sketch against this length's frozen quantisation
    /// parameters — the tier that rejects members from bytes alone,
    /// before their f64 data is resolved.
    l0: Option<QuerySketch>,
}

pub(crate) struct Searcher<'a> {
    dataset: &'a Dataset,
    base: &'a OnexBase,
    query: &'a [f64],
    opts: &'a QueryOptions,
    /// The query-global pruning bound on the *normalised* distance scale:
    /// seeded at `∞`, tightened to the k-th best whenever the heap fills
    /// or improves, observed before every group/member and mid-DTW.
    /// Callers that fan one query across several searchers (the sharded
    /// engine) pass the same bound to all of them.
    bound: &'a SharedBound,
    pub stats: QueryStats,
}

impl<'a> Searcher<'a> {
    pub fn new(
        dataset: &'a Dataset,
        base: &'a OnexBase,
        query: &'a [f64],
        opts: &'a QueryOptions,
        bound: &'a SharedBound,
    ) -> Self {
        Searcher {
            dataset,
            base,
            query,
            opts,
            bound,
            stats: QueryStats::default(),
        }
    }

    /// Candidate lengths in the order they are searched (nearest the query
    /// length first, so bounds tighten as early as possible).
    pub fn candidate_lengths(&self) -> Vec<usize> {
        let n = self.query.len();
        match self.opts.lengths {
            LengthSelection::Exact => {
                if self.base.groups_for_len(n).is_empty() {
                    Vec::new()
                } else {
                    vec![n]
                }
            }
            LengthSelection::Nearest(k) => self.base.nearest_lengths(n, k),
            LengthSelection::Range(lo, hi) => {
                let mut lens: Vec<usize> = self
                    .base
                    .lengths()
                    .filter(|&l| l >= lo && l <= hi)
                    .collect();
                lens.sort_by_key(|&l| (l.abs_diff(n), l));
                lens
            }
        }
    }

    /// Build the cached per-length plan: one envelope construction and
    /// one set of `sqrt`s per length for the whole query, where earlier
    /// revisions recomputed the normalisation factor on every bound
    /// check (bench E14 measures the difference).
    fn plan(&self, len: usize) -> LengthPlan {
        let n = self.query.len();
        let band = self.opts.band;
        let mult = warp_multiplicity(n, len, band);
        let env_q = (self.opts.lb_keogh && len == n)
            .then(|| Envelope::build(self.query, band.radius(n, len)));
        // The L0 sketch shares the envelope (its bound is a coarsening of
        // LB_Keogh + LB_Kim), so it rides on the same gate.
        let l0 = match &env_q {
            Some(env) if self.opts.l0_prefilter => self
                .base
                .sketches()
                .for_len(len)
                .map(|ls| QuerySketch::new(self.query, env, ls.params())),
            _ => None,
        };
        LengthPlan {
            len,
            norm: (n.max(len) as f64).sqrt(),
            sqrt_w: (mult as f64).sqrt(),
            env_q,
            l0,
        }
    }

    /// Run the search and return up to `k` matches, best first. The
    /// caller ([`crate::Onex::k_best`]) has already validated `k` and the
    /// query through `onex_api::validate_query`, so malformed input never
    /// reaches this hot path.
    pub fn run(&mut self, k: usize) -> Vec<Match> {
        debug_assert!(k > 0 && !self.query.is_empty(), "caller validates input");
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);

        for len in self.candidate_lengths() {
            let plan = self.plan(len);
            self.search_length(&plan, k, &mut heap);
        }

        heap.into_sorted_vec()
            .into_iter()
            .map(|e| self.materialize(e))
            .collect()
    }

    /// The current pruning bound on the *normalised* scale: the tighter
    /// of the local k-th best and the shared query-global bound.
    fn normalized_bound(&self, heap: &BinaryHeap<HeapEntry>, k: usize) -> f64 {
        let local = if heap.len() < k {
            f64::INFINITY
        } else {
            heap.peek().expect("heap non-empty").normalized
        };
        local.min(self.bound.get())
    }

    /// The current pruning bound at a given candidate length, on the raw
    /// DTW scale: a candidate can only matter if it beats the k-th best
    /// normalised distance known anywhere (this searcher or a peer
    /// sharing the bound).
    fn raw_bound(&self, heap: &BinaryHeap<HeapEntry>, k: usize, plan: &LengthPlan) -> f64 {
        let b = self.normalized_bound(heap, k);
        if b.is_finite() {
            b * plan.norm
        } else {
            f64::INFINITY
        }
    }

    fn search_length(&mut self, plan: &LengthPlan, k: usize, heap: &mut BinaryHeap<HeapEntry>) {
        let groups = self.base.groups_for_len(plan.len);
        if groups.is_empty() {
            return;
        }
        let band = self.opts.band;
        let sqrt_w = plan.sqrt_w;

        // Phase 1: rank groups by a cheap *lower bound* on the
        // representative distance — LB_KimFL always, strengthened by
        // LB_Keogh at equal lengths. Ascending lower bound is an
        // optimistic-first order, and because it bounds the true distance
        // from below it also licenses a sound early `break` in phase 2.
        let mut ranked: Vec<(usize, f64)> = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                let mut lb_sq = lb_kim_fl_sq(self.query, g.representative());
                if let Some(env) = &plan.env_q {
                    lb_sq = lb_sq.max(lb_keogh_sq(g.representative(), env, f64::INFINITY));
                }
                (gi, lb_sq.sqrt())
            })
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));

        if let ScanBreadth::TopGroups(g) = self.opts.breadth {
            self.search_top_groups(plan, k, g.max(1), heap, &ranked);
            return;
        }

        // Suffix maximum of group radii in ranked order: the sound cut-off
        // for stopping the scan outright. (Radii vary per group, so the
        // per-group prune threshold `bound + √W·radius` is NOT monotone
        // along the lb-sorted order — the stop test must use the largest
        // radius still ahead.)
        let mut suffix_max_radius = vec![0.0f64; ranked.len()];
        let mut acc: f64 = 0.0;
        for (i, &(gi, _)) in ranked.iter().enumerate().rev() {
            acc = acc.max(groups[gi].radius());
            suffix_max_radius[i] = acc;
        }

        // Phase 2: evaluate groups lazily in optimistic order. The bound
        // tightens after the very first member scan, so most later
        // representatives abandon their DTW within a few rows — the
        // paper's "early pruning of unpromising candidates".
        for (rank_idx, &(gi, lb_rep)) in ranked.iter().enumerate() {
            let g = &groups[gi];
            self.stats.groups_examined += 1;
            let bound = self.raw_bound(heap, k, plan);
            if self.opts.prune_groups && bound.is_finite() {
                // Every remaining group has lb ≥ lb_rep and radius ≤ the
                // suffix max, so none can hold a member below the bound.
                if lb_rep >= bound + sqrt_w * suffix_max_radius[rank_idx] {
                    self.stats.groups_pruned += ranked.len() - rank_idx;
                    break;
                }
            }
            // A member can only beat `bound` if the representative is
            // within bound + √W·radius (ED↔DTW bridge, DESIGN.md §2.2).
            let prune_at = if self.opts.prune_groups && bound.is_finite() {
                bound + sqrt_w * g.radius()
            } else {
                f64::INFINITY
            };
            if lb_rep >= prune_at {
                self.stats.groups_pruned += 1;
                continue;
            }
            // The live refresh folds bound tightenings published *during*
            // this DP (by a peer shard, or not at all in single-engine
            // mode) into the abandonment threshold, radius slack included.
            let shared = self.bound;
            let (norm, radius) = (plan.norm, g.radius());
            let live = move || {
                let b = shared.get();
                if b.is_finite() {
                    let at = b * norm + sqrt_w * radius;
                    at * at
                } else {
                    f64::INFINITY
                }
            };
            let live_ref: Option<&dyn Fn() -> f64> =
                self.opts.prune_groups.then_some(&live as &dyn Fn() -> f64);
            let d_rep_sq = dtw_early_abandon_sq_dynamic(
                self.query,
                g.representative(),
                band,
                prune_at * prune_at,
                None,
                live_ref,
            );
            if d_rep_sq.is_infinite() {
                self.stats.dtw_abandoned += 1;
                self.stats.groups_pruned += 1;
                continue;
            }
            self.stats.dtw_completed += 1;
            let d_rep = d_rep_sq.sqrt();
            let bound = self.raw_bound(heap, k, plan);
            if self.opts.prune_groups && d_rep - sqrt_w * g.radius() >= bound {
                self.stats.groups_pruned += 1;
                continue;
            }
            self.scan_members(plan, k, gi, heap);
        }
    }

    /// The paper's §3.2 approximation: rank all representatives by DTW
    /// (lower-bound-assisted, early-abandoning against the current g-th
    /// best representative), then scan members of only the `g` best
    /// groups. Much cheaper when groups are large, at the cost of missing
    /// a best match that hides in a group with a slightly worse
    /// representative.
    fn search_top_groups(
        &mut self,
        plan: &LengthPlan,
        k: usize,
        g: usize,
        heap: &mut BinaryHeap<HeapEntry>,
        ranked: &[(usize, f64)],
    ) {
        let band = self.opts.band;
        let groups = self.base.groups_for_len(plan.len);
        // Top-g representatives by actual DTW. `selection` is a max-heap
        // on distance so the root is the current g-th best.
        let mut selection: BinaryHeap<(OrdF64, usize)> = BinaryHeap::with_capacity(g + 1);
        for &(gi, lb_rep) in ranked {
            self.stats.groups_examined += 1;
            let gth = if selection.len() >= g {
                selection.peek().expect("non-empty").0 .0
            } else {
                f64::INFINITY
            };
            if lb_rep >= gth {
                // Sorted by lb ascending: nothing later can enter the
                // selection either.
                self.stats.groups_pruned += 1;
                break;
            }
            let d_sq = dtw_early_abandon_sq_dynamic(
                self.query,
                groups[gi].representative(),
                band,
                gth * gth,
                None,
                None,
            );
            if d_sq.is_infinite() {
                self.stats.dtw_abandoned += 1;
                self.stats.groups_pruned += 1;
                continue;
            }
            self.stats.dtw_completed += 1;
            selection.push((OrdF64(d_sq.sqrt()), gi));
            if selection.len() > g {
                selection.pop();
            }
        }
        // Scan the selected groups, nearest representative first.
        let mut chosen: Vec<(OrdF64, usize)> = selection.into_vec();
        chosen.sort();
        for (_, gi) in chosen {
            self.scan_members(plan, k, gi, heap);
        }
    }

    /// Scan one group's members into the k-best heap with LB_Keogh and
    /// early-abandoning DTW, tightening (and publishing) the shared
    /// bound as better candidates are found.
    fn scan_members(
        &mut self,
        plan: &LengthPlan,
        k: usize,
        gi: usize,
        heap: &mut BinaryHeap<HeapEntry>,
    ) {
        let n = self.query.len();
        let len = plan.len;
        let band = self.opts.band;
        let g = &self.base.groups_for_len(len)[gi];
        let group_id = GroupId {
            len: len as u32,
            index: gi as u32,
        };
        // Live member-scale refresh: the shared bound back on the raw
        // DTW scale at this length, re-read per DP row.
        let shared = self.bound;
        let norm = plan.norm;
        let live = move || {
            let b = shared.get();
            if b.is_finite() {
                let raw = b * norm;
                raw * raw
            } else {
                f64::INFINITY
            }
        };
        // The group's sketch slab, parallel to `g.members()`: slot `i`
        // holds member `i`'s quantised sketch. Absent (stale or unsynced
        // index) simply means the L0 tier passes everyone through.
        let sketches = plan
            .l0
            .as_ref()
            .and_then(|_| self.base.sketches().for_len(len))
            .and_then(|ls| ls.group(gi));
        for (slot, &member) in g.members().iter().enumerate() {
            if !self.opts.admits(member) {
                continue;
            }
            let bound = self.raw_bound(heap, k, plan);
            let bound_sq = if bound.is_finite() {
                bound * bound
            } else {
                f64::INFINITY
            };
            // Tier L0: reject from the quantised sketch alone — no f64
            // data is resolved for a candidate that dies here.
            if let (Some(qs), Some(slab)) = (&plan.l0, sketches) {
                if let Some(sk) = slab.get(slot * SKETCH_STRIDE..(slot + 1) * SKETCH_STRIDE) {
                    if qs.bound_sq(sk) > bound_sq {
                        self.stats.members_l0_pruned += 1;
                        continue;
                    }
                }
            }
            let values = self
                .dataset
                .resolve(member)
                .expect("base members resolve against their dataset");
            if let Some(env) = &plan.env_q {
                // Tier 1: LB_Kim — four touched points.
                if lb_kim_fl_sq(self.query, values) > bound_sq {
                    self.stats.members_kim_pruned += 1;
                    continue;
                }
                // Tier 2: LB_Keogh against the query envelope.
                if lb_keogh_sq(values, env, bound_sq).is_infinite() {
                    self.stats.members_lb_pruned += 1;
                    continue;
                }
            }
            self.stats.members_examined += 1;
            let d_sq =
                dtw_early_abandon_sq_dynamic(self.query, values, band, bound_sq, None, Some(&live));
            if d_sq.is_infinite() {
                self.stats.dtw_abandoned += 1;
                self.stats.members_abandoned += 1;
                continue;
            }
            self.stats.dtw_completed += 1;
            let distance = d_sq.sqrt();
            let normalized = normalize(distance, n, len);
            // Strict improvement over the k-th keeps ties deterministic
            // (first discovered wins).
            if heap.len() < k || normalized < heap.peek().expect("heap non-empty").normalized {
                heap.push(HeapEntry {
                    normalized,
                    distance,
                    subseq: member,
                    group: group_id,
                });
                if heap.len() > k {
                    heap.pop();
                }
                // Publish: once the heap holds k entries its worst key is
                // a sound global upper bound on the merged k-th best.
                if heap.len() == k {
                    self.bound
                        .tighten(heap.peek().expect("heap non-empty").normalized);
                }
            }
        }
    }

    fn materialize(&self, e: HeapEntry) -> Match {
        let values = self
            .dataset
            .resolve(e.subseq)
            .expect("base members resolve against their dataset");
        let (_, path) = dtw_with_path(self.query, values, self.opts.band);
        let series_name = self
            .dataset
            .series(e.subseq.series)
            .expect("member series exists")
            .name()
            .to_owned();
        Match {
            subseq: e.subseq,
            series_name,
            distance: e.distance,
            normalized: e.normalized,
            group: e.group,
            path,
        }
    }
}
